//! Offline integrity checking for a durable ingest directory.
//!
//! Two entry points, both driving the same walk:
//!
//! * [`inspect`] — read-only: verifies every checkpoint's CRC and walks
//!   the WAL's durable prefix, reporting what [`recover`](crate::durable::recover)
//!   would do. Behind `uots status`.
//! * [`scrub`] — the repair pass behind `uots fsck`: additionally **moves**
//!   wholly-unusable files (checkpoints that fail validation, WAL segments
//!   that are unreachable because they sit behind a corrupt one or have a
//!   damaged header) into `quarantine/` with a manifest line each. Nothing
//!   is ever deleted — quarantine preserves the evidence for forensics —
//!   and a torn tail *inside* an otherwise-good segment is reported but
//!   left in place (the segment still carries durable records; the writer
//!   truncates the tear on reopen exactly like recovery does).
//!
//! ## Quarantine layout
//!
//! ```text
//! <dir>/quarantine/<original-filename>   the moved file, byte-identical
//! <dir>/quarantine/MANIFEST.txt          one line per file:
//!                                        <filename>\t<reason>
//! ```
//!
//! A file already present under quarantine is never overwritten: the move
//! appends `.N` to the name until it is fresh, so repeated scrubs cannot
//! destroy earlier evidence.

use std::path::{Path, PathBuf};

use crate::durable::list_checkpoints_with;
use uots_core::storage::{write_atomic, StorageBackend};
use uots_core::wal::{self, Corruption};
use uots_datagen::persist;
use uots_obs::EventJournal;

/// Name of the quarantine subdirectory.
pub const QUARANTINE_DIR: &str = "quarantine";
/// Name of the manifest file inside the quarantine directory.
pub const QUARANTINE_MANIFEST: &str = "MANIFEST.txt";

/// One file moved into quarantine.
#[derive(Debug, Clone)]
pub struct QuarantineEntry {
    /// Where the file lived.
    pub original: PathBuf,
    /// Where it is now.
    pub quarantined: PathBuf,
    /// Why it was moved.
    pub reason: String,
}

/// What a recovery run over the (possibly scrubbed) directory would do.
#[derive(Debug, Clone)]
pub struct RecoveryPlan {
    /// Newest checkpoint that validates, with its high-water LSN.
    pub checkpoint: Option<(PathBuf, u64)>,
    /// Durable WAL batches that would replay on top of it.
    pub replayable_batches: u64,
    /// Mutations inside those batches.
    pub replayable_mutations: u64,
    /// Where a resumed writer would continue.
    pub next_lsn: u64,
}

/// Result of an [`inspect`] or [`scrub`] walk.
#[derive(Debug)]
pub struct ScrubReport {
    /// WAL segments examined.
    pub segments: usize,
    /// Checkpoint files examined.
    pub checkpoints: usize,
    /// Checkpoints that failed CRC/structure validation. Under [`scrub`]
    /// these are also listed in [`quarantined`](Self::quarantined); under
    /// [`inspect`] they are only reported.
    pub invalid_checkpoints: Vec<(PathBuf, String)>,
    /// WAL segments unusable as a whole: damaged header, an LSN sequence
    /// break, or sitting behind a corrupt segment (unreachable by prefix
    /// replay). Same inspect/scrub split as invalid checkpoints.
    pub unusable_segments: Vec<(PathBuf, String)>,
    /// A torn record tail inside an otherwise-usable segment: reported,
    /// never moved (the segment still holds durable records; reopen/
    /// recovery truncates the tear).
    pub torn_tail: Option<Corruption>,
    /// Files actually moved (always empty for [`inspect`]).
    pub quarantined: Vec<QuarantineEntry>,
    /// What recovery would do with what remains.
    pub plan: RecoveryPlan,
}

impl ScrubReport {
    /// Whether the directory is fully clean: every checkpoint validates,
    /// every segment is reachable and whole.
    pub fn is_clean(&self) -> bool {
        self.invalid_checkpoints.is_empty()
            && self.unusable_segments.is_empty()
            && self.torn_tail.is_none()
    }

    /// Whether `recover()` would succeed, given whether the operator can
    /// supply the base dataset.
    pub fn recoverable(&self, has_base: bool) -> bool {
        self.plan.checkpoint.is_some() || has_base
    }
}

impl serde::Serialize for ScrubReport {
    fn serialize(&self) -> serde::Content {
        use serde::Content;
        fn path(p: &Path) -> Content {
            Content::Str(p.display().to_string())
        }
        fn verdicts(list: &[(PathBuf, String)]) -> Content {
            Content::Seq(
                list.iter()
                    .map(|(p, reason)| {
                        Content::Map(vec![
                            ("file".to_string(), path(p)),
                            ("reason".to_string(), Content::Str(reason.clone())),
                        ])
                    })
                    .collect(),
            )
        }
        let torn_tail = match &self.torn_tail {
            Some(c) => Content::Map(vec![
                ("file".to_string(), path(&c.segment)),
                ("offset".to_string(), Content::U64(c.offset)),
                ("reason".to_string(), Content::Str(c.reason.clone())),
            ]),
            None => Content::Null,
        };
        let quarantined = Content::Seq(
            self.quarantined
                .iter()
                .map(|q| {
                    Content::Map(vec![
                        ("original".to_string(), path(&q.original)),
                        ("quarantined".to_string(), path(&q.quarantined)),
                        ("reason".to_string(), Content::Str(q.reason.clone())),
                    ])
                })
                .collect(),
        );
        let plan = Content::Map(vec![
            (
                "checkpoint".to_string(),
                match &self.plan.checkpoint {
                    Some((p, lsn)) => Content::Map(vec![
                        ("file".to_string(), path(p)),
                        ("lsn".to_string(), Content::U64(*lsn)),
                    ]),
                    None => Content::Null,
                },
            ),
            (
                "replayable_batches".to_string(),
                Content::U64(self.plan.replayable_batches),
            ),
            (
                "replayable_mutations".to_string(),
                Content::U64(self.plan.replayable_mutations),
            ),
            ("next_lsn".to_string(), Content::U64(self.plan.next_lsn)),
        ]);
        Content::Map(vec![
            ("segments".to_string(), Content::U64(self.segments as u64)),
            (
                "checkpoints".to_string(),
                Content::U64(self.checkpoints as u64),
            ),
            ("clean".to_string(), Content::Bool(self.is_clean())),
            (
                "invalid_checkpoints".to_string(),
                verdicts(&self.invalid_checkpoints),
            ),
            (
                "unusable_segments".to_string(),
                verdicts(&self.unusable_segments),
            ),
            ("torn_tail".to_string(), torn_tail),
            ("quarantined".to_string(), quarantined),
            ("plan".to_string(), plan),
        ])
    }
}

/// Read-only integrity walk: validates checkpoints and the WAL, reports
/// what recovery would do. Moves nothing.
pub fn inspect(backend: &dyn StorageBackend, dir: &Path) -> Result<ScrubReport, std::io::Error> {
    walk(backend, dir, false, None)
}

/// [`inspect`] plus an operational [`EventJournal`]: every per-file
/// verdict (invalid checkpoint, unusable segment, torn tail) is recorded
/// as an event.
pub fn inspect_with_journal(
    backend: &dyn StorageBackend,
    dir: &Path,
    journal: &EventJournal,
) -> Result<ScrubReport, std::io::Error> {
    walk(backend, dir, false, Some(journal))
}

/// The `uots fsck` pass: like [`inspect`], but moves wholly-unusable files
/// into `quarantine/` (see the module docs) and records them in the
/// manifest. Returns the report *after* the moves, so its plan reflects
/// the directory recovery would now see.
pub fn scrub(backend: &dyn StorageBackend, dir: &Path) -> Result<ScrubReport, std::io::Error> {
    walk(backend, dir, true, None)
}

/// [`scrub`] plus an operational [`EventJournal`]: per-file verdicts and
/// every quarantine move are recorded as events.
pub fn scrub_with_journal(
    backend: &dyn StorageBackend,
    dir: &Path,
    journal: &EventJournal,
) -> Result<ScrubReport, std::io::Error> {
    walk(backend, dir, true, Some(journal))
}

fn walk(
    backend: &dyn StorageBackend,
    dir: &Path,
    quarantine: bool,
    journal: Option<&EventJournal>,
) -> Result<ScrubReport, std::io::Error> {
    // -- checkpoints: every one is CRC-validated independently. Only
    //    *validation* failures mark a checkpoint corrupt — an I/O error
    //    reading it is an operational problem (possibly transient), and
    //    quarantining a perfectly good checkpoint over a read hiccup
    //    would demote the recovery plan for nothing.
    let checkpoint_paths = list_checkpoints_with(backend, dir);
    let checkpoints = checkpoint_paths.len();
    let mut invalid_checkpoints = Vec::new();
    let mut valid: Vec<(PathBuf, u64)> = Vec::new(); // newest-first
    for path in checkpoint_paths {
        match persist::load_checkpoint_file_with(backend, &path) {
            Ok(ck) => valid.push((path, ck.lsn)),
            Err(persist::PersistError::Io(e)) => return Err(e),
            Err(e) => invalid_checkpoints.push((path, e.to_string())),
        }
    }

    // -- WAL: prefix replay finds the first damage; what lies beyond it
    //    is unreachable
    let scan = wal::replay_with(backend, dir, u64::MAX).map_err(wal_io)?;
    let all_segments = wal::list_segments_with(backend, dir).map_err(wal_io)?;
    let segments = all_segments.len();
    let mut unusable_segments: Vec<(PathBuf, String)> = Vec::new();
    let mut torn_tail = None;
    if let Some(c) = &scan.corruption {
        if c.offset < wal::HEADER_LEN {
            // header/sequence damage: the whole segment carries nothing
            // prefix replay can use
            unusable_segments.push((c.segment.clone(), c.reason.clone()));
        } else {
            torn_tail = Some(c.clone());
        }
        for seg in &all_segments {
            if *seg > c.segment {
                unusable_segments.push((
                    seg.clone(),
                    format!(
                        "unreachable: behind corruption in {}",
                        c.segment
                            .file_name()
                            .and_then(|n| n.to_str())
                            .unwrap_or("?")
                    ),
                ));
            }
        }
    }

    if let Some(j) = journal {
        for (path, reason) in &invalid_checkpoints {
            j.warn(
                "scrub",
                "invalid_checkpoint",
                &[
                    ("file", path.display().to_string()),
                    ("reason", reason.clone()),
                ],
            );
        }
        for (path, reason) in &unusable_segments {
            j.warn(
                "scrub",
                "unusable_segment",
                &[
                    ("file", path.display().to_string()),
                    ("reason", reason.clone()),
                ],
            );
        }
        if let Some(c) = &torn_tail {
            j.warn(
                "scrub",
                "torn_tail",
                &[
                    ("file", c.segment.display().to_string()),
                    ("offset", c.offset.to_string()),
                    ("reason", c.reason.clone()),
                ],
            );
        }
    }

    // -- quarantine pass
    let mut quarantined = Vec::new();
    if quarantine {
        let mut moves: Vec<(PathBuf, String)> = Vec::new();
        moves.extend(invalid_checkpoints.iter().cloned());
        moves.extend(unusable_segments.iter().cloned());
        if !moves.is_empty() {
            quarantined = quarantine_files(backend, dir, &moves)?;
            if let Some(j) = journal {
                for q in &quarantined {
                    j.warn(
                        "scrub",
                        "file_quarantined",
                        &[
                            ("original", q.original.display().to_string()),
                            ("quarantined", q.quarantined.display().to_string()),
                            ("reason", q.reason.clone()),
                        ],
                    );
                }
            }
        }
    }

    // -- recovery plan over what (now) remains
    // (re-)scan: under scrub the unusable files are gone by now, so the
    // prefix this sees is exactly what recovery would see
    let plan_scan = wal::replay_with(backend, dir, 0).map_err(wal_io)?;
    // recovery refuses a checkpoint whose surviving WAL tail does not
    // continue exactly at its lsn + 1 (segments in the gap were pruned
    // against a newer checkpoint that is now unusable) — mirror that
    // choice here so the plan reports what recover() would really use
    let chosen = valid.into_iter().find(|(_, lsn)| {
        plan_scan
            .batches
            .iter()
            .map(|(l, _)| *l)
            .find(|l| *l > *lsn)
            .is_none_or(|first| first == lsn + 1)
    });
    let after_lsn = chosen.as_ref().map_or(0, |(_, lsn)| *lsn);
    let tail: Vec<&(u64, Vec<uots_core::Mutation>)> = plan_scan
        .batches
        .iter()
        .filter(|(l, _)| *l > after_lsn)
        .collect();
    let replayable_mutations = tail.iter().map(|(_, b)| b.len() as u64).sum();
    let plan = RecoveryPlan {
        checkpoint: chosen,
        replayable_batches: tail.len() as u64,
        replayable_mutations,
        next_lsn: plan_scan.next_lsn,
    };

    let report = ScrubReport {
        segments,
        checkpoints,
        invalid_checkpoints,
        unusable_segments,
        torn_tail,
        quarantined,
        plan,
    };
    if let Some(j) = journal {
        j.info(
            "scrub",
            "walk_completed",
            &[
                (
                    "mode",
                    if quarantine { "scrub" } else { "inspect" }.to_string(),
                ),
                ("segments", report.segments.to_string()),
                ("checkpoints", report.checkpoints.to_string()),
                ("clean", report.is_clean().to_string()),
                ("quarantined", report.quarantined.len().to_string()),
            ],
        );
    }
    Ok(report)
}

fn wal_io(e: wal::WalError) -> std::io::Error {
    match e {
        wal::WalError::Io(io) => io,
        wal::WalError::Corrupt(m) => std::io::Error::new(std::io::ErrorKind::InvalidData, m),
    }
}

/// Moves `files` into `dir/quarantine/`, never overwriting, and rewrites
/// the manifest with one line per quarantined file (existing manifest
/// lines are preserved).
fn quarantine_files(
    backend: &dyn StorageBackend,
    dir: &Path,
    files: &[(PathBuf, String)],
) -> Result<Vec<QuarantineEntry>, std::io::Error> {
    let qdir = dir.join(QUARANTINE_DIR);
    backend.create_dir_all(&qdir)?;
    let manifest_path = qdir.join(QUARANTINE_MANIFEST);
    let mut manifest = match backend.read(&manifest_path) {
        Ok(raw) => String::from_utf8_lossy(&raw).into_owned(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    // Existing quarantine contents, from the directory listing — probing
    // with read() would treat an existing-but-unreadable file as absent
    // and let the rename below destroy earlier evidence.
    let mut taken: std::collections::HashSet<String> = backend
        .read_dir(&qdir)?
        .into_iter()
        .filter_map(|p| p.file_name().and_then(|n| n.to_str()).map(str::to_string))
        .collect();
    let mut entries = Vec::new();
    for (original, reason) in files {
        let name = original
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("unnamed")
            .to_string();
        // never overwrite earlier evidence: suffix until fresh
        let mut fresh = name.clone();
        let mut n = 0;
        while taken.contains(&fresh) {
            n += 1;
            fresh = format!("{name}.{n}");
        }
        taken.insert(fresh.clone());
        let target = qdir.join(&fresh);
        backend.rename(original, &target)?;
        let kept = target
            .file_name()
            .and_then(|f| f.to_str())
            .unwrap_or(&name)
            .to_string();
        manifest.push_str(&format!("{kept}\t{reason}\n"));
        entries.push(QuarantineEntry {
            original: original.clone(),
            quarantined: target,
            reason: reason.clone(),
        });
    }
    backend.sync_dir(&qdir)?;
    backend.sync_dir(dir)?;
    write_atomic(backend, &manifest_path, manifest.as_bytes())?;
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::{recover, DurableIngest};
    use uots_core::storage::StdFs;
    use uots_core::wal::WalConfig;
    use uots_core::Mutation;
    use uots_datagen::{Dataset, DatasetConfig};
    use uots_trajectory::Trajectory;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("uots_scrub_tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Builds a durable dir with a couple of checkpoints and WAL records.
    fn seeded_dir(name: &str) -> (PathBuf, Dataset) {
        let ds = Dataset::build(&DatasetConfig::small(16, 5)).unwrap();
        let dir = tmpdir(name);
        let mut ingest = DurableIngest::create(
            std::sync::Arc::new(ds.network.clone()),
            ds.store.clone(),
            ds.vocab.clone(),
            &dir,
            WalConfig::default(),
            Some(2),
            None,
        )
        .unwrap();
        let donor: Vec<Trajectory> = (0..6u32).map(|i| ds.store.get(TrajId(i)).clone()).collect();
        for (i, t) in donor.into_iter().enumerate() {
            ingest.apply(vec![Mutation::Insert(t)]).unwrap();
            if i % 2 == 1 {
                ingest.publish().unwrap();
            }
        }
        (dir, ds)
    }

    use uots_trajectory::TrajectoryId as TrajId;

    #[test]
    fn clean_directory_inspects_clean() {
        let (dir, _ds) = seeded_dir("clean");
        let r = inspect(&StdFs, &dir).unwrap();
        assert!(r.is_clean(), "{r:?}");
        assert!(r.segments >= 1);
        assert!(r.checkpoints >= 1);
        assert!(r.plan.checkpoint.is_some());
        assert!(r.recoverable(false));
        // inspect never creates quarantine
        assert!(!dir.join(QUARANTINE_DIR).exists());
    }

    #[test]
    fn corrupt_checkpoint_is_quarantined_with_manifest() {
        let (dir, ds) = seeded_dir("bad_ckpt");
        let cks = crate::durable::list_checkpoints(&dir);
        assert!(!cks.is_empty());
        // destroy the newest checkpoint's tail
        let victim = &cks[0];
        let mut raw = std::fs::read(victim).unwrap();
        let n = raw.len();
        raw[n - 3] ^= 0xff;
        std::fs::write(victim, &raw).unwrap();

        let r = inspect(&StdFs, &dir).unwrap();
        assert_eq!(r.invalid_checkpoints.len(), 1);
        assert!(victim.exists(), "inspect must not move files");

        let r = scrub(&StdFs, &dir).unwrap();
        assert_eq!(r.quarantined.len(), 1);
        assert!(!victim.exists(), "scrub moves the corrupt checkpoint");
        let qfile = &r.quarantined[0].quarantined;
        assert!(qfile.exists(), "quarantine preserves the bytes");
        let manifest =
            std::fs::read_to_string(dir.join(QUARANTINE_DIR).join(QUARANTINE_MANIFEST)).unwrap();
        assert!(
            manifest.contains(victim.file_name().unwrap().to_str().unwrap()),
            "manifest must name the file: {manifest}"
        );
        assert!(manifest.contains('\t'), "manifest lines are name\\treason");
        // recovery falls back to the older checkpoint and still works
        let rec = recover(&dir, Some(&ds), None).unwrap();
        assert!(rec.report.rejected_checkpoints.is_empty(), "scrub cleaned");

        // a second scrub is a no-op and must not disturb the evidence
        let r2 = scrub(&StdFs, &dir).unwrap();
        assert!(r2.quarantined.is_empty());
        assert!(qfile.exists());
    }

    #[test]
    fn torn_tail_is_reported_but_never_moved() {
        let (dir, _ds) = seeded_dir("torn");
        let segs = wal::list_segments(&dir).unwrap();
        let last = segs.last().unwrap().clone();
        let raw = std::fs::read(&last).unwrap();
        if raw.len() > wal::HEADER_LEN as usize + 4 {
            std::fs::write(&last, &raw[..raw.len() - 3]).unwrap();
        } else {
            // the active segment is header-only; tear the previous one
            // by appending garbage instead
            let mut extended = raw.clone();
            extended.extend_from_slice(&[0xde, 0xad]);
            std::fs::write(&last, &extended).unwrap();
        }
        let r = scrub(&StdFs, &dir).unwrap();
        assert!(r.torn_tail.is_some(), "{r:?}");
        assert!(last.exists(), "torn segments keep their durable records");
        assert!(r.quarantined.is_empty());
    }

    #[test]
    fn segments_behind_corruption_are_quarantined() {
        let (dir, _ds) = seeded_dir("behind");
        let segs = wal::list_segments(&dir).unwrap();
        // force a multi-segment log: corrupt the header of the first
        // segment, leaving any later ones unreachable
        let mut raw = std::fs::read(&segs[0]).unwrap();
        raw[0] ^= 0xff;
        std::fs::write(&segs[0], &raw).unwrap();
        let r = scrub(&StdFs, &dir).unwrap();
        assert!(
            r.unusable_segments.iter().any(|(p, _)| p == &segs[0]),
            "damaged header makes the segment unusable: {r:?}"
        );
        assert!(!segs[0].exists());
        for seg in &segs[1..] {
            assert!(
                !seg.exists(),
                "segments behind the corruption are unreachable and quarantined"
            );
        }
        // everything quarantined is still on disk under quarantine/
        for q in &r.quarantined {
            assert!(q.quarantined.exists());
        }
    }
}
