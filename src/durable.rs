//! Durable live ingest: WAL + checkpoints + crash recovery over the epoch
//! subsystem.
//!
//! This module ties the three layers together:
//!
//! * [`core::wal`](uots_core::wal) — the checksummed, segment-rotated
//!   write-ahead log every mutation batch hits *before* it is applied;
//! * [`datagen::persist`](uots_datagen::persist) checkpoints — periodic
//!   [`Checkpoint`] snapshots of the master store + liveness mask, stamped
//!   with the WAL high-water mark they contain;
//! * [`EpochManager::from_parts`] — rebuilding a serving manager from
//!   checkpoint + WAL tail after a crash.
//!
//! ## Invariants
//!
//! 1. **Log before apply.** [`DurableIngest::apply`] appends (and fsyncs,
//!    per policy) the batch before touching the in-memory manager, so the
//!    on-disk log is always a superset of the applied state.
//! 2. **Checkpoints sit on publish boundaries.** A checkpoint is cut only
//!    right after [`DurableIngest::publish`], from the freshly published
//!    snapshot, stamped with the last LSN appended before the publish —
//!    at that moment snapshot state ≡ durable state through that LSN.
//! 3. **Recovery = checkpoint ⊕ WAL tail.** [`recover`] loads the newest
//!    checkpoint that validates (falling back to older ones, then to the
//!    base dataset at LSN 0), replays every durable WAL batch with a
//!    greater LSN, and seeds a manager whose first snapshot answers
//!    queries bit-identically to a from-scratch rebuild of that prefix —
//!    the property `tests/wal_recovery.rs` proves at every crash point.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use uots_core::wal::{self, Corruption, WalConfig, WalError, WalWriter};
use uots_core::{EpochManager, EpochSnapshot, Mutation};
use uots_datagen::persist::{self, Checkpoint, PersistError};
use uots_datagen::Dataset;
use uots_network::RoadNetwork;
use uots_obs::MetricsRegistry;
use uots_text::Vocabulary;
use uots_trajectory::{LiveSet, Trajectory, TrajectoryId, TrajectoryStore};

/// Errors from the durable ingest path.
#[derive(Debug)]
pub enum DurableError {
    /// The write-ahead log failed (I/O or structural corruption).
    Wal(WalError),
    /// Checkpoint serialization/validation failed.
    Persist(PersistError),
    /// The log is internally inconsistent in a way checksums cannot
    /// excuse (e.g. a CRC-valid retire of an id the store never issued).
    Inconsistent(String),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Wal(e) => write!(f, "wal: {e}"),
            DurableError::Persist(e) => write!(f, "checkpoint: {e}"),
            DurableError::Inconsistent(m) => write!(f, "inconsistent log: {m}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<WalError> for DurableError {
    fn from(e: WalError) -> Self {
        DurableError::Wal(e)
    }
}

impl From<PersistError> for DurableError {
    fn from(e: PersistError) -> Self {
        DurableError::Persist(e)
    }
}

struct DurableMetrics {
    checkpoints: uots_obs::Counter,
    checkpoint_micros: uots_obs::Histogram,
    pruned_segments: uots_obs::Counter,
}

impl DurableMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        DurableMetrics {
            checkpoints: registry.counter("uots_checkpoints_total", "Checkpoints written"),
            checkpoint_micros: registry.histogram(
                "uots_checkpoint_micros",
                "Checkpoint write latency (serialize + fsync + rename), microseconds",
            ),
            pruned_segments: registry.counter(
                "uots_wal_pruned_segments_total",
                "WAL segments deleted after being covered by a checkpoint",
            ),
        }
    }
}

/// Write-side handle combining an [`EpochManager`] with its WAL and
/// checkpoint policy. Methods take `&mut self`: the durable path is
/// single-writer by construction (the manager itself additionally
/// serializes internally).
pub struct DurableIngest {
    manager: EpochManager,
    wal: WalWriter,
    dir: PathBuf,
    vocab: Vocabulary,
    /// Cut a checkpoint after this many batches (`None` = never).
    checkpoint_every: Option<u64>,
    batches_since_checkpoint: u64,
    last_checkpoint_lsn: u64,
    metrics: Option<DurableMetrics>,
}

impl DurableIngest {
    /// Opens a durable ingest session over `dir` for a manager seeded with
    /// `(network, store, vocab)`, everything live. `dir` holds both the
    /// WAL segments and the checkpoints. The *base* state is **not**
    /// logged: callers must retain it (or rely on checkpoints) for
    /// recovery.
    pub fn create(
        network: Arc<RoadNetwork>,
        store: TrajectoryStore,
        vocab: Vocabulary,
        dir: impl AsRef<Path>,
        config: WalConfig,
        checkpoint_every: Option<u64>,
        registry: Option<&MetricsRegistry>,
    ) -> Result<Self, DurableError> {
        let dir = dir.as_ref().to_path_buf();
        let wal = match registry {
            Some(r) => WalWriter::open_with_metrics(&dir, config, r)?,
            None => WalWriter::open(&dir, config)?,
        };
        let vocab_len = vocab.len();
        let manager = match registry {
            Some(r) => EpochManager::with_metrics(network, store, vocab_len, r),
            None => EpochManager::new(network, store, vocab_len),
        };
        Ok(DurableIngest {
            manager,
            wal,
            dir,
            vocab,
            checkpoint_every,
            batches_since_checkpoint: 0,
            last_checkpoint_lsn: 0,
            metrics: registry.map(DurableMetrics::register),
        })
    }

    /// Resumes a durable ingest session from a recovered manager (see
    /// [`recover`]); the WAL writer continues at the durable prefix's end.
    pub fn resume(
        recovered: Recovered,
        dir: impl AsRef<Path>,
        config: WalConfig,
        checkpoint_every: Option<u64>,
        registry: Option<&MetricsRegistry>,
    ) -> Result<Self, DurableError> {
        let dir = dir.as_ref().to_path_buf();
        let wal = match registry {
            Some(r) => WalWriter::open_with_metrics(&dir, config, r)?,
            None => WalWriter::open(&dir, config)?,
        };
        Ok(DurableIngest {
            manager: recovered.manager,
            wal,
            dir,
            vocab: recovered.vocab,
            checkpoint_every,
            batches_since_checkpoint: 0,
            last_checkpoint_lsn: recovered.report.checkpoint_lsn,
            metrics: registry.map(DurableMetrics::register),
        })
    }

    /// The underlying manager (snapshots, stats).
    pub fn manager(&self) -> &EpochManager {
        &self.manager
    }

    /// The current serving snapshot.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.manager.snapshot()
    }

    /// LSN the next batch will receive.
    pub fn next_lsn(&self) -> u64 {
        self.wal.next_lsn()
    }

    /// High-water mark of the last checkpoint written (0 = none).
    pub fn last_checkpoint_lsn(&self) -> u64 {
        self.last_checkpoint_lsn
    }

    /// Logs `batch` as one WAL record, then applies it to the manager.
    /// Returns the batch's LSN and the ids assigned to its inserts. On a
    /// WAL error nothing is applied — the in-memory state never runs
    /// ahead of the log.
    pub fn apply(
        &mut self,
        batch: Vec<Mutation>,
    ) -> Result<(u64, Vec<TrajectoryId>), DurableError> {
        let lsn = self.wal.append(&batch)?;
        let inserted = self.manager.apply(batch);
        self.batches_since_checkpoint += 1;
        Ok((lsn, inserted))
    }

    /// Logs and applies a single insert; returns its stable id.
    pub fn ingest(&mut self, t: Trajectory) -> Result<TrajectoryId, DurableError> {
        let (_, ids) = self.apply(vec![Mutation::Insert(t)])?;
        Ok(ids.into_iter().next().expect("insert assigns an id"))
    }

    /// Logs and applies a single retire; returns whether `id` was live
    /// (a retire of an already-retired id is logged but replays as the
    /// same no-op it was).
    pub fn retire(&mut self, id: TrajectoryId) -> Result<bool, DurableError> {
        self.wal.append(&[Mutation::Retire(id)])?;
        self.batches_since_checkpoint += 1;
        Ok(self.manager.retire(id))
    }

    /// Publishes a fresh snapshot (see [`EpochManager::publish`]) and, if
    /// the checkpoint cadence is due, cuts a checkpoint of it.
    pub fn publish(&mut self) -> Result<Arc<EpochSnapshot>, DurableError> {
        // capture the high-water mark *before* the swap: every batch
        // appended so far is applied, so the snapshot contains exactly
        // lsns 1..=high_water
        let high_water = self.wal.next_lsn().saturating_sub(1);
        let snapshot = self.manager.publish();
        if let Some(every) = self.checkpoint_every {
            if self.batches_since_checkpoint >= every {
                self.checkpoint_snapshot(&snapshot, high_water)?;
            }
        }
        Ok(snapshot)
    }

    /// Cuts a checkpoint of the current snapshot unconditionally. The
    /// durable state must equal the snapshot, so this publishes first if
    /// mutations are pending.
    pub fn checkpoint_now(&mut self) -> Result<Arc<EpochSnapshot>, DurableError> {
        let high_water = self.wal.next_lsn().saturating_sub(1);
        let snapshot = if self.manager.pending() > 0 {
            self.manager.publish()
        } else {
            self.manager.snapshot()
        };
        self.checkpoint_snapshot(&snapshot, high_water)?;
        Ok(snapshot)
    }

    fn checkpoint_snapshot(
        &mut self,
        snapshot: &EpochSnapshot,
        high_water: u64,
    ) -> Result<(), DurableError> {
        let started = Instant::now();
        let ck = Checkpoint {
            network: (**snapshot.network()).clone(),
            vocab: self.vocab.clone(),
            store: snapshot.store().clone(),
            live: snapshot.live().clone(),
            epoch: snapshot.epoch(),
            lsn: high_water,
        };
        persist::save_checkpoint_file(&ck, checkpoint_path(&self.dir, high_water))?;
        self.batches_since_checkpoint = 0;
        self.last_checkpoint_lsn = high_water;
        let pruned = wal::prune_segments(&self.dir, high_water)? as u64;
        if let Some(m) = &self.metrics {
            m.checkpoints.inc();
            m.checkpoint_micros
                .record(started.elapsed().as_micros() as u64);
            m.pruned_segments.add(pruned);
        }
        Ok(())
    }
}

fn checkpoint_path(dir: &Path, lsn: u64) -> PathBuf {
    dir.join(format!("ckpt-{lsn:020}.uotsck"))
}

/// Lists checkpoint files in `dir`, newest (highest LSN) first.
pub fn list_checkpoints(dir: impl AsRef<Path>) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir.as_ref())
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".uotsck"))
        })
        .collect();
    out.sort();
    out.reverse();
    out
}

/// What [`recover`] rebuilt the manager from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverySource {
    /// A validated checkpoint file.
    Checkpoint(PathBuf),
    /// The caller-supplied base dataset (no usable checkpoint).
    BaseDataset,
}

/// Outcome of a [`recover`] run.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Where the base state came from.
    pub source: RecoverySource,
    /// WAL high-water mark of the recovered-from state (0 for the base
    /// dataset).
    pub checkpoint_lsn: u64,
    /// Checkpoint files that failed validation and were skipped.
    pub rejected_checkpoints: Vec<PathBuf>,
    /// WAL batches replayed on top of the base state.
    pub replayed_batches: u64,
    /// Individual mutations inside those batches.
    pub replayed_mutations: u64,
    /// One past the highest durable LSN (where a resumed writer starts).
    pub next_lsn: u64,
    /// Set when the WAL scan stopped at a damaged record; everything
    /// before it was recovered, everything after discarded.
    pub wal_corruption: Option<Corruption>,
    /// Wall-clock recovery time in microseconds.
    pub micros: u64,
}

/// A recovered serving state: the manager plus the vocabulary it indexes.
pub struct Recovered {
    /// Manager seeded with the recovered store/mask, serving immediately.
    pub manager: EpochManager,
    /// Vocabulary (from the checkpoint, or the base dataset).
    pub vocab: Vocabulary,
    /// What happened.
    pub report: RecoveryReport,
}

/// Rebuilds an [`EpochManager`] from the durable state in `dir`: the
/// newest checkpoint that validates (corrupt ones are skipped — recovery
/// must survive exactly the failures it exists for), plus the durable WAL
/// tail. `base` seeds recovery when no checkpoint is usable; recovery
/// fails only if neither exists. When `registry` is given, recovery
/// counters/latency land in `uots_recovery_*`.
pub fn recover(
    dir: impl AsRef<Path>,
    base: Option<&Dataset>,
    registry: Option<&MetricsRegistry>,
) -> Result<Recovered, DurableError> {
    let started = Instant::now();
    let dir = dir.as_ref();

    // newest validating checkpoint wins; damaged ones are recorded + skipped
    let mut rejected = Vec::new();
    let mut checkpoint: Option<(PathBuf, Checkpoint)> = None;
    for path in list_checkpoints(dir) {
        match persist::load_checkpoint_file(&path) {
            Ok(ck) => {
                checkpoint = Some((path, ck));
                break;
            }
            Err(_) => rejected.push(path),
        }
    }

    let (source, network, vocab, mut store, mut live, epoch, after_lsn) = match checkpoint {
        Some((path, ck)) => (
            RecoverySource::Checkpoint(path),
            Arc::new(ck.network),
            ck.vocab,
            ck.store,
            ck.live,
            ck.epoch,
            ck.lsn,
        ),
        None => {
            let ds = base.ok_or_else(|| {
                DurableError::Inconsistent(
                    "no usable checkpoint and no base dataset to recover from".into(),
                )
            })?;
            let store = ds.store.clone();
            let live = LiveSet::all_live(store.len());
            (
                RecoverySource::BaseDataset,
                Arc::new(ds.network.clone()),
                ds.vocab.clone(),
                store,
                live,
                0,
                0,
            )
        }
    };

    let replayed = wal::replay(dir, after_lsn)?;
    let mut mutations = 0u64;
    let batches = replayed.batches.len() as u64;
    for (lsn, batch) in replayed.batches {
        for m in batch {
            mutations += 1;
            match m {
                Mutation::Insert(t) => {
                    // ids must stay dense/stable: an insert lands at the
                    // next id, exactly as the original ingest assigned it
                    for v in t.nodes() {
                        if !network.contains_node(v) {
                            return Err(DurableError::Inconsistent(format!(
                                "wal lsn {lsn}: insert references unknown vertex {v}"
                            )));
                        }
                    }
                    store.push(t);
                    live.grow_to(store.len());
                }
                Mutation::Retire(id) => {
                    if id.index() >= store.len() {
                        return Err(DurableError::Inconsistent(format!(
                            "wal lsn {lsn}: retire of id {id} the store never issued"
                        )));
                    }
                    live.retire(id);
                }
            }
        }
    }

    let vocab_len = vocab.len();
    let manager = match registry {
        Some(r) => EpochManager::from_parts_with_metrics(
            Arc::clone(&network),
            store,
            live,
            vocab_len,
            epoch,
            r,
        ),
        None => EpochManager::from_parts(Arc::clone(&network), store, live, vocab_len, epoch),
    };

    let micros = started.elapsed().as_micros() as u64;
    if let Some(r) = registry {
        r.counter("uots_recovery_total", "Crash recoveries performed")
            .inc();
        r.counter(
            "uots_recovery_replayed_batches_total",
            "WAL batches replayed during recovery",
        )
        .add(batches);
        r.counter(
            "uots_recovery_replayed_mutations_total",
            "Mutations replayed during recovery",
        )
        .add(mutations);
        if replayed.corruption.is_some() {
            r.counter(
                "uots_recovery_truncations_total",
                "Recoveries that found a torn/corrupt WAL tail",
            )
            .inc();
        }
        r.counter(
            "uots_recovery_rejected_checkpoints_total",
            "Checkpoint files skipped as corrupt during recovery",
        )
        .add(rejected.len() as u64);
        r.histogram(
            "uots_recovery_micros",
            "Crash recovery wall time (checkpoint load + WAL replay + index build), microseconds",
        )
        .record(micros);
    }

    Ok(Recovered {
        manager,
        vocab,
        report: RecoveryReport {
            source,
            checkpoint_lsn: after_lsn,
            rejected_checkpoints: rejected,
            replayed_batches: batches,
            replayed_mutations: mutations,
            next_lsn: replayed.next_lsn,
            wal_corruption: replayed.corruption,
            micros,
        },
    })
}
