//! Durable live ingest: WAL + checkpoints + crash recovery over the epoch
//! subsystem.
//!
//! This module ties the three layers together:
//!
//! * [`core::wal`](uots_core::wal) — the checksummed, segment-rotated
//!   write-ahead log every mutation batch hits *before* it is applied;
//! * [`datagen::persist`](uots_datagen::persist) checkpoints — periodic
//!   [`Checkpoint`] snapshots of the master store + liveness mask, stamped
//!   with the WAL high-water mark they contain;
//! * [`EpochManager::from_parts`] — rebuilding a serving manager from
//!   checkpoint + WAL tail after a crash.
//!
//! ## Invariants
//!
//! 1. **Log before apply.** [`DurableIngest::apply`] appends (and fsyncs,
//!    per policy) the batch before touching the in-memory manager, so the
//!    on-disk log is always a superset of the applied state.
//! 2. **Checkpoints sit on publish boundaries.** A checkpoint is cut only
//!    right after [`DurableIngest::publish`], from the freshly published
//!    snapshot, stamped with the last LSN appended before the publish —
//!    at that moment snapshot state ≡ durable state through that LSN.
//! 3. **Recovery = checkpoint ⊕ WAL tail.** [`recover`] loads the newest
//!    checkpoint that validates (falling back to older ones, then to the
//!    base dataset at LSN 0), replays every durable WAL batch with a
//!    greater LSN, and seeds a manager whose first snapshot answers
//!    queries bit-identically to a from-scratch rebuild of that prefix —
//!    the property `tests/wal_recovery.rs` proves at every crash point.
//!
//! ## Failing storage: retry, then degrade — never lie
//!
//! Every file operation goes through a
//! [`StorageBackend`](uots_core::storage::StorageBackend), and WAL append
//! failures are handled by class ([`ErrorClass`](uots_core::storage::ErrorClass)):
//!
//! * **Transient** errors (interrupt, timeout, ENOSPC an operator might
//!   clear) are retried with bounded exponential backoff + jitter under a
//!   [`RetryPolicy`]. Each retry reuses the same LSN — the WAL writer
//!   advances it only on success — so a retry can never duplicate a batch.
//! * **Permanent** errors get at most one retry (which, after the WAL's
//!   sealing, lands on a *fresh* segment — the failure may be local to one
//!   file), then the ingest flips to the terminal
//!   [`Degraded`](IngestState::Degraded) state: queries keep serving the
//!   last published snapshot, every mutation is rejected with
//!   [`DurableError::ReadOnly`], and the state is visible in
//!   `uots_durable_*` metrics and [`DurableIngest::status`].
//! * **Checkpoint failures never degrade** ingest: the WAL alone carries
//!   full durability; a failed checkpoint is counted, surfaced in
//!   status, and retried at the next cadence point.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use uots_core::storage::{ErrorClass, RetryPolicy, StdFs, StorageBackend};
use uots_core::wal::{self, Corruption, WalConfig, WalError, WalWriter};
use uots_core::{EpochManager, EpochSnapshot, Mutation};
use uots_datagen::persist::{self, Checkpoint, PersistError};
use uots_datagen::Dataset;
use uots_network::RoadNetwork;
use uots_obs::{EventJournal, MetricsRegistry};
use uots_text::Vocabulary;
use uots_trajectory::{LiveSet, Trajectory, TrajectoryId, TrajectoryStore};

/// Errors from the durable ingest path.
#[derive(Debug)]
pub enum DurableError {
    /// The write-ahead log failed (I/O or structural corruption).
    Wal(WalError),
    /// Checkpoint serialization/validation failed.
    Persist(PersistError),
    /// The log is internally inconsistent in a way checksums cannot
    /// excuse (e.g. a CRC-valid retire of an id the store never issued).
    Inconsistent(String),
    /// The ingest is in read-only degraded mode: durability cannot be
    /// guaranteed, so mutations are rejected. Queries keep serving the
    /// last published snapshot.
    ReadOnly {
        /// Why the ingest degraded (the original storage failure).
        reason: String,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Wal(e) => write!(f, "wal: {e}"),
            DurableError::Persist(e) => write!(f, "checkpoint: {e}"),
            DurableError::Inconsistent(m) => write!(f, "inconsistent log: {m}"),
            DurableError::ReadOnly { reason } => {
                write!(f, "ingest degraded to read-only: {reason}")
            }
        }
    }
}

impl std::error::Error for DurableError {}

impl From<WalError> for DurableError {
    fn from(e: WalError) -> Self {
        DurableError::Wal(e)
    }
}

impl From<PersistError> for DurableError {
    fn from(e: PersistError) -> Self {
        DurableError::Persist(e)
    }
}

struct DurableMetrics {
    checkpoints: uots_obs::Counter,
    checkpoint_micros: uots_obs::Histogram,
    pruned_segments: uots_obs::Counter,
    retries: uots_obs::Counter,
    append_failures: uots_obs::Counter,
    checkpoint_failures: uots_obs::Counter,
    prune_failures: uots_obs::Counter,
    degraded: uots_obs::Gauge,
    rejected_mutations: uots_obs::Counter,
}

impl DurableMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        DurableMetrics {
            checkpoints: registry.counter("uots_checkpoints_total", "Checkpoints written"),
            checkpoint_micros: registry.histogram(
                "uots_checkpoint_micros",
                "Checkpoint write latency (serialize + fsync + rename), microseconds",
            ),
            pruned_segments: registry.counter(
                "uots_wal_pruned_segments_total",
                "WAL segments deleted after being covered by a checkpoint",
            ),
            retries: registry.counter(
                "uots_durable_retries_total",
                "WAL append attempts retried after a storage error",
            ),
            append_failures: registry.counter(
                "uots_durable_append_failures_total",
                "WAL appends that failed after exhausting the retry budget",
            ),
            checkpoint_failures: registry.counter(
                "uots_durable_checkpoint_failures_total",
                "Checkpoint writes that failed (retried at the next cadence)",
            ),
            prune_failures: registry.counter(
                "uots_durable_prune_failures_total",
                "Segment prunes that failed after the covering checkpoint landed",
            ),
            degraded: registry.gauge(
                "uots_durable_degraded",
                "1 when ingest is read-only degraded, else 0",
            ),
            rejected_mutations: registry.counter(
                "uots_durable_rejected_mutations_total",
                "Mutations rejected because ingest is degraded",
            ),
        }
    }
}

/// Write-path health of a [`DurableIngest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestState {
    /// Accepting mutations.
    Healthy,
    /// Terminal read-only state: a storage failure exhausted its retry
    /// budget. Queries serve the last published snapshot; every mutation
    /// is rejected with [`DurableError::ReadOnly`]. Recovery is operator
    /// action: fix the storage, restart, `recover()`.
    Degraded {
        /// The storage failure that tripped it.
        reason: String,
    },
}

/// A point-in-time health summary for operators ([`DurableIngest::status`],
/// surfaced by `uots status`).
#[derive(Debug, Clone)]
pub struct DurableStatus {
    /// Write-path state.
    pub state: IngestState,
    /// LSN the next batch would receive.
    pub next_lsn: u64,
    /// Highest LSN known durable on stable storage.
    pub durable_lsn: u64,
    /// High-water mark of the last checkpoint written (0 = none).
    pub last_checkpoint_lsn: u64,
    /// Batches applied since that checkpoint.
    pub batches_since_checkpoint: u64,
    /// Checkpoint writes that failed since startup.
    pub checkpoint_failures: u64,
    /// The most recent checkpoint failure, if any.
    pub last_checkpoint_error: Option<String>,
    /// Segment prunes that failed after their checkpoint landed. Benign
    /// (extra log stays on disk; retried at the next checkpoint) but
    /// worth watching: a persistent cause means unbounded log growth.
    pub prune_failures: u64,
    /// The most recent prune failure, if any.
    pub last_prune_error: Option<String>,
}

impl serde::Serialize for DurableStatus {
    fn serialize(&self) -> serde::Content {
        use serde::Content;
        fn opt(s: &Option<String>) -> Content {
            match s {
                Some(v) => Content::Str(v.clone()),
                None => Content::Null,
            }
        }
        let (state, reason) = match &self.state {
            IngestState::Healthy => ("healthy", None),
            IngestState::Degraded { reason } => ("degraded", Some(reason.clone())),
        };
        Content::Map(vec![
            ("state".to_string(), Content::Str(state.to_string())),
            (
                "degraded_reason".to_string(),
                match reason {
                    Some(r) => Content::Str(r),
                    None => Content::Null,
                },
            ),
            ("next_lsn".to_string(), Content::U64(self.next_lsn)),
            ("durable_lsn".to_string(), Content::U64(self.durable_lsn)),
            (
                "last_checkpoint_lsn".to_string(),
                Content::U64(self.last_checkpoint_lsn),
            ),
            (
                "batches_since_checkpoint".to_string(),
                Content::U64(self.batches_since_checkpoint),
            ),
            (
                "checkpoint_failures".to_string(),
                Content::U64(self.checkpoint_failures),
            ),
            (
                "last_checkpoint_error".to_string(),
                opt(&self.last_checkpoint_error),
            ),
            (
                "prune_failures".to_string(),
                Content::U64(self.prune_failures),
            ),
            ("last_prune_error".to_string(), opt(&self.last_prune_error)),
        ])
    }
}

/// Write-side handle combining an [`EpochManager`] with its WAL and
/// checkpoint policy. Methods take `&mut self`: the durable path is
/// single-writer by construction (the manager itself additionally
/// serializes internally).
pub struct DurableIngest {
    manager: EpochManager,
    wal: WalWriter,
    dir: PathBuf,
    vocab: Vocabulary,
    backend: Arc<dyn StorageBackend>,
    retry: RetryPolicy,
    /// `Some(reason)` once the ingest has degraded to read-only.
    degraded: Option<String>,
    /// Cut a checkpoint after this many batches (`None` = never).
    checkpoint_every: Option<u64>,
    batches_since_checkpoint: u64,
    last_checkpoint_lsn: u64,
    checkpoint_failures: u64,
    last_checkpoint_error: Option<String>,
    prune_failures: u64,
    last_prune_error: Option<String>,
    metrics: Option<DurableMetrics>,
    journal: Option<EventJournal>,
}

impl DurableIngest {
    /// Opens a durable ingest session over `dir` for a manager seeded with
    /// `(network, store, vocab)`, everything live. `dir` holds both the
    /// WAL segments and the checkpoints. The *base* state is **not**
    /// logged: callers must retain it (or rely on checkpoints) for
    /// recovery.
    pub fn create(
        network: Arc<RoadNetwork>,
        store: TrajectoryStore,
        vocab: Vocabulary,
        dir: impl AsRef<Path>,
        config: WalConfig,
        checkpoint_every: Option<u64>,
        registry: Option<&MetricsRegistry>,
    ) -> Result<Self, DurableError> {
        Self::create_with_backend(
            network,
            store,
            vocab,
            dir,
            config,
            checkpoint_every,
            registry,
            Arc::new(StdFs),
            RetryPolicy::default(),
        )
    }

    /// [`create`](Self::create) on an explicit storage backend and retry
    /// policy (fault injection goes through here).
    #[allow(clippy::too_many_arguments)]
    pub fn create_with_backend(
        network: Arc<RoadNetwork>,
        store: TrajectoryStore,
        vocab: Vocabulary,
        dir: impl AsRef<Path>,
        config: WalConfig,
        checkpoint_every: Option<u64>,
        registry: Option<&MetricsRegistry>,
        backend: Arc<dyn StorageBackend>,
        retry: RetryPolicy,
    ) -> Result<Self, DurableError> {
        let dir = dir.as_ref().to_path_buf();
        let wal = match registry {
            Some(r) => {
                WalWriter::open_with_backend_and_metrics(&dir, config, Arc::clone(&backend), r)?
            }
            None => WalWriter::open_with_backend(&dir, config, Arc::clone(&backend))?,
        };
        let vocab_len = vocab.len();
        let manager = match registry {
            Some(r) => EpochManager::with_metrics(network, store, vocab_len, r),
            None => EpochManager::new(network, store, vocab_len),
        };
        Ok(DurableIngest {
            manager,
            wal,
            dir,
            vocab,
            backend,
            retry,
            degraded: None,
            checkpoint_every,
            batches_since_checkpoint: 0,
            last_checkpoint_lsn: 0,
            checkpoint_failures: 0,
            last_checkpoint_error: None,
            prune_failures: 0,
            last_prune_error: None,
            metrics: registry.map(DurableMetrics::register),
            journal: None,
        })
    }

    /// Resumes a durable ingest session from a recovered manager (see
    /// [`recover`]); the WAL writer continues at the durable prefix's end.
    pub fn resume(
        recovered: Recovered,
        dir: impl AsRef<Path>,
        config: WalConfig,
        checkpoint_every: Option<u64>,
        registry: Option<&MetricsRegistry>,
    ) -> Result<Self, DurableError> {
        Self::resume_with_backend(
            recovered,
            dir,
            config,
            checkpoint_every,
            registry,
            Arc::new(StdFs),
            RetryPolicy::default(),
        )
    }

    /// [`resume`](Self::resume) on an explicit storage backend and retry
    /// policy.
    pub fn resume_with_backend(
        recovered: Recovered,
        dir: impl AsRef<Path>,
        config: WalConfig,
        checkpoint_every: Option<u64>,
        registry: Option<&MetricsRegistry>,
        backend: Arc<dyn StorageBackend>,
        retry: RetryPolicy,
    ) -> Result<Self, DurableError> {
        let dir = dir.as_ref().to_path_buf();
        let wal = match registry {
            Some(r) => {
                WalWriter::open_with_backend_and_metrics(&dir, config, Arc::clone(&backend), r)?
            }
            None => WalWriter::open_with_backend(&dir, config, Arc::clone(&backend))?,
        };
        // refuse to reissue LSNs an existing checkpoint already covers —
        // replay would skip the duplicates, silently dropping new batches
        // at the next recovery
        if wal.next_lsn() < recovered.report.next_lsn {
            return Err(DurableError::Inconsistent(format!(
                "wal ends at lsn {} but the recovered state covers lsn {}: \
                 resuming would reissue checkpoint-covered lsns",
                wal.next_lsn().saturating_sub(1),
                recovered.report.next_lsn.saturating_sub(1),
            )));
        }
        Ok(DurableIngest {
            manager: recovered.manager,
            wal,
            dir,
            vocab: recovered.vocab,
            backend,
            retry,
            degraded: None,
            checkpoint_every,
            batches_since_checkpoint: 0,
            last_checkpoint_lsn: recovered.report.checkpoint_lsn,
            checkpoint_failures: 0,
            last_checkpoint_error: None,
            prune_failures: 0,
            last_prune_error: None,
            metrics: registry.map(DurableMetrics::register),
            journal: None,
        })
    }

    /// Attaches an operational [`EventJournal`] to this ingest and to its
    /// WAL writer and epoch manager, so retries, degradations, checkpoint
    /// outcomes, seals, and snapshot swaps all land in one timeline.
    pub fn set_journal(&mut self, journal: EventJournal) {
        self.wal.set_journal(journal.clone());
        self.manager.set_journal(journal.clone());
        self.journal = Some(journal);
    }

    /// The underlying manager (snapshots, stats).
    pub fn manager(&self) -> &EpochManager {
        &self.manager
    }

    /// The current serving snapshot.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.manager.snapshot()
    }

    /// LSN the next batch will receive.
    pub fn next_lsn(&self) -> u64 {
        self.wal.next_lsn()
    }

    /// High-water mark of the last checkpoint written (0 = none).
    pub fn last_checkpoint_lsn(&self) -> u64 {
        self.last_checkpoint_lsn
    }

    /// Whether the ingest has degraded to read-only.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// Point-in-time health summary (what `uots status` prints for a live
    /// embedder).
    pub fn status(&self) -> DurableStatus {
        DurableStatus {
            state: match &self.degraded {
                None => IngestState::Healthy,
                Some(reason) => IngestState::Degraded {
                    reason: reason.clone(),
                },
            },
            next_lsn: self.wal.next_lsn(),
            durable_lsn: self.wal.durable_lsn(),
            last_checkpoint_lsn: self.last_checkpoint_lsn,
            batches_since_checkpoint: self.batches_since_checkpoint,
            checkpoint_failures: self.checkpoint_failures,
            last_checkpoint_error: self.last_checkpoint_error.clone(),
            prune_failures: self.prune_failures,
            last_prune_error: self.last_prune_error.clone(),
        }
    }

    fn degrade(&mut self, reason: String) {
        if self.degraded.is_none() {
            if let Some(j) = &self.journal {
                j.error(
                    "durable",
                    "degraded_read_only",
                    &[("reason", reason.clone())],
                );
            }
            self.degraded = Some(reason);
            if let Some(m) = &self.metrics {
                m.degraded.set(1);
            }
        }
    }

    /// Appends with the retry policy: transient errors back off and
    /// retry (each retry reuses the same LSN — the writer advances it
    /// only on success); permanent errors get one fresh-segment retry;
    /// exhaustion degrades the ingest and returns the final error.
    fn append_with_retry(&mut self, batch: &[Mutation]) -> Result<u64, DurableError> {
        if let Some(reason) = &self.degraded {
            if let Some(m) = &self.metrics {
                m.rejected_mutations.add(batch.len().max(1) as u64);
            }
            return Err(DurableError::ReadOnly {
                reason: reason.clone(),
            });
        }
        let mut attempts = 0u32;
        loop {
            let err = match self.wal.append(batch) {
                Ok(lsn) => return Ok(lsn),
                Err(e) => e,
            };
            attempts += 1;
            let class = match &err {
                WalError::Io(io) => ErrorClass::of(io),
                // structural corruption: retrying cannot repair a log
                WalError::Corrupt(_) => ErrorClass::Permanent,
            };
            if self.retry.allows_retry(class, attempts) {
                if let Some(m) = &self.metrics {
                    m.retries.inc();
                }
                if let Some(j) = &self.journal {
                    j.warn(
                        "durable",
                        "append_retry",
                        &[
                            ("attempt", attempts.to_string()),
                            ("class", format!("{class:?}")),
                            ("error", err.to_string()),
                        ],
                    );
                }
                let backoff = self.retry.backoff(attempts);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                continue;
            }
            if let Some(m) = &self.metrics {
                m.append_failures.inc();
            }
            if let Some(j) = &self.journal {
                j.error(
                    "durable",
                    "retries_exhausted",
                    &[
                        ("attempts", attempts.to_string()),
                        ("class", format!("{class:?}")),
                        ("error", err.to_string()),
                    ],
                );
            }
            self.degrade(format!(
                "wal append failed after {attempts} attempt(s) ({class:?}): {err}"
            ));
            return Err(err.into());
        }
    }

    /// Logs `batch` as one WAL record, then applies it to the manager.
    /// Returns the batch's LSN and the ids assigned to its inserts. On a
    /// WAL error nothing is applied — the in-memory state never runs
    /// ahead of the log. Storage errors are retried per the
    /// [`RetryPolicy`]; exhaustion degrades the ingest to read-only
    /// (subsequent calls fail fast with [`DurableError::ReadOnly`]).
    pub fn apply(
        &mut self,
        batch: Vec<Mutation>,
    ) -> Result<(u64, Vec<TrajectoryId>), DurableError> {
        let lsn = self.append_with_retry(&batch)?;
        let inserted = self.manager.apply(batch);
        self.batches_since_checkpoint += 1;
        Ok((lsn, inserted))
    }

    /// Logs and applies a single insert; returns its stable id.
    pub fn ingest(&mut self, t: Trajectory) -> Result<TrajectoryId, DurableError> {
        let (_, ids) = self.apply(vec![Mutation::Insert(t)])?;
        Ok(ids.into_iter().next().expect("insert assigns an id"))
    }

    /// Logs and applies a single retire; returns whether `id` was live
    /// (a retire of an already-retired id is logged but replays as the
    /// same no-op it was).
    pub fn retire(&mut self, id: TrajectoryId) -> Result<bool, DurableError> {
        self.append_with_retry(&[Mutation::Retire(id)])?;
        self.batches_since_checkpoint += 1;
        Ok(self.manager.retire(id))
    }

    /// Publishes a fresh snapshot (see [`EpochManager::publish`]) and, if
    /// the checkpoint cadence is due, cuts a checkpoint of it.
    ///
    /// A *checkpoint* failure does not fail the publish and does not
    /// degrade ingest — the WAL already carries full durability; the
    /// failure is counted, visible in [`status`](Self::status), and the
    /// checkpoint is retried at the next cadence point. Publishing is
    /// allowed while degraded (it cannot lose anything: no new mutations
    /// are being accepted).
    pub fn publish(&mut self) -> Result<Arc<EpochSnapshot>, DurableError> {
        // capture the high-water mark *before* the swap: every batch
        // appended so far is applied, so the snapshot contains exactly
        // lsns 1..=high_water
        let high_water = self.wal.next_lsn().saturating_sub(1);
        let snapshot = self.manager.publish();
        if let Some(every) = self.checkpoint_every {
            if self.batches_since_checkpoint >= every {
                if let Err(e) = self.checkpoint_snapshot(&snapshot, high_water) {
                    self.note_checkpoint_failure(&e);
                }
            }
        }
        Ok(snapshot)
    }

    /// Cuts a checkpoint of the current snapshot unconditionally. The
    /// durable state must equal the snapshot, so this publishes first if
    /// mutations are pending. Unlike the cadence-driven checkpoint in
    /// [`publish`](Self::publish), an explicit request propagates the
    /// failure (the caller asked for exactly this work).
    pub fn checkpoint_now(&mut self) -> Result<Arc<EpochSnapshot>, DurableError> {
        let high_water = self.wal.next_lsn().saturating_sub(1);
        let snapshot = if self.manager.pending() > 0 {
            self.manager.publish()
        } else {
            self.manager.snapshot()
        };
        if let Err(e) = self.checkpoint_snapshot(&snapshot, high_water) {
            self.note_checkpoint_failure(&e);
            return Err(e);
        }
        Ok(snapshot)
    }

    fn note_checkpoint_failure(&mut self, e: &DurableError) {
        self.checkpoint_failures += 1;
        self.last_checkpoint_error = Some(e.to_string());
        if let Some(m) = &self.metrics {
            m.checkpoint_failures.inc();
        }
        if let Some(j) = &self.journal {
            j.error("durable", "checkpoint_failed", &[("error", e.to_string())]);
        }
    }

    fn checkpoint_snapshot(
        &mut self,
        snapshot: &EpochSnapshot,
        high_water: u64,
    ) -> Result<(), DurableError> {
        let started = Instant::now();
        // A checkpoint asserts "state through `high_water` is durable", so
        // the log must be durable through it *first*. Under a lazy fsync
        // policy the WAL can lag the applied state; without this sync a
        // crash could preserve the checkpoint but not the log tail it
        // summarizes — and a resumed writer, continuing from the shorter
        // log, would reissue LSNs the checkpoint already covers, which a
        // later recovery would silently skip.
        if self.wal.durable_lsn() < high_water {
            self.wal.sync()?;
        }
        let ck = Checkpoint {
            network: (**snapshot.network()).clone(),
            vocab: self.vocab.clone(),
            store: snapshot.store().clone(),
            live: snapshot.live().clone(),
            epoch: snapshot.epoch(),
            lsn: high_water,
        };
        persist::save_checkpoint_file_with(
            &*self.backend,
            &ck,
            &checkpoint_path(&self.dir, high_water),
        )?;
        self.batches_since_checkpoint = 0;
        self.last_checkpoint_lsn = high_water;
        // The checkpoint is durable at this point; pruning is cleanup of
        // segments it already covers. A prune failure leaves extra (but
        // harmless) log on disk, so it must not be reported as a failed
        // checkpoint — it gets its own accounting and the next successful
        // checkpoint retries the removal.
        let pruned = match wal::prune_segments_with(&*self.backend, &self.dir, high_water) {
            Ok(n) => n as u64,
            Err(e) => {
                self.prune_failures += 1;
                self.last_prune_error = Some(e.to_string());
                if let Some(m) = &self.metrics {
                    m.prune_failures.inc();
                }
                if let Some(j) = &self.journal {
                    j.warn("durable", "prune_failed", &[("error", e.to_string())]);
                }
                0
            }
        };
        if let Some(m) = &self.metrics {
            m.checkpoints.inc();
            m.checkpoint_micros
                .record(started.elapsed().as_micros() as u64);
            m.pruned_segments.add(pruned);
        }
        if let Some(j) = &self.journal {
            j.info(
                "durable",
                "checkpoint_written",
                &[
                    ("lsn", high_water.to_string()),
                    ("pruned_segments", pruned.to_string()),
                    ("micros", started.elapsed().as_micros().to_string()),
                ],
            );
        }
        Ok(())
    }
}

fn checkpoint_path(dir: &Path, lsn: u64) -> PathBuf {
    dir.join(format!("ckpt-{lsn:020}.uotsck"))
}

/// Lists checkpoint files in `dir`, newest (highest LSN) first.
pub fn list_checkpoints(dir: impl AsRef<Path>) -> Vec<PathBuf> {
    list_checkpoints_with(&StdFs, dir.as_ref())
}

/// [`list_checkpoints`] through an explicit backend.
pub fn list_checkpoints_with(backend: &dyn StorageBackend, dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = backend
        .read_dir(dir)
        .into_iter()
        .flatten()
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".uotsck"))
        })
        .collect();
    out.sort();
    out.reverse();
    out
}

/// What [`recover`] rebuilt the manager from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverySource {
    /// A validated checkpoint file.
    Checkpoint(PathBuf),
    /// The caller-supplied base dataset (no usable checkpoint).
    BaseDataset,
}

/// Outcome of a [`recover`] run.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Where the base state came from.
    pub source: RecoverySource,
    /// WAL high-water mark of the recovered-from state (0 for the base
    /// dataset).
    pub checkpoint_lsn: u64,
    /// Checkpoint files that failed validation and were skipped.
    pub rejected_checkpoints: Vec<PathBuf>,
    /// WAL batches replayed on top of the base state.
    pub replayed_batches: u64,
    /// Individual mutations inside those batches.
    pub replayed_mutations: u64,
    /// One past the highest durable LSN (where a resumed writer starts).
    pub next_lsn: u64,
    /// Set when the WAL scan stopped at a damaged record; everything
    /// before it was recovered, everything after discarded.
    pub wal_corruption: Option<Corruption>,
    /// Wall-clock recovery time in microseconds.
    pub micros: u64,
}

/// A recovered serving state: the manager plus the vocabulary it indexes.
pub struct Recovered {
    /// Manager seeded with the recovered store/mask, serving immediately.
    pub manager: EpochManager,
    /// Vocabulary (from the checkpoint, or the base dataset).
    pub vocab: Vocabulary,
    /// What happened.
    pub report: RecoveryReport,
}

/// Rebuilds an [`EpochManager`] from the durable state in `dir`: the
/// newest checkpoint that validates (corrupt ones are skipped — recovery
/// must survive exactly the failures it exists for), plus the durable WAL
/// tail. `base` seeds recovery when no checkpoint is usable; recovery
/// fails only if neither exists. When `registry` is given, recovery
/// counters/latency land in `uots_recovery_*`.
pub fn recover(
    dir: impl AsRef<Path>,
    base: Option<&Dataset>,
    registry: Option<&MetricsRegistry>,
) -> Result<Recovered, DurableError> {
    recover_with(&StdFs, dir.as_ref(), base, registry)
}

/// [`recover`] through an explicit storage backend.
pub fn recover_with(
    backend: &dyn StorageBackend,
    dir: &Path,
    base: Option<&Dataset>,
    registry: Option<&MetricsRegistry>,
) -> Result<Recovered, DurableError> {
    recover_with_journal(backend, dir, base, registry, None)
}

/// [`recover_with`] plus an operational [`EventJournal`]: the chosen
/// recovery plan (source, replayed tail, truncation) and every rejected
/// checkpoint are recorded as events.
pub fn recover_with_journal(
    backend: &dyn StorageBackend,
    dir: &Path,
    base: Option<&Dataset>,
    registry: Option<&MetricsRegistry>,
    journal: Option<&EventJournal>,
) -> Result<Recovered, DurableError> {
    let started = Instant::now();

    // One scan of the whole durable log up front: the replay guarantees
    // the surviving batches form one strictly-sequential LSN run, so a
    // checkpoint candidate can be checked for tail contiguity below.
    let replayed = wal::replay_with(backend, dir, 0)?;
    // The first surviving batch past `after_lsn`, if any. A usable base
    // state must be continued *exactly* at after_lsn + 1: segments in
    // between may have been pruned against a newer checkpoint that is now
    // unusable, and replaying a gapped tail would assign wrong dense ids
    // to inserts and retire wrong rows — silently.
    let tail_gap = |after_lsn: u64| -> Option<u64> {
        replayed
            .batches
            .iter()
            .map(|(l, _)| *l)
            .find(|l| *l > after_lsn)
            .filter(|first| *first != after_lsn + 1)
    };

    // newest validating checkpoint with a contiguous tail wins; damaged
    // or gapped ones are recorded + skipped
    let mut rejected = Vec::new();
    let mut checkpoint: Option<(PathBuf, Checkpoint)> = None;
    for path in list_checkpoints_with(backend, dir) {
        match persist::load_checkpoint_file_with(backend, &path) {
            Ok(ck) => {
                if tail_gap(ck.lsn).is_some() {
                    rejected.push(path);
                    continue;
                }
                checkpoint = Some((path, ck));
                break;
            }
            Err(_) => rejected.push(path),
        }
    }

    let (source, network, vocab, mut store, mut live, epoch, after_lsn) = match checkpoint {
        Some((path, ck)) => (
            RecoverySource::Checkpoint(path),
            Arc::new(ck.network),
            ck.vocab,
            ck.store,
            ck.live,
            ck.epoch,
            ck.lsn,
        ),
        None => {
            let ds = base.ok_or_else(|| {
                DurableError::Inconsistent(
                    "no usable checkpoint and no base dataset to recover from".into(),
                )
            })?;
            if let Some(first) = tail_gap(0) {
                // the base dataset is the last resort — a gap here cannot
                // fall back any further, and applying the tail anyway
                // would corrupt ids silently
                return Err(DurableError::Inconsistent(format!(
                    "wal tail starts at lsn {first} but recovery has no checkpoint \
                     covering lsns 1..{first}: segments were pruned against a \
                     checkpoint that is no longer usable"
                )));
            }
            let store = ds.store.clone();
            let live = LiveSet::all_live(store.len());
            (
                RecoverySource::BaseDataset,
                Arc::new(ds.network.clone()),
                ds.vocab.clone(),
                store,
                live,
                0,
                0,
            )
        }
    };

    if let Some(j) = journal {
        for path in &rejected {
            j.warn(
                "recovery",
                "checkpoint_rejected",
                &[("checkpoint", path.display().to_string())],
            );
        }
        if let Some(c) = &replayed.corruption {
            j.warn(
                "recovery",
                "wal_tail_truncated",
                &[
                    ("segment", c.segment.display().to_string()),
                    ("offset", c.offset.to_string()),
                ],
            );
        }
        j.info(
            "recovery",
            "plan_chosen",
            &[
                (
                    "source",
                    match &source {
                        RecoverySource::Checkpoint(p) => format!("checkpoint:{}", p.display()),
                        RecoverySource::BaseDataset => "base_dataset".to_string(),
                    },
                ),
                ("checkpoint_lsn", after_lsn.to_string()),
            ],
        );
    }

    let mut mutations = 0u64;
    let mut batches = 0u64;
    for (lsn, batch) in replayed.batches {
        if lsn <= after_lsn {
            continue; // already contained in the recovered base state
        }
        batches += 1;
        for m in batch {
            mutations += 1;
            match m {
                Mutation::Insert(t) => {
                    // ids must stay dense/stable: an insert lands at the
                    // next id, exactly as the original ingest assigned it
                    for v in t.nodes() {
                        if !network.contains_node(v) {
                            return Err(DurableError::Inconsistent(format!(
                                "wal lsn {lsn}: insert references unknown vertex {v}"
                            )));
                        }
                    }
                    store.push(t);
                    live.grow_to(store.len());
                }
                Mutation::Retire(id) => {
                    if id.index() >= store.len() {
                        return Err(DurableError::Inconsistent(format!(
                            "wal lsn {lsn}: retire of id {id} the store never issued"
                        )));
                    }
                    live.retire(id);
                }
            }
        }
    }

    let vocab_len = vocab.len();
    let manager = match registry {
        Some(r) => EpochManager::from_parts_with_metrics(
            Arc::clone(&network),
            store,
            live,
            vocab_len,
            epoch,
            r,
        ),
        None => EpochManager::from_parts(Arc::clone(&network), store, live, vocab_len, epoch),
    };

    let micros = started.elapsed().as_micros() as u64;
    if let Some(r) = registry {
        r.counter("uots_recovery_total", "Crash recoveries performed")
            .inc();
        r.counter(
            "uots_recovery_replayed_batches_total",
            "WAL batches replayed during recovery",
        )
        .add(batches);
        r.counter(
            "uots_recovery_replayed_mutations_total",
            "Mutations replayed during recovery",
        )
        .add(mutations);
        if replayed.corruption.is_some() {
            r.counter(
                "uots_recovery_truncations_total",
                "Recoveries that found a torn/corrupt WAL tail",
            )
            .inc();
        }
        r.counter(
            "uots_recovery_rejected_checkpoints_total",
            "Checkpoint files skipped as corrupt during recovery",
        )
        .add(rejected.len() as u64);
        r.histogram(
            "uots_recovery_micros",
            "Crash recovery wall time (checkpoint load + WAL replay + index build), microseconds",
        )
        .record(micros);
    }

    if let Some(j) = journal {
        j.info(
            "recovery",
            "recovery_completed",
            &[
                ("replayed_batches", batches.to_string()),
                ("replayed_mutations", mutations.to_string()),
                ("next_lsn", replayed.next_lsn.max(after_lsn + 1).to_string()),
                ("micros", micros.to_string()),
            ],
        );
    }

    Ok(Recovered {
        manager,
        vocab,
        report: RecoveryReport {
            source,
            checkpoint_lsn: after_lsn,
            rejected_checkpoints: rejected,
            replayed_batches: batches,
            replayed_mutations: mutations,
            // the durable state extends to whichever reaches further: the
            // log's last replayable record or the checkpoint (whose
            // segments may have been pruned or lost while it survived)
            next_lsn: replayed.next_lsn.max(after_lsn + 1),
            wal_corruption: replayed.corruption,
            micros,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uots_core::storage::fault::{Fault, FaultFs, OpKind, ScriptedFault};
    use uots_datagen::DatasetConfig;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("uots_durable_tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ingest_over(
        ds: &Dataset,
        dir: &Path,
        backend: Arc<dyn StorageBackend>,
        checkpoint_every: Option<u64>,
    ) -> DurableIngest {
        DurableIngest::create_with_backend(
            Arc::new(ds.network.clone()),
            ds.store.clone(),
            ds.vocab.clone(),
            dir,
            WalConfig::default(),
            checkpoint_every,
            None,
            backend,
            RetryPolicy::without_backoff(),
        )
        .unwrap()
    }

    fn donor(ds: &Dataset, i: u32) -> Trajectory {
        ds.store.get(TrajectoryId(i)).clone()
    }

    #[test]
    fn transient_faults_are_retried_and_stay_invisible() {
        let ds = Dataset::build(&DatasetConfig::small(16, 5)).unwrap();
        let dir = tmpdir("transient");
        // writes #0/#1 are the segment header; #2 = first record write
        let fs = FaultFs::scripted(
            3,
            vec![
                ScriptedFault {
                    op: OpKind::Write,
                    nth: 2,
                    fault: Fault::Transient,
                },
                ScriptedFault {
                    op: OpKind::Sync,
                    nth: 3,
                    fault: Fault::Transient,
                },
            ],
        );
        let mut ingest = ingest_over(&ds, &dir, fs, None);
        for i in 0..3 {
            ingest
                .apply(vec![Mutation::Insert(donor(&ds, i))])
                .expect("transient faults must be absorbed by the retry policy");
        }
        assert!(!ingest.is_degraded());
        assert!(matches!(ingest.status().state, IngestState::Healthy));
        // the log is complete and clean
        let r = wal::replay(&dir, 0).unwrap();
        assert!(r.corruption.is_none());
        assert_eq!(r.batches.len(), 3);
    }

    #[test]
    fn exhausted_retries_degrade_to_read_only() {
        let ds = Dataset::build(&DatasetConfig::small(16, 5)).unwrap();
        let dir = tmpdir("degrade");
        // permanent failure on the first record write AND on its one
        // fresh-segment retry: budget exhausted (permanent_attempts = 2)
        let fs = FaultFs::scripted(
            9,
            vec![
                ScriptedFault {
                    op: OpKind::Write,
                    nth: 2,
                    fault: Fault::Permanent,
                },
                ScriptedFault {
                    op: OpKind::Write,
                    nth: 5,
                    fault: Fault::Permanent,
                },
            ],
        );
        let mut ingest = ingest_over(&ds, &dir, fs, None);
        let err = ingest
            .apply(vec![Mutation::Insert(donor(&ds, 0))])
            .unwrap_err();
        assert!(matches!(err, DurableError::Wal(_)), "{err}");
        assert!(ingest.is_degraded());
        match ingest.status().state {
            IngestState::Degraded { reason } => {
                assert!(reason.contains("2 attempt"), "{reason}")
            }
            s => panic!("expected degraded, got {s:?}"),
        }
        // mutations now fail fast with the structured read-only error
        let err = ingest.ingest(donor(&ds, 1)).unwrap_err();
        assert!(matches!(err, DurableError::ReadOnly { .. }), "{err}");
        let err = ingest.retire(TrajectoryId(0)).unwrap_err();
        assert!(matches!(err, DurableError::ReadOnly { .. }), "{err}");
        // queries keep serving: snapshots and publishes still work
        let snap = ingest.publish().unwrap();
        assert_eq!(snap.store().len(), ds.store.len());
        // nothing unacked leaked into the log
        let r = wal::replay(&dir, 0).unwrap();
        assert_eq!(r.batches.len(), 0, "no batch was ever acked");
    }

    #[test]
    fn checkpoint_failure_is_counted_but_does_not_degrade() {
        let ds = Dataset::build(&DatasetConfig::small(16, 5)).unwrap();
        let dir = tmpdir("ckpt_fail");
        // the WAL never fsyncs directories, so SyncDir #0 is the first
        // checkpoint's rename-durability fsync
        let fs = FaultFs::scripted(
            5,
            vec![ScriptedFault {
                op: OpKind::SyncDir,
                nth: 0,
                fault: Fault::Permanent,
            }],
        );
        let mut ingest = ingest_over(&ds, &dir, fs, Some(1));
        ingest.apply(vec![Mutation::Insert(donor(&ds, 0))]).unwrap();
        // cadence due: the publish succeeds even though its checkpoint fails
        ingest.publish().unwrap();
        assert!(
            !ingest.is_degraded(),
            "checkpoint failures must not degrade"
        );
        let status = ingest.status();
        assert_eq!(status.checkpoint_failures, 1);
        assert!(status.last_checkpoint_error.is_some());
        assert_eq!(status.last_checkpoint_lsn, 0, "nothing durable yet");
        // the next cadence point retries and succeeds
        ingest.apply(vec![Mutation::Insert(donor(&ds, 1))]).unwrap();
        ingest.publish().unwrap();
        let status = ingest.status();
        assert_eq!(status.checkpoint_failures, 1, "no new failure");
        assert_eq!(status.last_checkpoint_lsn, 2);
        assert!(!list_checkpoints(&dir).is_empty());
    }

    #[test]
    fn prune_failure_after_a_durable_checkpoint_is_not_a_checkpoint_failure() {
        let ds = Dataset::build(&DatasetConfig::small(16, 5)).unwrap();
        let dir = tmpdir("prune_fail");
        // nothing else removes files in this script: Remove #0 is the
        // covered-segment prune right after the first checkpoint lands
        let fs = FaultFs::scripted(
            7,
            vec![ScriptedFault {
                op: OpKind::Remove,
                nth: 0,
                fault: Fault::Permanent,
            }],
        );
        let mut ingest = DurableIngest::create_with_backend(
            Arc::new(ds.network.clone()),
            ds.store.clone(),
            ds.vocab.clone(),
            &dir,
            WalConfig {
                segment_bytes: 1, // rotate every batch: something to prune
                ..WalConfig::default()
            },
            None,
            None,
            fs,
            RetryPolicy::without_backoff(),
        )
        .unwrap();
        ingest.apply(vec![Mutation::Insert(donor(&ds, 0))]).unwrap();
        ingest.apply(vec![Mutation::Insert(donor(&ds, 1))]).unwrap();
        // the checkpoint file is durable; only the cleanup prune fails
        ingest
            .checkpoint_now()
            .expect("a durable checkpoint must not be failed by its prune");
        let status = ingest.status();
        assert_eq!(
            status.checkpoint_failures, 0,
            "{:?}",
            status.last_checkpoint_error
        );
        assert!(status.last_checkpoint_error.is_none());
        assert_eq!(status.last_checkpoint_lsn, 2);
        assert_eq!(status.prune_failures, 1);
        assert!(status.last_prune_error.is_some());
        // the next checkpoint retries the removal and succeeds
        ingest.apply(vec![Mutation::Insert(donor(&ds, 2))]).unwrap();
        ingest.checkpoint_now().unwrap();
        let status = ingest.status();
        assert_eq!(status.prune_failures, 1, "no new failure");
        assert_eq!(status.last_checkpoint_lsn, 3);
        // and recovery of the directory is unaffected throughout
        drop(ingest);
        let recovered = recover(&dir, Some(&ds), None).expect("recovery");
        assert_eq!(recovered.report.checkpoint_lsn, 3);
        assert_eq!(
            recovered.manager.snapshot().store().len(),
            ds.store.len() + 3
        );
    }

    #[test]
    fn explicit_checkpoint_propagates_its_failure() {
        let ds = Dataset::build(&DatasetConfig::small(16, 5)).unwrap();
        let dir = tmpdir("ckpt_now");
        let fs = FaultFs::scripted(
            6,
            vec![ScriptedFault {
                op: OpKind::SyncDir,
                nth: 0,
                fault: Fault::Permanent,
            }],
        );
        let mut ingest = ingest_over(&ds, &dir, fs, None);
        ingest.apply(vec![Mutation::Insert(donor(&ds, 0))]).unwrap();
        let err = ingest.checkpoint_now().unwrap_err();
        assert!(matches!(err, DurableError::Persist(_)), "{err}");
        assert!(!ingest.is_degraded());
        assert_eq!(ingest.status().checkpoint_failures, 1);
        // retrying explicitly now succeeds
        ingest.checkpoint_now().unwrap();
        assert_eq!(ingest.status().last_checkpoint_lsn, 1);
    }
}
