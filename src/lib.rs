//! # uots — User Oriented Trajectory Search for trip recommendation
//!
//! A from-scratch Rust reproduction of **"User oriented trajectory search
//! for trip recommendation"** (Shang, Ding, Yuan, Xie, Zheng, Kalnis —
//! EDBT 2012), including every substrate the paper depends on: road
//! networks and shortest paths, network-constrained trajectories with
//! textual attributes, the query-time indexes, synthetic data standing in
//! for the paper's proprietary taxi datasets, and a full benchmark harness.
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`network`] | `uots-network` | road networks, Dijkstra, incremental expansion, A*, generators |
//! | [`text`] | `uots-text` | vocabularies, keyword sets, set similarities, Zipf |
//! | [`index`] | `uots-index` | spatial grid, inverted indexes, timestamp index |
//! | [`trajectory`] | `uots-trajectory` | trajectory model, trip generator, map matching |
//! | [`datagen`] | `uots-datagen` | dataset presets and query workloads |
//! | [`core`] | `uots-core` | the UOTS query engine, algorithms, parallel batches |
//! | [`join`] | `uots-join` | trajectory similarity threshold self-join (extension) |
//! | [`obs`] | `uots-obs` | phase tracing, latency histograms, metrics exposition |
//!
//! The most common types are re-exported at the top level.
//!
//! ## Quick start
//!
//! ```
//! use uots::prelude::*;
//!
//! // 1. Build a dataset (synthetic city + trips + tags + indexes).
//! let ds = Dataset::build(&DatasetConfig::small(100, 7)).unwrap();
//!
//! // 2. Open a database view over it.
//! let db = uots::db(&ds);
//!
//! // 3. Ask for a trip: places to visit + preference keywords.
//! let spec = &workload::generate(&ds, &workload::WorkloadConfig::default())[0];
//! let query = UotsQuery::new(spec.locations.clone(), spec.keywords.clone()).unwrap();
//!
//! // 4. Run the paper's expansion search.
//! let result = Expansion::default().run(&db, &query).unwrap();
//! println!("best trip: {:?}", result.best());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod durable;
pub mod scrub;
pub mod serve;

pub use uots_core as core;
pub use uots_core::storage;
pub use uots_datagen as datagen;
pub use uots_index as index;
pub use uots_join as join;
pub use uots_network as network;
pub use uots_obs as obs;
pub use uots_text as text;
pub use uots_trajectory as trajectory;

pub use uots_core::wal::{FsyncPolicy, WalConfig, WalError, WalWriter};
pub use uots_core::{
    algorithms, epoch, expansion_search, no_cache_env, order, parallel, similarity,
    threshold_search, BatchOptions, BatchPolicy, CacheStats, CancellationToken, Completeness,
    CoreError, Database, DistanceCache, EpochManager, EpochSnapshot, ExecutionBudget, LayoutTables,
    Match, Mutation, QueryOptions, QueryResult, RunControl, Scheduler, SearchContext,
    SearchMetrics, TopK, UotsQuery, Weights, DEFAULT_CACHE_CAPACITY,
};
pub use uots_datagen::{workload, Dataset, DatasetConfig};
pub use uots_network::{NetworkBuilder, NodeId, Point, RoadNetwork};
pub use uots_obs::{MetricsRegistry, Phase, PhaseNanos, Recorder};
pub use uots_text::{KeywordId, KeywordSet, TextSimilarity, Vocabulary};
pub use uots_trajectory::{LiveSet, Sample, Trajectory, TrajectoryId, TrajectoryStore};

/// Opens a [`Database`] over a built [`Dataset`], wiring up the keyword
/// index (the timestamp index is built per dataset on demand; attach it with
/// [`Database::with_timestamp_index`] for temporal queries).
pub fn db(ds: &Dataset) -> Database<'_> {
    Database::new(&ds.network, &ds.store, &ds.vertex_index).with_keyword_index(&ds.keyword_index)
}

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::algorithms::{Algorithm, BruteForce, Expansion, IknnBaseline, TextFirst};
    pub use crate::{
        workload, CancellationToken, Completeness, Database, Dataset, DatasetConfig,
        ExecutionBudget, KeywordSet, Match, NodeId, Point, QueryOptions, QueryResult, RunControl,
        Scheduler, SearchMetrics, TrajectoryId, UotsQuery, Weights,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_round_trip() {
        let ds = Dataset::build(&DatasetConfig::small(20, 99)).unwrap();
        let db = crate::db(&ds);
        let spec = &workload::generate(&ds, &workload::WorkloadConfig::default())[0];
        let q = UotsQuery::new(spec.locations.clone(), spec.keywords.clone()).unwrap();
        let r = Expansion::default().run(&db, &q).unwrap();
        assert!(r.best().is_some());
    }
}
