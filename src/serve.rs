//! The UOTS query service: an HTTP front-end over epoch-pinned snapshots.
//!
//! [`QueryService`] layers four POST endpoints on the dependency-free
//! HTTP plumbing of [`uots_obs::serve`] (same wire format, same
//! `Connection: close` discipline) and reuses the whole observability
//! surface (`/metrics`, `/status`, `/journal`, `/traces`) verbatim via
//! [`uots_obs::dispatch_obs`]:
//!
//! | Endpoint | Body | Answer |
//! |---|---|---|
//! | `POST /search`  | `{queries: [...], tenant?, algorithm?}` | per-query results, epoch-pinned |
//! | `POST /topk`    | one query object | single result |
//! | `POST /join`    | `{theta?, lambda?, ...}` | similarity self-join pairs |
//! | `POST /ingest`  | `{insert: [...], retire: [...], publish?}` | new epoch |
//! | `POST /admin/shutdown` | — | drains workers, frees the port |
//!
//! ## Query shape
//!
//! A query is a JSON object `{"locations": [node ids], "keywords":
//! [keyword ids], "times": [seconds], "lambda": 0.5, "k": 1, "decay_km":
//! 1.0, "decay_s": 1800.0}` — everything but `locations` optional. Bodies
//! are parsed into the vendored serde [`Content`] tree and validated
//! through [`UotsQuery::with_options`], so the service enforces exactly
//! the engine's invariants (dedup, `MAX_LOCATIONS`, λ range, temporal
//! consistency) and malformed requests answer `400` with the engine's
//! own error text.
//!
//! ## Epoch pinning
//!
//! Every search batch runs through [`parallel::run_batch_epoch`]: one
//! snapshot is resolved up front and the whole batch answers against it,
//! so results are attributable to a single `epoch` (returned in the
//! response) even while `/ingest` keeps publishing. Concurrent publishes
//! never invalidate an in-flight batch.
//!
//! ## Overload: degrade, then shed — never hang
//!
//! Two nested admission rings, both sized in *queries* (not requests):
//!
//! 1. **Per-tenant soft ring** (`tenant_inflight`): a tenant exceeding
//!    its inflight allowance keeps getting answers, but its queries run
//!    under the degraded [`ExecutionBudget`] — the engine returns the
//!    current top-k tagged [`Completeness::BestEffort`] with a certified
//!    `bound_gap`. HTTP 200, `"degraded": true`.
//! 2. **Global hard ring** (`max_inflight`): beyond it the request is
//!    shed immediately with `429 Too Many Requests` and a JSON body
//!    naming both numbers. The server never queues unboundedly and never
//!    answers 5xx under load.
//!
//! The same rings govern `/join` (probe-level budget, subset-certified)
//! and oversized bodies are cut off at [`MAX_BODY_BYTES`] with `413`.
//!
//! ## Planning
//!
//! Each batch is executed by [`Planner`] — the adaptive per-query
//! algorithm dispatch of [`uots_core::planner`] — unless the operator
//! forced an algorithm (`--force-algorithm`, [`ServiceConfig::force`])
//! or the request asked for one (`"algorithm": "expansion"`; the
//! operator's force wins). The response's `planned` array reports the
//! decision and reason per query, recomputed against the pinned
//! snapshot, so clients can see *why* an algorithm ran.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use serde::{Content, Serialize};
use uots_core::parallel::{self, BatchOptions, BatchPolicy};
use uots_core::planner::{AlgorithmKind, Planner};
use uots_core::{
    CancellationToken, Completeness, CoreError, EpochManager, ExecutionBudget, QueryOptions,
    RunControl, SearchContext, UotsQuery, Weights,
};
use uots_join::{ts_join_with, JoinConfig};
use uots_network::NodeId;
use uots_obs::{
    dispatch_obs, read_request, respond, Counter, Histogram, HttpRequest, MetricsRegistry, ObsState,
};
use uots_text::{KeywordId, KeywordSet};
use uots_trajectory::{Trajectory, TrajectoryId};

use crate::durable::DurableIngest;

/// How the service admits, degrades and sheds work.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// HTTP worker threads (each owns a cloned listener handle).
    pub http_threads: usize,
    /// Rayon threads per search batch.
    pub batch_threads: usize,
    /// Admission bound: requests carrying more queries than this are
    /// rejected by the batch executor with `429`.
    pub max_batch: usize,
    /// Global hard ring: total queries in flight before shedding.
    pub max_inflight: usize,
    /// Per-tenant soft ring: queries in flight per tenant before the
    /// degraded budget kicks in.
    pub tenant_inflight: usize,
    /// The budget applied to degraded queries (tightened axis-wise
    /// against whatever the query asked for).
    pub degraded_budget: ExecutionBudget,
    /// Operator-forced algorithm (`--force-algorithm`); overrides both
    /// the planner and any per-request `"algorithm"` field.
    pub force: Option<AlgorithmKind>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            http_threads: 4,
            batch_threads: 0,
            max_batch: 1024,
            max_inflight: 4096,
            tenant_inflight: 64,
            degraded_budget: ExecutionBudget::default()
                .with_deadline_ms(50)
                .with_max_visited(512)
                .with_max_settled(20_000),
            force: None,
        }
    }
}

/// Service metric handles (all registered on the shared registry, so
/// `/metrics` exports them alongside the engine's).
struct ServiceMetrics {
    requests: Counter,
    errors: Counter,
    shed: Counter,
    degraded: Counter,
    latency_us: Histogram,
}

impl ServiceMetrics {
    fn new(registry: &MetricsRegistry) -> ServiceMetrics {
        ServiceMetrics {
            requests: registry.counter("uots_serve_requests_total", "HTTP requests accepted"),
            errors: registry.counter("uots_serve_errors_total", "Requests answered 4xx"),
            shed: registry.counter(
                "uots_serve_shed_total",
                "Requests shed by the global inflight ring (429)",
            ),
            degraded: registry.counter(
                "uots_serve_degraded_total",
                "Requests degraded to a best-effort budget by the tenant ring",
            ),
            latency_us: registry.histogram(
                "uots_serve_request_microseconds",
                "End-to-end request service time",
            ),
        }
    }
}

/// The state the service answers from: a live [`EpochManager`]
/// (volatile ingest) or the WAL-backed [`DurableIngest`] facade. Both
/// hand out epoch-pinned snapshots; only `/ingest` differs.
enum Backend {
    Volatile(Arc<EpochManager>),
    Durable(Box<Mutex<DurableIngest>>),
}

impl Backend {
    /// The current published snapshot. The durable lock is held only for
    /// the `Arc` clone, never across query execution, so searches and
    /// ingest proceed concurrently.
    fn snapshot(&self) -> Arc<uots_core::EpochSnapshot> {
        match self {
            Backend::Volatile(m) => m.snapshot(),
            Backend::Durable(d) => d.lock().expect("durable facade poisoned").snapshot(),
        }
    }
}

/// Shared state behind every worker thread.
struct Shared {
    backend: Backend,
    cfg: ServiceConfig,
    obs: ObsState,
    metrics: ServiceMetrics,
    ctx: SearchContext,
    inflight: AtomicUsize,
    tenants: Mutex<HashMap<String, Arc<AtomicUsize>>>,
    stop: Arc<AtomicBool>,
}

impl Shared {
    /// Reserves `n` query slots. `Err(())` means the global hard ring is
    /// full and the request must be shed; `Ok((guard, degraded))` carries
    /// whether the tenant crossed its soft ring.
    fn admit(self: &Arc<Self>, tenant: &str, n: usize) -> Result<(AdmissionGuard, bool), ()> {
        let prev = self.inflight.fetch_add(n, Ordering::SeqCst);
        if prev + n > self.cfg.max_inflight {
            self.inflight.fetch_sub(n, Ordering::SeqCst);
            return Err(());
        }
        let counter = {
            let mut map = self.tenants.lock().expect("tenant map poisoned");
            Arc::clone(map.entry(tenant.to_string()).or_default())
        };
        let tprev = counter.fetch_add(n, Ordering::SeqCst);
        let degraded = tprev + n > self.cfg.tenant_inflight;
        Ok((
            AdmissionGuard {
                shared: Arc::clone(self),
                tenant: counter,
                n,
            },
            degraded,
        ))
    }
}

struct AdmissionGuard {
    shared: Arc<Shared>,
    tenant: Arc<AtomicUsize>,
    n: usize,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(self.n, Ordering::SeqCst);
        self.tenant.fetch_sub(self.n, Ordering::SeqCst);
    }
}

/// A running query service. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops every worker and releases the
/// port.
pub struct QueryService {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handles: Vec<thread::JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl QueryService {
    /// Starts the service over a live [`EpochManager`] (volatile ingest:
    /// mutations apply to the manager without a WAL).
    ///
    /// # Errors
    ///
    /// Binding the listener.
    pub fn start(
        addr: &str,
        manager: Arc<EpochManager>,
        registry: MetricsRegistry,
        obs: ObsState,
        cfg: ServiceConfig,
    ) -> io::Result<QueryService> {
        Self::start_inner(addr, Backend::Volatile(manager), registry, obs, cfg)
    }

    /// Starts the service over a [`DurableIngest`]: `/ingest` goes through
    /// the WAL-backed path (acked writes survive crashes), queries read
    /// the facade's published snapshots.
    ///
    /// # Errors
    ///
    /// Binding the listener.
    pub fn start_durable(
        addr: &str,
        durable: DurableIngest,
        registry: MetricsRegistry,
        obs: ObsState,
        cfg: ServiceConfig,
    ) -> io::Result<QueryService> {
        Self::start_inner(
            addr,
            Backend::Durable(Box::new(Mutex::new(durable))),
            registry,
            obs,
            cfg,
        )
    }

    fn start_inner(
        addr: &str,
        backend: Backend,
        registry: MetricsRegistry,
        obs: ObsState,
        cfg: ServiceConfig,
    ) -> io::Result<QueryService> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = ServiceMetrics::new(&registry);
        let shared = Arc::new(Shared {
            backend,
            cfg: cfg.clone(),
            obs,
            metrics,
            ctx: SearchContext::new(),
            inflight: AtomicUsize::new(0),
            tenants: Mutex::new(HashMap::new()),
            stop: Arc::clone(&stop),
        });
        let workers = cfg.http_threads.max(1);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            handles.push(
                thread::Builder::new()
                    .name(format!("uots-serve-{i}"))
                    .spawn(move || worker_loop(listener, shared, stop))
                    .expect("spawn http worker"),
            );
        }
        Ok(QueryService {
            local_addr,
            stop,
            handles,
            shared,
        })
    }

    /// The bound address (useful with `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The epoch of the currently published snapshot.
    pub fn current_epoch(&self) -> u64 {
        self.shared.backend.snapshot().epoch()
    }

    /// `true` once an operator requested shutdown (`POST
    /// /admin/shutdown`) or [`shutdown`](Self::shutdown) ran.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stops every worker and joins them. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(listener: TcpListener, shared: Arc<Shared>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let start = Instant::now();
                shared.metrics.requests.inc();
                if let Err(e) = handle_connection(&mut stream, &shared) {
                    // Client went away mid-response; nothing to answer.
                    let _ = e;
                }
                shared
                    .metrics
                    .latency_us
                    .record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn handle_connection(stream: &mut TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    let req = match read_request(stream) {
        Ok(req) => req,
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            shared.metrics.errors.inc();
            // `read_request` refuses bodies past MAX_BODY_BYTES up front.
            return if e.to_string().contains("too large") {
                respond(
                    stream,
                    413,
                    "application/json",
                    "{\"error\":\"body too large\"}\n",
                )
            } else {
                respond(stream, 400, "text/plain", "bad request\n")
            };
        }
        Err(e) => return Err(e),
    };
    match req.method.as_str() {
        "GET" => {
            if dispatch_obs(stream, &req, &shared.obs)? {
                return Ok(());
            }
            match req.path.as_str() {
                "/" => respond(
                    stream,
                    200,
                    "text/plain",
                    "uots-serve: POST /search /topk /join /ingest /admin/shutdown; \
                     GET /metrics /status /journal /traces\n",
                ),
                _ => {
                    shared.metrics.errors.inc();
                    respond(stream, 404, "text/plain", "not found\n")
                }
            }
        }
        "POST" => match req.path.as_str() {
            "/search" => handle_search(stream, &req, shared, false),
            "/topk" => handle_search(stream, &req, shared, true),
            "/join" => handle_join(stream, &req, shared),
            "/ingest" => handle_ingest(stream, &req, shared),
            "/admin/shutdown" => {
                shared.stop.store(true, Ordering::SeqCst);
                respond(stream, 200, "application/json", "{\"stopping\":true}\n")
            }
            _ => {
                shared.metrics.errors.inc();
                respond(stream, 404, "text/plain", "not found\n")
            }
        },
        _ => {
            shared.metrics.errors.inc();
            respond(stream, 405, "text/plain", "method not allowed\n")
        }
    }
}

// ---------- JSON helpers over the vendored `Content` tree ----------

fn body_content(req: &HttpRequest) -> Result<Content, String> {
    if req.body.is_empty() {
        return Ok(Content::Map(Vec::new()));
    }
    serde_json::from_slice::<Content>(&req.body).map_err(|e| e.to_string())
}

fn content_f64(c: &Content) -> Option<f64> {
    match *c {
        Content::I64(v) => Some(v as f64),
        Content::U64(v) => Some(v as f64),
        Content::F64(v) => Some(v),
        _ => None,
    }
}

fn content_usize(c: &Content) -> Option<usize> {
    match *c {
        Content::I64(v) if v >= 0 => Some(v as usize),
        Content::U64(v) => usize::try_from(v).ok(),
        _ => None,
    }
}

fn field_f64(map: &Content, key: &str, default: f64) -> Result<f64, String> {
    match map.get(key) {
        None | Some(Content::Null) => Ok(default),
        Some(c) => content_f64(c).ok_or_else(|| format!("`{key}` must be a number")),
    }
}

fn field_usize(map: &Content, key: &str, default: usize) -> Result<usize, String> {
    match map.get(key) {
        None | Some(Content::Null) => Ok(default),
        Some(c) => {
            content_usize(c).ok_or_else(|| format!("`{key}` must be a non-negative integer"))
        }
    }
}

fn field_str<'a>(map: &'a Content, key: &str) -> Option<&'a str> {
    match map.get(key) {
        Some(Content::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn field_ids(map: &Content, key: &str) -> Result<Vec<u32>, String> {
    match map.get(key) {
        None | Some(Content::Null) => Ok(Vec::new()),
        Some(Content::Seq(items)) => items
            .iter()
            .map(|c| {
                content_usize(c)
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| format!("`{key}` entries must be u32 ids"))
            })
            .collect(),
        Some(_) => Err(format!("`{key}` must be an array of ids")),
    }
}

/// Parses one query object (see the module docs for the shape) and
/// validates it through the engine's own constructor.
fn parse_query(c: &Content) -> Result<UotsQuery, String> {
    let locations: Vec<NodeId> = field_ids(c, "locations")?.into_iter().map(NodeId).collect();
    let keywords = KeywordSet::from_ids(field_ids(c, "keywords")?.into_iter().map(KeywordId));
    let times = match c.get("times") {
        None | Some(Content::Null) => Vec::new(),
        Some(Content::Seq(items)) => items
            .iter()
            .map(|t| content_f64(t).ok_or_else(|| "`times` entries must be numbers".to_string()))
            .collect::<Result<Vec<f64>, String>>()?,
        Some(_) => return Err("`times` must be an array of seconds".to_string()),
    };
    let lambda = field_f64(c, "lambda", 0.5)?;
    let weights = Weights::lambda(lambda).map_err(|e| e.to_string())?;
    let options = QueryOptions {
        weights,
        k: field_usize(c, "k", 1)?,
        decay_km: field_f64(c, "decay_km", 1.0)?,
        decay_s: field_f64(c, "decay_s", 1_800.0)?,
        ..QueryOptions::default()
    };
    UotsQuery::with_options(locations, keywords, times, options).map_err(|e| e.to_string())
}

/// Axis-wise minimum of a query's own budget and the degraded cap.
fn tighten(own: ExecutionBudget, cap: ExecutionBudget) -> ExecutionBudget {
    fn min_opt<T: Ord>(a: Option<T>, b: Option<T>) -> Option<T> {
        match (a, b) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (x, None) | (None, x) => x,
        }
    }
    ExecutionBudget {
        max_wall: min_opt(own.max_wall, cap.max_wall),
        max_visited: min_opt(own.max_visited, cap.max_visited),
        max_settled: min_opt(own.max_settled, cap.max_settled),
    }
}

fn json_error(stream: &mut TcpStream, code: u16, msg: &str) -> io::Result<()> {
    let body = serde_json::to_string(&Content::Map(vec![(
        "error".to_string(),
        Content::Str(msg.to_string()),
    )]))
    .expect("error body renders");
    respond(stream, code, "application/json", &body)
}

// ---------- /search and /topk ----------

fn handle_search(
    stream: &mut TcpStream,
    req: &HttpRequest,
    shared: &Arc<Shared>,
    single: bool,
) -> io::Result<()> {
    let body = match body_content(req) {
        Ok(b) => b,
        Err(e) => {
            shared.metrics.errors.inc();
            return json_error(stream, 400, &e);
        }
    };
    let query_objects: Vec<&Content> = if single {
        vec![&body]
    } else {
        match body.get("queries") {
            Some(Content::Seq(items)) if !items.is_empty() => items.iter().collect(),
            _ => {
                shared.metrics.errors.inc();
                return json_error(stream, 400, "`queries` must be a non-empty array");
            }
        }
    };
    let mut queries = Vec::with_capacity(query_objects.len());
    for (i, qc) in query_objects.iter().enumerate() {
        match parse_query(qc) {
            Ok(q) => queries.push(q),
            Err(e) => {
                shared.metrics.errors.inc();
                return json_error(stream, 400, &format!("query {i}: {e}"));
            }
        }
    }

    let tenant = field_str(&body, "tenant").unwrap_or("default").to_string();
    let (guard, degraded) = match shared.admit(&tenant, queries.len()) {
        Ok(ok) => ok,
        Err(()) => {
            shared.metrics.shed.inc();
            return json_error(
                stream,
                429,
                &format!(
                    "overloaded: {} queries in flight (capacity {})",
                    shared.inflight.load(Ordering::SeqCst),
                    shared.cfg.max_inflight
                ),
            );
        }
    };
    if degraded {
        shared.metrics.degraded.inc();
        let cap = shared.cfg.degraded_budget;
        for q in &mut queries {
            let mut opts = q.options().clone();
            opts.budget = tighten(opts.budget, cap);
            *q = q
                .reoptioned(opts)
                .expect("re-optioning an already-validated query");
        }
    }

    // Request-level algorithm override; the operator's force wins.
    let planner = match (shared.cfg.force, field_str(&body, "algorithm")) {
        (Some(kind), _) => Planner::forced(kind),
        (None, Some(name)) => match AlgorithmKind::parse(name) {
            Some(kind) => Planner::forced(kind),
            None => {
                drop(guard);
                shared.metrics.errors.inc();
                return json_error(stream, 400, &format!("unknown algorithm `{name}`"));
            }
        },
        (None, None) => Planner::new(),
    };

    let opts = BatchOptions {
        policy: BatchPolicy::Partial,
        deadline: None,
        max_batch: Some(shared.cfg.max_batch),
        threads: shared.cfg.batch_threads,
    };
    let token = CancellationToken::new();
    // Pin one snapshot for the whole batch (the `Arc` keeps it alive even
    // while `/ingest` publishes), exactly like `parallel::run_batch_epoch`.
    let snapshot = shared.backend.snapshot();
    let outcome = {
        let db = snapshot.database();
        parallel::run_batch_ctx(&db, &planner, &queries, &opts, &token, &shared.ctx)
    };
    drop(guard);

    let results = match outcome {
        Ok(batch) => batch,
        Err(CoreError::Overloaded {
            submitted,
            capacity,
        }) => {
            shared.metrics.shed.inc();
            return json_error(
                stream,
                429,
                &format!("batch of {submitted} exceeds admission bound {capacity}"),
            );
        }
        Err(e) => {
            shared.metrics.errors.inc();
            return json_error(stream, 400, &e.to_string());
        }
    };

    // Report the plan per query, recomputed against the pinned snapshot
    // (decide() is deterministic and cheap).
    let db = snapshot.database();
    let planned: Vec<Content> = queries
        .iter()
        .map(|q| {
            let d = planner.decide(&db, q);
            Content::Map(vec![
                (
                    "algorithm".to_string(),
                    Content::Str(d.kind.name().to_string()),
                ),
                ("reason".to_string(), Content::Str(d.reason.to_string())),
            ])
        })
        .collect();

    let rendered: Vec<Content> = results
        .iter()
        .map(|r| match r {
            Ok(qr) => qr.serialize(),
            Err(e) => Content::Map(vec![("error".to_string(), Content::Str(e.to_string()))]),
        })
        .collect();
    let mut top = vec![
        ("epoch".to_string(), Content::U64(snapshot.epoch())),
        ("degraded".to_string(), Content::Bool(degraded)),
        ("planned".to_string(), Content::Seq(planned)),
    ];
    if single {
        top.push((
            "result".to_string(),
            rendered.into_iter().next().unwrap_or(Content::Null),
        ));
    } else {
        top.push(("results".to_string(), Content::Seq(rendered)));
    }
    let body = serde_json::to_string(&Content::Map(top)).expect("response renders");
    respond(stream, 200, "application/json", &body)
}

// ---------- /join ----------

fn handle_join(stream: &mut TcpStream, req: &HttpRequest, shared: &Arc<Shared>) -> io::Result<()> {
    let body = match body_content(req) {
        Ok(b) => b,
        Err(e) => {
            shared.metrics.errors.inc();
            return json_error(stream, 400, &e);
        }
    };
    let defaults = JoinConfig::default();
    let cfg = JoinConfig {
        theta: match field_f64(&body, "theta", defaults.theta) {
            Ok(v) => v,
            Err(e) => {
                shared.metrics.errors.inc();
                return json_error(stream, 400, &e);
            }
        },
        lambda: match field_f64(&body, "lambda", defaults.lambda) {
            Ok(v) => v,
            Err(e) => {
                shared.metrics.errors.inc();
                return json_error(stream, 400, &e);
            }
        },
        decay_km: field_f64(&body, "decay_km", defaults.decay_km).unwrap_or(defaults.decay_km),
        decay_s: field_f64(&body, "decay_s", defaults.decay_s).unwrap_or(defaults.decay_s),
        ..defaults
    };
    let tenant = field_str(&body, "tenant").unwrap_or("default").to_string();
    let snapshot = shared.backend.snapshot();
    // A join is a whole-dataset scan; weigh it as one tenant-ring slot
    // per live trajectory probe, capped to keep the arithmetic sane.
    let weight = snapshot.live().num_live().min(shared.cfg.tenant_inflight);
    let (guard, degraded) = match shared.admit(&tenant, weight.max(1)) {
        Ok(ok) => ok,
        Err(()) => {
            shared.metrics.shed.inc();
            return json_error(stream, 429, "overloaded: join shed by the inflight ring");
        }
    };
    let budget = if degraded {
        shared.metrics.degraded.inc();
        shared.cfg.degraded_budget
    } else {
        ExecutionBudget::UNLIMITED
    };

    let db = snapshot.database();
    let Some(ts_index) = db.timestamp_index else {
        drop(guard);
        shared.metrics.errors.inc();
        return json_error(stream, 400, "snapshot has no timestamp index");
    };
    let outcome = ts_join_with(
        snapshot.network(),
        snapshot.store(),
        db.vertex_index,
        ts_index,
        &cfg,
        shared.cfg.batch_threads,
        &budget,
        &RunControl::unbounded(),
    );
    drop(guard);

    let join = match outcome {
        Ok(j) => j,
        Err(e) => {
            shared.metrics.errors.inc();
            return json_error(stream, 400, &e.to_string());
        }
    };
    let pairs: Vec<Content> = join.pairs.iter().map(|p| p.serialize()).collect();
    let body = serde_json::to_string(&Content::Map(vec![
        ("epoch".to_string(), Content::U64(snapshot.epoch())),
        ("degraded".to_string(), Content::Bool(degraded)),
        ("pairs".to_string(), Content::Seq(pairs)),
        (
            "visited_trajectories".to_string(),
            Content::U64(join.visited_trajectories as u64),
        ),
        ("completeness".to_string(), join.completeness.serialize()),
        (
            "runtime_ms".to_string(),
            Content::F64(join.runtime.as_secs_f64() * 1e3),
        ),
    ]))
    .expect("join response renders");
    respond(stream, 200, "application/json", &body)
}

// ---------- /ingest ----------

fn handle_ingest(
    stream: &mut TcpStream,
    req: &HttpRequest,
    shared: &Arc<Shared>,
) -> io::Result<()> {
    let body = match body_content(req) {
        Ok(b) => b,
        Err(e) => {
            shared.metrics.errors.inc();
            return json_error(stream, 400, &e);
        }
    };
    let inserts: Vec<Trajectory> = match body.get("insert") {
        None | Some(Content::Null) => Vec::new(),
        Some(Content::Seq(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for (i, c) in items.iter().enumerate() {
                match <Trajectory as serde::Deserialize>::deserialize(c) {
                    Ok(t) => out.push(t),
                    Err(e) => {
                        shared.metrics.errors.inc();
                        return json_error(stream, 400, &format!("insert {i}: {e}"));
                    }
                }
            }
            out
        }
        Some(_) => {
            shared.metrics.errors.inc();
            return json_error(stream, 400, "`insert` must be an array of trajectories");
        }
    };
    let retires: Vec<TrajectoryId> = match field_ids(&body, "retire") {
        Ok(ids) => ids.into_iter().map(TrajectoryId).collect(),
        Err(e) => {
            shared.metrics.errors.inc();
            return json_error(stream, 400, &e);
        }
    };
    let publish = !matches!(body.get("publish"), Some(Content::Bool(false)));

    let mut assigned: Vec<u64> = Vec::with_capacity(inserts.len());
    let mut retired = 0u64;
    let epoch = if let Backend::Durable(durable) = &shared.backend {
        let mut durable = durable.lock().expect("durable facade poisoned");
        for t in inserts {
            match durable.ingest(t) {
                Ok(id) => assigned.push(u64::from(id.0)),
                Err(e) => {
                    shared.metrics.errors.inc();
                    return json_error(stream, 400, &e.to_string());
                }
            }
        }
        for id in retires {
            match durable.retire(id) {
                Ok(true) => retired += 1,
                Ok(false) => {}
                Err(e) => {
                    shared.metrics.errors.inc();
                    return json_error(stream, 400, &e.to_string());
                }
            }
        }
        if publish {
            match durable.publish() {
                Ok(snap) => snap.epoch(),
                Err(e) => {
                    shared.metrics.errors.inc();
                    return json_error(stream, 400, &e.to_string());
                }
            }
        } else {
            durable.snapshot().epoch()
        }
    } else {
        let Backend::Volatile(manager) = &shared.backend else {
            unreachable!("backend is volatile here");
        };
        for t in inserts {
            assigned.push(u64::from(manager.ingest(t).0));
        }
        for id in retires {
            if manager.retire(id) {
                retired += 1;
            }
        }
        if publish {
            manager.publish().epoch()
        } else {
            manager.snapshot().epoch()
        }
    };

    let body = serde_json::to_string(&Content::Map(vec![
        ("epoch".to_string(), Content::U64(epoch)),
        (
            "inserted".to_string(),
            Content::Seq(assigned.into_iter().map(Content::U64).collect()),
        ),
        ("retired".to_string(), Content::U64(retired)),
        ("published".to_string(), Content::Bool(publish)),
    ]))
    .expect("ingest response renders");
    respond(stream, 200, "application/json", &body)
}

/// Result completeness digest used by clients and the load generator:
/// `Exact` or the certified `bound_gap`.
pub fn completeness_tag(c: &Completeness) -> &'static str {
    match c {
        Completeness::Exact => "exact",
        Completeness::BestEffort { .. } => "best-effort",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parsing_validates_through_the_engine() {
        let c: Content =
            serde_json::from_str(r#"{"locations":[1,2],"keywords":[0],"lambda":0.3,"k":4}"#)
                .unwrap();
        let q = parse_query(&c).unwrap();
        assert_eq!(q.locations().len(), 2);
        assert_eq!(q.options().k, 4);
        assert!((q.options().weights.spatial - 0.3).abs() < 1e-12);

        // Engine invariants reach the client as parse errors.
        let bad: Content = serde_json::from_str(r#"{"locations":[],"keywords":[0]}"#).unwrap();
        assert!(parse_query(&bad).is_err());
        let bad_lambda: Content =
            serde_json::from_str(r#"{"locations":[1],"keywords":[],"lambda":1.5}"#).unwrap();
        assert!(parse_query(&bad_lambda).is_err());
    }

    #[test]
    fn tighten_takes_the_axiswise_minimum() {
        let own = ExecutionBudget::default().with_max_visited(100);
        let cap = ExecutionBudget::default()
            .with_deadline_ms(50)
            .with_max_visited(512);
        let t = tighten(own, cap);
        assert_eq!(t.max_visited, Some(100));
        assert_eq!(t.max_wall, Some(Duration::from_millis(50)));
        assert_eq!(t.max_settled, None);
    }
}
