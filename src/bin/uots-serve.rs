//! `uots-serve` — the UOTS query service as a standalone server.
//!
//! ```text
//! uots-serve --data data.uotsds [--listen 127.0.0.1:8080]
//!            [--http-threads N] [--batch-threads N]
//!            [--max-batch N] [--max-inflight N] [--tenant-inflight N]
//!            [--degraded-deadline-ms MS] [--degraded-max-visited N]
//!            [--force-algorithm expansion|iknn-baseline|text-first|brute-force]
//!            [--wal-dir DIR] [--fsync batch|off|interval:MS]
//! ```
//!
//! Loads a dataset (the binary format of `uots generate`), publishes it
//! through an epoch manager, and serves `POST /search`, `/topk`, `/join`
//! and `/ingest` plus the full observability surface (`GET /metrics`,
//! `/status`, `/journal`, `/traces`) on one port. With `--wal-dir`,
//! `/ingest` goes through the durable WAL-backed path (created fresh, or
//! resumed when the directory already holds segments).
//!
//! The process runs until `POST /admin/shutdown` (or SIGKILL); shutdown
//! drains the worker threads and exits 0 — CI asserts this.
//!
//! By default the per-query algorithm is chosen by the adaptive planner
//! (`uots_core::planner`); `--force-algorithm` pins every query to one
//! algorithm, the escape hatch when the planner misjudges a workload.

use std::sync::Arc;
use std::time::Duration;

use uots::core::planner::AlgorithmKind;
use uots::datagen::persist;
use uots::durable::DurableIngest;
use uots::obs::{EventJournal, ObsState, TailSampler, DEFAULT_EXEMPLAR_CAPACITY};
use uots::serve::{QueryService, ServiceConfig};
use uots::{EpochManager, ExecutionBudget, FsyncPolicy, MetricsRegistry, WalConfig};

struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got `{}`", args[i]))?;
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    pairs.push((key.to_string(), v.clone()));
                    i += 2;
                }
                _ => {
                    pairs.push((key.to_string(), "true".to_string()));
                    i += 1;
                }
            }
        }
        Ok(Flags { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }
}

fn parse_or<T: std::str::FromStr>(flags: &Flags, key: &str, default: T) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad value `{v}`")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = Flags::parse(&args)?;
    let path = flags.require("data")?;
    let ds = persist::load_file(path).map_err(|e| format!("loading {path}: {e}"))?;

    let mut cfg = ServiceConfig {
        http_threads: parse_or(&flags, "http-threads", 4)?,
        batch_threads: parse_or(&flags, "batch-threads", 0)?,
        max_batch: parse_or(&flags, "max-batch", 1024)?,
        max_inflight: parse_or(&flags, "max-inflight", 4096)?,
        tenant_inflight: parse_or(&flags, "tenant-inflight", 64)?,
        ..ServiceConfig::default()
    };
    cfg.degraded_budget = ExecutionBudget::default()
        .with_deadline_ms(parse_or(&flags, "degraded-deadline-ms", 50u64)?)
        .with_max_visited(parse_or(&flags, "degraded-max-visited", 512usize)?)
        .with_max_settled(parse_or(&flags, "degraded-max-settled", 20_000usize)?);
    if let Some(name) = flags.get("force-algorithm") {
        cfg.force = Some(
            AlgorithmKind::parse(name)
                .ok_or_else(|| format!("--force-algorithm: unknown algorithm `{name}`"))?,
        );
    }

    let registry = MetricsRegistry::new();
    let journal = EventJournal::default();
    let sampler = TailSampler::new(DEFAULT_EXEMPLAR_CAPACITY);
    let name = ds.name.clone();
    let trajectories = ds.store.len();
    let obs = ObsState::new()
        .with_registry(registry.clone())
        .with_journal(journal.clone())
        .with_sampler(sampler.clone())
        .with_status(move || {
            format!("{{\"dataset\":\"{name}\",\"trajectories\":{trajectories},\"serving\":true}}")
        });

    let listen = flags.get("listen").unwrap_or("127.0.0.1:8080");
    let forced = cfg.force;
    let mut service = match flags.get("wal-dir") {
        Some(dir) => {
            let fsync = FsyncPolicy::parse(flags.get("fsync").unwrap_or("batch"))
                .map_err(|e| format!("--fsync: {e}"))?;
            let config = WalConfig {
                fsync,
                ..WalConfig::default()
            };
            let mut durable = DurableIngest::create(
                Arc::new(ds.network.clone()),
                ds.store.clone(),
                ds.vocab.clone(),
                dir,
                config,
                None,
                Some(&registry),
            )
            .map_err(|e| format!("opening wal in {dir}: {e}"))?;
            durable.set_journal(journal.clone());
            QueryService::start_durable(listen, durable, registry, obs, cfg)
        }
        None => {
            let mut manager = EpochManager::with_metrics(
                Arc::new(ds.network.clone()),
                ds.store.clone(),
                ds.vocab.len(),
                &registry,
            );
            manager.set_journal(journal.clone());
            QueryService::start(listen, Arc::new(manager), registry, obs, cfg)
        }
    }
    .map_err(|e| format!("binding {listen}: {e}"))?;

    println!("uots-serve: listening on http://{}", service.local_addr());
    println!(
        "uots-serve: {trajectories} trajectories live, planner {}",
        match forced {
            Some(kind) => format!("forced to {kind}"),
            None => "adaptive".to_string(),
        }
    );

    while !service.is_stopped() {
        std::thread::sleep(Duration::from_millis(50));
    }
    service.shutdown();
    println!("uots-serve: shutdown complete");
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
