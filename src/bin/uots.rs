//! `uots` — command-line interface to the trajectory search library.
//!
//! ```text
//! uots generate      --preset small|brn|nrn --trips N --seed S --out data.uotsds
//! uots stats         --data data.uotsds
//! uots query         --data data.uotsds --at x,y --at x,y [--tags a,b] [--lambda L] [--k K]
//!                    [--metrics-out FILE] [--trace FILE] [--obs-listen ADDR]
//! uots join          --data data.uotsds --theta T [--lambda L] [--threads N]
//!                    [--metrics-out FILE]
//! uots ingest        --data data.uotsds --script mut.txt [--batch N] [--verify]
//!                    [--wal-dir DIR] [--fsync batch|off|interval:MS]
//!                    [--checkpoint-every N] [--metrics-out FILE]
//!                    [--obs-listen ADDR] [--obs-linger-ms MS]
//! uots recover       --wal-dir DIR [--data data.uotsds] [--verify]
//!                    [--metrics-out FILE] [--obs-listen ADDR] [--obs-linger-ms MS]
//! uots status        --wal-dir DIR [--json]
//! uots fsck          --wal-dir DIR [--data data.uotsds] [--json]
//! uots check-metrics --file export.prom
//! ```
//!
//! Datasets are stored in the compact binary format of
//! [`uots::datagen::persist`]; `generate` builds one deterministically from
//! a preset + seed, the other commands load it. `--metrics-out` writes a
//! Prometheus text exposition of the run, `--trace` a per-query JSON span
//! timeline, and `check-metrics` validates an exposition file (used in CI).
//!
//! `--obs-listen ADDR` (e.g. `127.0.0.1:0`) starts the live observability
//! endpoint for the duration of the command: `GET /metrics` serves the
//! Prometheus exposition, `/status` a JSON health summary, `/journal?n=K`
//! the structured event journal as JSON lines, and `/traces` the retained
//! slow-query exemplars. `--obs-linger-ms MS` keeps the endpoint up that
//! much longer after the command's work finishes, so scripts (and CI) can
//! scrape a completed run. `--json` on `status`/`fsck` switches the report
//! to machine-readable JSON with the same exit codes.
//!
//! ## Exit codes
//!
//! The durability commands (`recover`, `status`, `fsck`) report what they
//! found through distinct exit codes so scripts and runbooks can branch
//! without parsing output:
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | clean — no damage found, nothing skipped |
//! | 1 | operational error (I/O failure, bad arguments' values, …) |
//! | 2 | usage error (unknown command or malformed flags) |
//! | 3 | recovered, but with fallback: a corrupt checkpoint was skipped or a torn WAL tail was cut (`recover` only) |
//! | 4 | corruption found (`status` reports it; `fsck` also quarantined it) but the directory still recovers |
//! | 5 | unrecoverable: no usable checkpoint and no base dataset |

use std::sync::{Arc, Mutex};
use uots::datagen::persist;
use uots::durable::{recover_with_journal, DurableError, DurableIngest, RecoverySource};
use uots::join::{
    record_join_metrics, ts_join_cached, ts_join_instrumented, ts_join_with, JoinConfig,
};
use uots::obs::{
    validate_prometheus_text, EventJournal, ObsServer, ObsState, TailSampler,
    DEFAULT_EXEMPLAR_CAPACITY, DEFAULT_SLOW_QUANTILE,
};
use uots::prelude::*;
use uots::scrub::{self, ScrubReport};
use uots::storage::StdFs;
use uots::{
    DistanceCache, EpochManager, FsyncPolicy, MetricsRegistry, PhaseNanos, Recorder, RunControl,
    Sample, SearchContext, Trajectory, WalConfig, DEFAULT_CACHE_CAPACITY,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("join") => cmd_join(&args[1..]),
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("recover") => cmd_recover(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some("fsck") => cmd_fsck(&args[1..]),
        Some("check-metrics") => cmd_check_metrics(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n");
            print_usage();
            2
        }
    };
    std::process::exit(code);
}

fn print_usage() {
    println!(
        "uots — user-oriented trajectory search (EDBT 2012 reproduction)\n\n\
         commands:\n\
         \x20 generate --preset small|brn|nrn --trips N [--seed S] --out FILE\n\
         \x20 stats    --data FILE\n\
         \x20 query    --data FILE --at x,y --at x,y ... [--tags a,b,c]\n\
         \x20          [--lambda L=0.5] [--k K=3]\n\
         \x20          [--deadline-ms MS] [--max-visited N]\n\
         \x20          [--cache-capacity N] [--no-cache]\n\
         \x20          [--metrics-out FILE] [--trace FILE] [--obs-listen ADDR]\n\
         \x20 join     --data FILE --theta T=0.8 [--lambda L=0.5] [--threads N=2]\n\
         \x20          [--deadline-ms MS] [--max-visited N] [--metrics-out FILE]\n\
         \x20          [--cache-capacity N] [--no-cache]\n\
         \x20 ingest   --data FILE --script FILE [--batch N] [--verify]\n\
         \x20          [--wal-dir DIR] [--fsync batch|off|interval:MS]\n\
         \x20          [--checkpoint-every N] [--metrics-out FILE]\n\
         \x20          [--obs-listen ADDR] [--obs-linger-ms MS]\n\
         \x20 recover  --wal-dir DIR [--data FILE] [--verify]\n\
         \x20          [--metrics-out FILE] [--obs-listen ADDR] [--obs-linger-ms MS]\n\
         \x20 status   --wal-dir DIR [--json]\n\
         \x20 fsck     --wal-dir DIR [--data FILE] [--json]\n\
         \x20 check-metrics --file FILE\n\n\
         ingest replays a mutation script (`ingest v1 v2 ... [| tag,tag]`,\n\
         `retire ID`, `publish`; `#` comments) against an epoch-swapped\n\
         live store; --batch N auto-publishes every N mutations, --verify\n\
         differentially checks every published epoch against a from-scratch\n\
         rebuild of the surviving trajectories.\n\
         --wal-dir makes ingest durable: every mutation hits a checksummed\n\
         write-ahead log before it is applied (--fsync picks the sync\n\
         policy, default batch), and --checkpoint-every N cuts a checkpoint\n\
         after every N logged batches. recover rebuilds the serving state\n\
         from the newest valid checkpoint plus the durable WAL tail\n\
         (--data supplies the base dataset when no checkpoint exists);\n\
         its --verify differentially checks the recovered snapshot.\n\
         --deadline-ms / --max-visited bound the work; when a bound trips,\n\
         the best results found so far are returned with a certified gap.\n\
         network distances are memoized in a shared cache by default;\n\
         --cache-capacity N sizes it (0 disables), --no-cache or the\n\
         UOTS_NO_CACHE env var turns it off. results are identical either way.\n\
         --metrics-out writes a Prometheus text exposition, --trace a JSON\n\
         span timeline; check-metrics validates an exposition file.\n\
         --obs-listen ADDR serves live observability over HTTP while the\n\
         command runs: /metrics (Prometheus), /status (JSON health),\n\
         /journal?n=K (structured event log, JSON lines), /traces (slow-\n\
         query exemplars); --obs-linger-ms keeps it up after the work ends\n\
         so scripts can scrape a finished run. --json on status/fsck emits\n\
         the report as JSON (same exit codes).\n\
         status is a read-only integrity walk of a durable ingest directory\n\
         (checkpoint CRCs + WAL durable prefix); fsck additionally moves\n\
         wholly-unusable files into DIR/quarantine/ with a manifest — it\n\
         never deletes anything. recover/status/fsck exit codes: 0 clean,\n\
         1 operational error, 2 usage, 3 recovered-with-fallback,\n\
         4 corruption found (still recoverable), 5 unrecoverable."
    );
}

// Exit codes of the durability commands — see the module docs.
const EXIT_CLEAN: i32 = 0;
const EXIT_ERROR: i32 = 1;
const EXIT_RECOVERED_WITH_FALLBACK: i32 = 3;
const EXIT_CORRUPTION_FOUND: i32 = 4;
const EXIT_UNRECOVERABLE: i32 = 5;

/// Tiny flag parser: `--name value` pairs, `--at` repeatable. A flag
/// followed by another `--flag` (or by nothing) is a boolean switch and
/// parses as `true` — e.g. `--no-cache`.
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got `{}`", args[i]))?;
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    pairs.push((key.to_string(), v.clone()));
                    i += 2;
                }
                _ => {
                    pairs.push((key.to_string(), "true".to_string()));
                    i += 1;
                }
            }
        }
        Ok(Flags { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_all(&self, key: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }
}

fn fail(msg: impl std::fmt::Display) -> i32 {
    eprintln!("error: {msg}");
    EXIT_ERROR
}

/// Parses the shared `--deadline-ms` / `--max-visited` budget flags.
fn parse_budget(flags: &Flags) -> Result<ExecutionBudget, String> {
    let mut budget = ExecutionBudget::default();
    if let Some(ms) = flags.get("deadline-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| "--deadline-ms must be an integer".to_string())?;
        budget = budget.with_deadline_ms(ms);
    }
    if let Some(n) = flags.get("max-visited") {
        let n: usize = n
            .parse()
            .map_err(|_| "--max-visited must be an integer".to_string())?;
        budget = budget.with_max_visited(n);
    }
    Ok(budget)
}

/// Parses `--cache-capacity` / `--no-cache` into an optional shared
/// distance cache, wired to `registry` for hit/miss counters. The
/// `UOTS_NO_CACHE` environment variable (any value but `0`) disables the
/// cache regardless of flags, so CI can force the uncached path.
fn parse_cache(
    flags: &Flags,
    registry: &MetricsRegistry,
) -> Result<Option<Arc<DistanceCache>>, String> {
    if flags.get("no-cache").is_some() || uots::no_cache_env() {
        return Ok(None);
    }
    let capacity: usize = match flags.get("cache-capacity") {
        Some(v) => v
            .parse()
            .map_err(|_| "--cache-capacity must be an integer".to_string())?,
        None => DEFAULT_CACHE_CAPACITY,
    };
    if capacity == 0 {
        return Ok(None);
    }
    Ok(Some(Arc::new(DistanceCache::with_metrics(
        capacity, registry,
    ))))
}

/// One-line cache utilization report.
fn report_cache(cache: &DistanceCache) {
    let s = cache.stats();
    println!(
        "distance cache: {} hits / {} misses ({:.1}% hit rate), {} inserts, \
         {} evictions, {} bound prunes",
        s.hits,
        s.misses,
        s.hit_rate() * 100.0,
        s.inserts,
        s.evictions,
        s.bound_prunes
    );
}

/// Human-readable per-phase time table (skips phases that never ran).
fn report_phases(phases: &PhaseNanos) {
    if phases.is_zero() {
        return;
    }
    println!("phase breakdown:");
    for (phase, ns) in phases.iter() {
        if ns > 0 {
            println!("  {:<18} {:>12.3} ms", phase.as_str(), ns as f64 / 1e6);
        }
    }
}

/// Validates and writes a registry's Prometheus exposition to `path`.
fn write_metrics(registry: &MetricsRegistry, path: &str) -> Result<(), String> {
    let text = registry.render_prometheus();
    validate_prometheus_text(&text).map_err(|e| format!("internal: bad exposition: {e}"))?;
    std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
    println!("wrote metrics exposition to {path}");
    Ok(())
}

/// The live observability plane behind `--obs-listen`: an HTTP endpoint
/// serving the run's metrics registry, a structured [`EventJournal`] the
/// storage/ingest layers write into, a tail-sampling [`TailSampler`] for
/// slow-query exemplars, and a mutable status document for `/status`.
struct ObsPlane {
    journal: EventJournal,
    sampler: TailSampler,
    status: Arc<Mutex<String>>,
    server: ObsServer,
    linger_ms: u64,
}

impl ObsPlane {
    /// Replaces the `/status` document (a JSON object).
    fn set_status(&self, json: String) {
        *self.status.lock().unwrap_or_else(|e| e.into_inner()) = json;
    }

    /// Holds the endpoint open for `--obs-linger-ms`, then shuts it down.
    fn finish(mut self) {
        if self.linger_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.linger_ms));
        }
        self.server.shutdown();
    }
}

/// Starts the observability endpoint when `--obs-listen ADDR` is present.
/// Returns `None` when the flag is absent; the caller wires the returned
/// journal/sampler into whatever it runs.
fn start_obs_plane(flags: &Flags, registry: &MetricsRegistry) -> Result<Option<ObsPlane>, String> {
    let Some(addr) = flags.get("obs-listen") else {
        return Ok(None);
    };
    let linger_ms: u64 = match flags.get("obs-linger-ms") {
        Some(v) => v
            .parse()
            .map_err(|_| "--obs-linger-ms must be an integer".to_string())?,
        None => 0,
    };
    let journal = EventJournal::default();
    // zero warmup: a CLI run may issue a single query, and an operator who
    // asked for the endpoint expects /traces to hold it
    let sampler = TailSampler::with_policy(
        DEFAULT_EXEMPLAR_CAPACITY,
        DEFAULT_SLOW_QUANTILE,
        0,
        Some(4096),
    );
    let status = Arc::new(Mutex::new("{}".to_string()));
    let status_read = Arc::clone(&status);
    let state = ObsState::new()
        .with_registry(registry.clone())
        .with_journal(journal.clone())
        .with_sampler(sampler.clone())
        .with_status(move || {
            status_read
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone()
        });
    let server = ObsServer::start(addr, state).map_err(|e| format!("--obs-listen {addr}: {e}"))?;
    println!(
        "obs endpoint listening on http://{} (/metrics /status /journal /traces)",
        server.local_addr()
    );
    Ok(Some(ObsPlane {
        journal,
        sampler,
        status,
        server,
        linger_ms,
    }))
}

/// One-line completeness report for interrupted runs.
fn report_completeness(c: &Completeness) {
    if let Completeness::BestEffort { bound_gap } = c {
        println!(
            "note: budget exhausted — best-effort result, certified gap {bound_gap:.4} \
             (no missed answer beats the reported ones by more)"
        );
    }
}

fn cmd_generate(args: &[String]) -> i32 {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let preset = flags.get("preset").unwrap_or("small");
    let trips: usize = match flags.get("trips").unwrap_or("1000").parse() {
        Ok(v) => v,
        Err(_) => return fail("--trips must be an integer"),
    };
    let seed: u64 = match flags.get("seed").unwrap_or("42").parse() {
        Ok(v) => v,
        Err(_) => return fail("--seed must be an integer"),
    };
    let out = match flags.require("out") {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let cfg = match preset {
        "small" => DatasetConfig::small(trips, seed),
        "brn" => DatasetConfig::brn_like(trips).with_seed(seed),
        "nrn" => DatasetConfig::nrn_like(trips).with_seed(seed),
        other => return fail(format!("unknown preset `{other}`")),
    };
    eprintln!("building {} ...", cfg.name);
    let ds = match Dataset::build(&cfg) {
        Ok(ds) => ds,
        Err(e) => return fail(e),
    };
    if let Err(e) = persist::save_file(&ds, &cfg, out) {
        return fail(e);
    }
    println!(
        "wrote {out}: {} vertices, {} trips",
        ds.network.num_nodes(),
        ds.store.len()
    );
    0
}

fn load(flags: &Flags) -> Result<Dataset, String> {
    let path = flags.require("data")?;
    persist::load_file(path).map_err(|e| format!("loading {path}: {e}"))
}

fn cmd_stats(args: &[String]) -> i32 {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let ds = match load(&flags) {
        Ok(ds) => ds,
        Err(e) => return fail(e),
    };
    println!("dataset: {}", ds.name);
    println!("{}", ds.stats());
    println!(
        "network             : {} vertices, {} edges, {:.0} km total",
        ds.network.num_nodes(),
        ds.network.num_edges(),
        ds.network.total_length()
    );
    // the same numbers as a registry snapshot, in the JSON exposition the
    // telemetry layer uses everywhere else
    let registry = MetricsRegistry::default();
    registry
        .gauge("uots_dataset_vertices", "Road-network vertex count")
        .set(i64::try_from(ds.network.num_nodes()).unwrap_or(i64::MAX));
    registry
        .gauge("uots_dataset_edges", "Road-network edge count")
        .set(i64::try_from(ds.network.num_edges()).unwrap_or(i64::MAX));
    registry
        .gauge("uots_dataset_trajectories", "Stored trajectory count")
        .set(i64::try_from(ds.store.len()).unwrap_or(i64::MAX));
    println!("registry snapshot: {}", registry.render_json());
    0
}

fn cmd_query(args: &[String]) -> i32 {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let ds = match load(&flags) {
        Ok(ds) => ds,
        Err(e) => return fail(e),
    };
    let ats = flags.get_all("at");
    if ats.is_empty() {
        return fail("need at least one --at x,y place");
    }
    let mut places = Vec::new();
    for at in ats {
        let Some((x, y)) = at.split_once(',') else {
            return fail(format!("--at expects `x,y`, got `{at}`"));
        };
        let (Ok(x), Ok(y)) = (x.trim().parse::<f64>(), y.trim().parse::<f64>()) else {
            return fail(format!("--at coordinates must be numbers, got `{at}`"));
        };
        places.push(ds.snap(&Point::new(x, y)));
    }
    let mut keywords = Vec::new();
    if let Some(tags) = flags.get("tags") {
        for tag in tags.split(',') {
            match ds.vocab.get(tag) {
                Some(id) => keywords.push(id),
                None => eprintln!("warning: tag `{tag}` not in the vocabulary; ignored"),
            }
        }
    }
    let lambda: f64 = match flags.get("lambda").unwrap_or("0.5").parse() {
        Ok(v) => v,
        Err(_) => return fail("--lambda must be a number"),
    };
    let k: usize = match flags.get("k").unwrap_or("3").parse() {
        Ok(v) => v,
        Err(_) => return fail("--k must be an integer"),
    };
    let weights = match Weights::lambda(lambda) {
        Ok(w) => w,
        Err(e) => return fail(e),
    };
    let budget = match parse_budget(&flags) {
        Ok(b) => b,
        Err(e) => return fail(e),
    };
    let query = match UotsQuery::with_options(
        places,
        KeywordSet::from_ids(keywords),
        vec![],
        QueryOptions {
            weights,
            k,
            budget,
            ..Default::default()
        },
    ) {
        Ok(q) => q,
        Err(e) => return fail(e),
    };
    let db = uots::db(&ds);
    let metrics_out = flags.get("metrics-out").map(str::to_string);
    let trace_out = flags.get("trace").map(str::to_string);
    let registry = MetricsRegistry::default();
    let plane = match start_obs_plane(&flags, &registry) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    let cache = match parse_cache(&flags, &registry) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    let ctx = match &cache {
        Some(c) => SearchContext::with_cache(Arc::clone(c)),
        None => SearchContext::default(),
    };
    // tracing subsumes phases-only; both are skipped entirely (one branch
    // per recorder call) when neither output was requested. The obs plane
    // forces tracing so its sampler can retain a full exemplar.
    let mut rec = if trace_out.is_some() || plane.is_some() {
        Recorder::tracing("expansion", 4096)
    } else if metrics_out.is_some() {
        Recorder::phases_only("expansion")
    } else {
        Recorder::disabled()
    };
    let result =
        match Expansion::default().run_ctx(&db, &query, &RunControl::unbounded(), &mut rec, &ctx) {
            Ok(r) => r,
            Err(e) => return fail(e),
        };
    println!("top {} trips:", result.matches.len());
    for (rank, m) in result.matches.iter().enumerate() {
        let t = ds.store.get(m.id);
        let tags: Vec<&str> = t
            .keywords()
            .iter()
            .filter_map(|kw| ds.vocab.word(kw))
            .collect();
        let (t0, t1) = t.time_range();
        println!(
            "  #{} {}  sim {:.4} (spatial {:.4}, textual {:.4})  {} samples, \
             {:02}:{:02}–{:02}:{:02}, tags {:?}",
            rank + 1,
            m.id,
            m.similarity,
            m.spatial,
            m.textual,
            t.len(),
            (t0 / 3600.0) as u32,
            ((t0 % 3600.0) / 60.0) as u32,
            (t1 / 3600.0) as u32,
            ((t1 % 3600.0) / 60.0) as u32,
            tags
        );
    }
    println!(
        "visited {} / {} trajectories in {:?}",
        result.metrics.visited_trajectories,
        ds.store.len(),
        result.metrics.runtime
    );
    report_completeness(&result.completeness);
    if let Some(c) = &cache {
        report_cache(c);
    }
    let latency_us = u64::try_from(result.metrics.runtime.as_micros()).unwrap_or(u64::MAX);
    if let Some(report) = rec.finish() {
        report_phases(&report.phases);
        if let Some(p) = &plane {
            p.sampler.observe(
                &query.summary(),
                latency_us,
                !result.completeness.is_exact(),
                false,
                report.trace.clone(),
            );
            p.set_status(format!(
                "{{\"command\":\"query\",\"matches\":{},\"visited\":{},\
                 \"latency_us\":{},\"exact\":{}}}",
                result.matches.len(),
                result.metrics.visited_trajectories,
                latency_us,
                result.completeness.is_exact()
            ));
        }
        if metrics_out.is_some() || plane.is_some() {
            registry
                .histogram("uots_query_latency_us", "Query wall time, microseconds")
                .record(latency_us);
            registry.observe_phases(
                "uots_query_phase_duration_ns",
                "Per-phase query durations, nanoseconds",
                &report.phases,
            );
            registry
                .counter(
                    "uots_query_visited_trajectories_total",
                    "Trajectories visited by queries",
                )
                .add(result.metrics.visited_trajectories as u64);
            registry
                .counter(
                    "uots_query_heap_pushes_total",
                    "Candidate-heap pushes by queries",
                )
                .add(result.metrics.heap_pushes as u64);
        }
        if let Some(path) = metrics_out {
            if let Err(e) = write_metrics(&registry, &path) {
                return fail(e);
            }
        }
        if let Some(path) = trace_out {
            let trace = report
                .trace
                .expect("tracing recorder always yields a trace");
            if let Err(e) = trace.validate() {
                return fail(format!("internal: invalid trace: {e}"));
            }
            let json = match serde_json::to_string_pretty(&trace) {
                Ok(j) => j,
                Err(e) => return fail(format!("serializing trace: {e}")),
            };
            if let Err(e) = std::fs::write(&path, json) {
                return fail(format!("writing {path}: {e}"));
            }
            println!("wrote query trace to {path}");
        }
    }
    if let Some(p) = plane {
        p.finish();
    }
    0
}

fn cmd_join(args: &[String]) -> i32 {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let ds = match load(&flags) {
        Ok(ds) => ds,
        Err(e) => return fail(e),
    };
    let theta: f64 = match flags.get("theta").unwrap_or("0.8").parse() {
        Ok(v) => v,
        Err(_) => return fail("--theta must be a number"),
    };
    let lambda: f64 = match flags.get("lambda").unwrap_or("0.5").parse() {
        Ok(v) => v,
        Err(_) => return fail("--lambda must be a number"),
    };
    let threads: usize = match flags.get("threads").unwrap_or("2").parse() {
        Ok(v) => v,
        Err(_) => return fail("--threads must be an integer"),
    };
    let cfg = JoinConfig {
        theta,
        lambda,
        ..Default::default()
    };
    let budget = match parse_budget(&flags) {
        Ok(b) => b,
        Err(e) => return fail(e),
    };
    let tidx = ds.store.build_timestamp_index();
    let metrics_out = flags.get("metrics-out").map(str::to_string);
    let registry = MetricsRegistry::default();
    let cache = match parse_cache(&flags, &registry) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    let result = if let Some(cache) = &cache {
        ts_join_cached(
            &ds.network,
            &ds.store,
            &ds.vertex_index,
            &tidx,
            &cfg,
            threads,
            &budget,
            &RunControl::unbounded(),
            cache,
        )
    } else if metrics_out.is_some() {
        ts_join_instrumented(
            &ds.network,
            &ds.store,
            &ds.vertex_index,
            &tidx,
            &cfg,
            threads,
            &budget,
            &RunControl::unbounded(),
            &registry,
        )
    } else {
        ts_join_with(
            &ds.network,
            &ds.store,
            &ds.vertex_index,
            &tidx,
            &cfg,
            threads,
            &budget,
            &RunControl::unbounded(),
        )
    };
    let result = match result {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    // the cached entry point bypasses ts_join_instrumented; record its
    // outcome here so --metrics-out sees join counters either way
    if cache.is_some() && metrics_out.is_some() {
        record_join_metrics(&registry, &result);
    }
    println!(
        "{} pairs with similarity >= {theta} (in {:?}):",
        result.pairs.len(),
        result.runtime
    );
    for p in result.pairs.iter().take(20) {
        println!("  {} ↔ {}  sim {:.4}", p.a, p.b, p.similarity);
    }
    if result.pairs.len() > 20 {
        println!("  ... and {} more", result.pairs.len() - 20);
    }
    report_completeness(&result.completeness);
    if let Some(c) = &cache {
        report_cache(c);
    }
    report_phases(&result.phases);
    if let Some(path) = metrics_out {
        if let Err(e) = write_metrics(&registry, &path) {
            return fail(e);
        }
    }
    0
}

/// Differentially checks one published epoch: every probe query must answer
/// bit-identically on the live (masked) snapshot and on a from-scratch
/// rebuild of only the surviving trajectories, with ids mapped through the
/// order-preserving compaction.
fn verify_epoch(
    snapshot: &uots::EpochSnapshot,
    vocab_len: usize,
    probes: &[UotsQuery],
) -> Result<(), String> {
    let net = snapshot.network();
    let (compacted, id_map) = snapshot.rebuild_compacted();
    let vidx = compacted.build_vertex_index(net.num_nodes());
    let kidx = compacted.build_keyword_index(vocab_len);
    let oracle_db = Database::new(net, &compacted, &vidx).with_keyword_index(&kidx);
    let live_db = snapshot.database();
    for (qi, q) in probes.iter().enumerate() {
        let live = Expansion::default()
            .run(&live_db, q)
            .map_err(|e| format!("probe {qi} on epoch {}: {e}", snapshot.epoch()))?;
        let oracle = Expansion::default()
            .run(&oracle_db, q)
            .map_err(|e| format!("probe {qi} on rebuild of epoch {}: {e}", snapshot.epoch()))?;
        let mapped: Vec<TrajectoryId> = live
            .ids()
            .iter()
            .map(|id| id_map[id.index()].expect("live snapshot served a retired id"))
            .collect();
        if mapped != oracle.ids() {
            return Err(format!(
                "epoch {} probe {qi}: live answers {mapped:?} != rebuild {:?}",
                snapshot.epoch(),
                oracle.ids()
            ));
        }
        for (a, b) in live.matches.iter().zip(oracle.matches.iter()) {
            if a.similarity.to_bits() != b.similarity.to_bits() {
                return Err(format!(
                    "epoch {} probe {qi}: similarity drift {} vs {}",
                    snapshot.epoch(),
                    a.similarity,
                    b.similarity
                ));
            }
        }
    }
    Ok(())
}

/// The ingest sink: a bare [`EpochManager`], or a [`DurableIngest`]
/// logging every mutation to a WAL (and cutting checkpoints) first.
enum Ingestor {
    Plain(Box<EpochManager>),
    Durable(Box<DurableIngest>),
}

impl Ingestor {
    fn ingest(&mut self, t: Trajectory) -> Result<TrajectoryId, String> {
        match self {
            Ingestor::Plain(m) => Ok(m.ingest(t)),
            Ingestor::Durable(d) => d.ingest(t).map_err(|e| e.to_string()),
        }
    }

    fn retire(&mut self, id: TrajectoryId) -> Result<bool, String> {
        match self {
            Ingestor::Plain(m) => Ok(m.retire(id)),
            Ingestor::Durable(d) => d.retire(id).map_err(|e| e.to_string()),
        }
    }

    fn publish(&mut self) -> Result<Arc<uots::EpochSnapshot>, String> {
        match self {
            Ingestor::Plain(m) => Ok(m.publish()),
            Ingestor::Durable(d) => d.publish().map_err(|e| e.to_string()),
        }
    }

    fn pending(&self) -> u64 {
        match self {
            Ingestor::Plain(m) => m.pending(),
            Ingestor::Durable(d) => d.manager().pending(),
        }
    }

    fn snapshot(&self) -> Arc<uots::EpochSnapshot> {
        match self {
            Ingestor::Plain(m) => m.snapshot(),
            Ingestor::Durable(d) => d.snapshot(),
        }
    }

    /// The `/status` document for this sink: the full [`DurableIngest`]
    /// health summary when durable, a minimal epoch summary otherwise.
    fn status_json(&self) -> String {
        match self {
            Ingestor::Plain(m) => {
                let st = m.snapshot().stats();
                format!(
                    "{{\"state\":\"healthy\",\"mode\":\"plain\",\"epoch\":{},\
                     \"live\":{},\"pending\":{}}}",
                    st.epoch,
                    st.live,
                    m.pending()
                )
            }
            Ingestor::Durable(d) => {
                serde_json::to_string(&d.status()).unwrap_or_else(|_| "{}".to_string())
            }
        }
    }
}

fn cmd_ingest(args: &[String]) -> i32 {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let ds = match load(&flags) {
        Ok(ds) => ds,
        Err(e) => return fail(e),
    };
    let script_path = match flags.require("script") {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let script = match std::fs::read_to_string(script_path) {
        Ok(t) => t,
        Err(e) => return fail(format!("reading {script_path}: {e}")),
    };
    let batch: usize = match flags.get("batch").unwrap_or("0").parse() {
        Ok(v) => v,
        Err(_) => return fail("--batch must be an integer"),
    };
    let verify = flags.get("verify").is_some();
    let metrics_out = flags.get("metrics-out").map(str::to_string);
    let registry = MetricsRegistry::default();
    let plane = match start_obs_plane(&flags, &registry) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };

    let num_nodes = ds.network.num_nodes();
    let vocab_len = ds.vocab.len();
    let mut sink = match flags.get("wal-dir") {
        Some(dir) => {
            let fsync = match FsyncPolicy::parse(flags.get("fsync").unwrap_or("batch")) {
                Ok(p) => p,
                Err(e) => return fail(format!("--fsync: {e}")),
            };
            let checkpoint_every = match flags.get("checkpoint-every") {
                Some(v) => match v.parse::<u64>() {
                    Ok(n) if n > 0 => Some(n),
                    _ => return fail("--checkpoint-every must be a positive integer"),
                },
                None => None,
            };
            let config = WalConfig {
                fsync,
                ..WalConfig::default()
            };
            let mut durable = match DurableIngest::create(
                Arc::new(ds.network.clone()),
                ds.store.clone(),
                ds.vocab.clone(),
                dir,
                config,
                checkpoint_every,
                Some(&registry),
            ) {
                Ok(d) => d,
                Err(e) => return fail(format!("opening wal in {dir}: {e}")),
            };
            if let Some(p) = &plane {
                durable.set_journal(p.journal.clone());
            }
            println!(
                "durable ingest: wal in {dir} (fsync {fsync}, checkpoint every {})",
                checkpoint_every.map_or("never".to_string(), |n| format!("{n} batches")),
            );
            Ingestor::Durable(Box::new(durable))
        }
        None => {
            let mut manager = EpochManager::with_metrics(
                Arc::new(ds.network.clone()),
                ds.store.clone(),
                vocab_len,
                &registry,
            );
            if let Some(p) = &plane {
                manager.set_journal(p.journal.clone());
            }
            Ingestor::Plain(Box::new(manager))
        }
    };
    if let Some(p) = &plane {
        p.set_status(sink.status_json());
    }
    let probes: Vec<UotsQuery> = workload::generate(&ds, &workload::WorkloadConfig::default())
        .into_iter()
        .take(3)
        .map(|s| {
            UotsQuery::with_options(
                s.locations,
                s.keywords,
                vec![],
                QueryOptions {
                    k: 5,
                    ..Default::default()
                },
            )
            .expect("workload specs are valid queries")
        })
        .collect();

    let started = std::time::Instant::now();
    let mut next_id = ds.store.len();
    let mut ingested = 0u64;
    let mut retired = 0u64;
    let mut published = 0u64;
    let mut since_publish = 0usize;
    let do_publish = |sink: &mut Ingestor, published: &mut u64| -> Result<(), String> {
        let snap = sink.publish()?;
        *published += 1;
        let st = snap.stats();
        println!(
            "epoch {}: {} live / {} total, {} postings, {} mutations folded in",
            st.epoch, st.live, st.total, st.postings, st.mutations
        );
        if verify {
            verify_epoch(&snap, vocab_len, &probes)?;
            println!(
                "  verified against from-scratch rebuild ({} probes)",
                probes.len()
            );
        }
        if let Some(p) = &plane {
            p.set_status(sink.status_json());
        }
        Ok(())
    };

    for (lineno, raw) in script.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| format!("{script_path}:{}: {msg}", lineno + 1);
        let mutated = if let Some(rest) = line.strip_prefix("ingest") {
            let (nodes_part, tags_part) = match rest.split_once('|') {
                Some((n, t)) => (n, Some(t)),
                None => (rest, None),
            };
            let mut samples = Vec::new();
            for tok in nodes_part.split_whitespace() {
                let v: u32 = match tok.parse() {
                    Ok(v) if (v as usize) < num_nodes => v,
                    _ => return fail(at(format!("bad vertex `{tok}`"))),
                };
                samples.push(Sample {
                    node: NodeId(v),
                    time: 60.0 * samples.len() as f64,
                });
            }
            let mut tags = Vec::new();
            if let Some(t) = tags_part {
                for tag in t.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                    match ds.vocab.get(tag) {
                        Some(id) => tags.push(id),
                        None => eprintln!("warning: tag `{tag}` not in the vocabulary; ignored"),
                    }
                }
            }
            let t = match Trajectory::new(samples, KeywordSet::from_ids(tags)) {
                Ok(t) => t,
                Err(e) => return fail(at(format!("{e}"))),
            };
            let id = match sink.ingest(t) {
                Ok(id) => id,
                Err(e) => return fail(at(e)),
            };
            debug_assert_eq!(id.index(), next_id);
            next_id += 1;
            ingested += 1;
            true
        } else if let Some(rest) = line.strip_prefix("retire") {
            let id: usize = match rest.trim().parse() {
                Ok(v) if v < next_id => v,
                _ => return fail(at(format!("bad trajectory id `{}`", rest.trim()))),
            };
            match sink.retire(TrajectoryId(id as u32)) {
                Ok(true) => retired += 1,
                Ok(false) => {}
                Err(e) => return fail(at(e)),
            }
            true
        } else if line == "publish" {
            since_publish = 0;
            if let Err(e) = do_publish(&mut sink, &mut published) {
                return fail(e);
            }
            false
        } else {
            return fail(at(format!("unknown directive `{line}`")));
        };
        if mutated && batch > 0 {
            since_publish += 1;
            if since_publish >= batch {
                since_publish = 0;
                if let Err(e) = do_publish(&mut sink, &mut published) {
                    return fail(e);
                }
            }
        }
    }
    if sink.pending() > 0 {
        if let Err(e) = do_publish(&mut sink, &mut published) {
            return fail(e);
        }
    }

    let elapsed = started.elapsed();
    let final_snap = sink.snapshot();
    println!(
        "replayed {} mutations ({ingested} ingests, {retired} retires) over {published} \
         epochs in {elapsed:?} ({:.0} mutations/s); serving epoch {} with {} live trips",
        ingested + retired,
        (ingested + retired) as f64 / elapsed.as_secs_f64().max(1e-9),
        final_snap.epoch(),
        final_snap.stats().live
    );
    if let Ingestor::Durable(d) = &sink {
        println!(
            "wal durable through lsn {} (last checkpoint at lsn {})",
            d.next_lsn().saturating_sub(1),
            d.last_checkpoint_lsn()
        );
    }
    if let Some(path) = metrics_out {
        if let Err(e) = write_metrics(&registry, &path) {
            return fail(e);
        }
    }
    if let Some(p) = &plane {
        p.set_status(sink.status_json());
    }
    if let Some(p) = plane {
        p.finish();
    }
    0
}

fn cmd_recover(args: &[String]) -> i32 {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let dir = match flags.require("wal-dir") {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let base = match flags.get("data") {
        Some(path) => match persist::load_file(path) {
            Ok(ds) => Some(ds),
            Err(e) => return fail(format!("loading {path}: {e}")),
        },
        None => None,
    };
    let verify = flags.get("verify").is_some();
    let metrics_out = flags.get("metrics-out").map(str::to_string);
    let registry = MetricsRegistry::default();
    let plane = match start_obs_plane(&flags, &registry) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };

    let recovered = match recover_with_journal(
        &StdFs,
        std::path::Path::new(dir),
        base.as_ref(),
        Some(&registry),
        plane.as_ref().map(|p| &p.journal),
    ) {
        Ok(r) => r,
        // Inconsistent means the durable state itself cannot produce a
        // valid serving state (no base to fall back to, or a log that
        // replays into nonsense) — that is the unrecoverable exit, not an
        // operational hiccup a retry might clear.
        Err(e @ DurableError::Inconsistent(_)) => {
            eprintln!("error: recovering from {dir}: {e}");
            return EXIT_UNRECOVERABLE;
        }
        Err(e) => return fail(format!("recovering from {dir}: {e}")),
    };
    let report = &recovered.report;
    match &report.source {
        RecoverySource::Checkpoint(path) => println!(
            "recovered from checkpoint {} (lsn {})",
            path.display(),
            report.checkpoint_lsn
        ),
        RecoverySource::BaseDataset => println!("recovered from the base dataset (no checkpoint)"),
    }
    for rejected in &report.rejected_checkpoints {
        println!("  skipped corrupt checkpoint {}", rejected.display());
    }
    println!(
        "replayed {} wal batches ({} mutations); durable through lsn {} ({} us)",
        report.replayed_batches,
        report.replayed_mutations,
        report.next_lsn.saturating_sub(1),
        report.micros
    );
    if let Some(c) = &report.wal_corruption {
        println!(
            "wal tail cut at {} offset {}: {} — later records discarded",
            c.segment.display(),
            c.offset,
            c.reason
        );
    }
    let snap = recovered.manager.snapshot();
    let st = snap.stats();
    println!(
        "serving epoch {}: {} live / {} total trajectories",
        st.epoch, st.live, st.total
    );
    if verify {
        let probe_source = match &base {
            Some(ds) => ds,
            None => {
                return fail("--verify needs --data to derive probe queries");
            }
        };
        let probes: Vec<UotsQuery> =
            workload::generate(probe_source, &workload::WorkloadConfig::default())
                .into_iter()
                .take(3)
                .map(|s| {
                    UotsQuery::with_options(
                        s.locations,
                        s.keywords,
                        vec![],
                        QueryOptions {
                            k: 5,
                            ..Default::default()
                        },
                    )
                    .expect("workload specs are valid queries")
                })
                .collect();
        if let Err(e) = verify_epoch(&snap, recovered.vocab.len(), &probes) {
            return fail(e);
        }
        println!(
            "verified against from-scratch rebuild ({} probes)",
            probes.len()
        );
    }
    if let Some(path) = metrics_out {
        if let Err(e) = write_metrics(&registry, &path) {
            return fail(e);
        }
    }
    let code = if !report.rejected_checkpoints.is_empty() || report.wal_corruption.is_some() {
        EXIT_RECOVERED_WITH_FALLBACK
    } else {
        EXIT_CLEAN
    };
    if let Some(p) = plane {
        let source = match &report.source {
            RecoverySource::Checkpoint(path) => format!("checkpoint:{}", path.display()),
            RecoverySource::BaseDataset => "base_dataset".to_string(),
        };
        p.set_status(format!(
            "{{\"command\":\"recover\",\"source\":{},\"replayed_batches\":{},\
             \"replayed_mutations\":{},\"next_lsn\":{},\"rejected_checkpoints\":{},\
             \"wal_tail_cut\":{},\"exit_code\":{}}}",
            serde_json::to_string(&source).unwrap_or_else(|_| "\"?\"".to_string()),
            report.replayed_batches,
            report.replayed_mutations,
            report.next_lsn,
            report.rejected_checkpoints.len(),
            report.wal_corruption.is_some(),
            code
        ));
        p.finish();
    }
    code
}

/// Exit code a `status`/`fsck` report implies — shared by the human and
/// `--json` renderings so scripts can rely on it either way.
fn scrub_exit_code(r: &ScrubReport, has_base: bool) -> i32 {
    if r.is_clean() {
        EXIT_CLEAN
    } else if r.recoverable(has_base) {
        EXIT_CORRUPTION_FOUND
    } else {
        EXIT_UNRECOVERABLE
    }
}

/// Prints the shared portion of a `status`/`fsck` report and returns the
/// exit code it implies.
fn report_scrub(r: &ScrubReport, has_base: bool) -> i32 {
    println!(
        "{} wal segment(s), {} checkpoint(s) examined",
        r.segments, r.checkpoints
    );
    for (path, reason) in &r.invalid_checkpoints {
        println!("  corrupt checkpoint {}: {reason}", path.display());
    }
    for (path, reason) in &r.unusable_segments {
        println!("  unusable segment {}: {reason}", path.display());
    }
    if let Some(c) = &r.torn_tail {
        println!(
            "  torn tail in {} at offset {}: {} — records before it are durable; \
             reopen/recovery truncates the tear",
            c.segment.display(),
            c.offset,
            c.reason
        );
    }
    for q in &r.quarantined {
        println!(
            "  quarantined {} -> {}",
            q.original.display(),
            q.quarantined.display()
        );
    }
    match &r.plan.checkpoint {
        Some((path, lsn)) => println!(
            "recovery plan: checkpoint {} (lsn {lsn}) + {} wal batch(es) \
             ({} mutations); writer resumes at lsn {}",
            path.display(),
            r.plan.replayable_batches,
            r.plan.replayable_mutations,
            r.plan.next_lsn
        ),
        None => println!(
            "recovery plan: no usable checkpoint — base dataset + {} wal batch(es) \
             ({} mutations); writer resumes at lsn {}",
            r.plan.replayable_batches, r.plan.replayable_mutations, r.plan.next_lsn
        ),
    }
    let code = scrub_exit_code(r, has_base);
    if code == EXIT_CLEAN {
        println!("clean");
    } else if code == EXIT_UNRECOVERABLE {
        println!("unrecoverable: no usable checkpoint (supply --data for a base dataset)");
    }
    code
}

/// Prints a `status`/`fsck` report as one pretty-printed JSON object and
/// returns the same exit code the human rendering would.
fn report_scrub_json(r: &ScrubReport, has_base: bool) -> i32 {
    match serde_json::to_string_pretty(r) {
        Ok(json) => println!("{json}"),
        Err(e) => return fail(format!("serializing report: {e}")),
    }
    scrub_exit_code(r, has_base)
}

fn cmd_status(args: &[String]) -> i32 {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let dir = match flags.require("wal-dir") {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let report = match scrub::inspect(&StdFs, std::path::Path::new(dir)) {
        Ok(r) => r,
        Err(e) => return fail(format!("inspecting {dir}: {e}")),
    };
    // status cannot know whether the operator holds the base dataset;
    // assume they might, so a checkpoint-less-but-intact dir reports 4
    // rather than 5
    if flags.get("json").is_some() {
        return report_scrub_json(&report, true);
    }
    println!("status of {dir} (read-only):");
    report_scrub(&report, true)
}

fn cmd_fsck(args: &[String]) -> i32 {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let dir = match flags.require("wal-dir") {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    // --data proves the operator can supply the base dataset, which decides
    // corruption-found (4) vs unrecoverable (5) when no checkpoint survives
    let has_base = match flags.get("data") {
        Some(path) => match persist::load_file(path) {
            Ok(_) => true,
            Err(e) => return fail(format!("loading {path}: {e}")),
        },
        None => false,
    };
    let report = match scrub::scrub(&StdFs, std::path::Path::new(dir)) {
        Ok(r) => r,
        Err(e) => return fail(format!("scrubbing {dir}: {e}")),
    };
    if flags.get("json").is_some() {
        // the JSON report already carries the quarantine list
        return report_scrub_json(&report, has_base);
    }
    println!("fsck of {dir}:");
    let code = report_scrub(&report, has_base);
    if !report.quarantined.is_empty() {
        println!(
            "{} file(s) moved to {}/quarantine/ (see MANIFEST.txt); nothing was deleted",
            report.quarantined.len(),
            dir
        );
    }
    code
}

fn cmd_check_metrics(args: &[String]) -> i32 {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let path = match flags.require("file") {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(format!("reading {path}: {e}")),
    };
    match validate_prometheus_text(&text) {
        Ok(summary) => {
            println!(
                "{path}: OK — {} metric families, {} samples",
                summary.families, summary.samples
            );
            0
        }
        Err(e) => fail(format!("{path}: {e}")),
    }
}
