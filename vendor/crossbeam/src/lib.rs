//! Vendored stand-in for the `crossbeam::thread` scoped-spawn API, layered
//! over `std::thread::scope` (which stabilized after crossbeam's design
//! and covers this workspace's entire usage).
//!
//! Semantics preserved from crossbeam: `spawn` closures receive the scope
//! handle, `join` returns `Err(payload)` if the worker panicked (the panic
//! is captured, not propagated), and `scope` itself returns `Err` only if
//! the orchestrating closure panics.

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Payload of a panicked thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// worker.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // manual impls: the std scope reference is freely copyable
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a scoped worker; joining yields the closure's result or
    /// the captured panic payload.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, std::thread::Result<T>>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the worker and returns its result.
        ///
        /// # Errors
        ///
        /// The worker's panic payload, if it panicked.
        pub fn join(self) -> Result<T, PanicPayload> {
            match self.inner.join() {
                Ok(caught) => caught,
                // unreachable in practice: the worker catches its own
                // panics; kept total for safety
                Err(payload) => Err(payload),
            }
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker inside the scope. The closure receives the
        /// scope handle (crossbeam signature) to allow nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            ScopedJoinHandle {
                inner: self
                    .inner
                    .spawn(move || catch_unwind(AssertUnwindSafe(|| f(&handle)))),
            }
        }
    }

    /// Creates a scope in which borrowed-data threads can be spawned; all
    /// workers are joined before this returns.
    ///
    /// # Errors
    ///
    /// The panic payload of `f` itself, if it panics. Worker panics are
    /// reported through each handle's `join`, never here.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn spawned_workers_share_borrows_and_join_in_order() {
            let counter = AtomicUsize::new(0);
            let outputs = super::scope(|s| {
                let handles: Vec<_> = (0..8)
                    .map(|i| {
                        let counter = &counter;
                        s.spawn(move |_| {
                            counter.fetch_add(1, Ordering::Relaxed);
                            i * 10
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect::<Vec<_>>()
            })
            .unwrap();
            assert_eq!(outputs, (0..8).map(|i| i * 10).collect::<Vec<_>>());
            assert_eq!(counter.load(Ordering::Relaxed), 8);
        }

        #[test]
        fn worker_panic_is_captured_by_join_not_scope() {
            let r = super::scope(|s| {
                let good = s.spawn(|_| 1u32);
                let bad = s.spawn(|_| -> u32 { panic!("injected") });
                let bad_result = bad.join();
                assert!(bad_result.is_err());
                good.join().unwrap()
            });
            assert_eq!(r.unwrap(), 1);
        }

        #[test]
        fn scope_closure_panic_is_reported() {
            let r: Result<(), _> = super::scope(|_| panic!("orchestrator"));
            assert!(r.is_err());
        }
    }
}
