//! Vendored, dependency-free stand-in for the `rayon` API surface this
//! workspace uses: `ThreadPoolBuilder`/`ThreadPool::install`, and
//! `par_iter()`/`par_chunks()` + `map` + `collect` on slices.
//!
//! Execution model: `install` records the pool's thread count in a
//! thread-local; `collect` fans work items over `std::thread::scope`
//! workers pulling indices from a shared atomic cursor (the same dynamic
//! scheduling rayon's work stealing degenerates to for independent,
//! similarly-sized items). Results are reassembled in input order. A panic
//! in any work item propagates out of `collect`, matching rayon.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    static CURRENT_POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Number of workers `collect` will use in the current context.
fn current_threads() -> usize {
    let n = CURRENT_POOL_THREADS.with(Cell::get);
    if n == 0 {
        default_threads()
    } else {
        n
    }
}

/// Error from [`ThreadPoolBuilder::build`]; the vendored pool cannot
/// actually fail to build, the type exists for signature compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A logical pool: just a thread-count context for `install`ed closures
/// (workers are spawned per `collect`, scoped, and joined eagerly).
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count as the parallelism context.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let prev = CURRENT_POOL_THREADS.with(|c| c.replace(self.threads));
        let result = op();
        CURRENT_POOL_THREADS.with(|c| c.set(prev));
        result
    }

    /// The configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Fresh builder (defaults to the machine's parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (`0` = machine default).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in the vendored implementation; `Result` kept for
    /// signature compatibility with rayon.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.threads {
            Some(0) | None => default_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { threads })
    }
}

/// Runs `f` over `0..len` items on the current pool, gathering
/// `(index, output)` pairs and restoring input order.
fn run_indexed<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = current_threads().clamp(1, len.max(1));
    if workers <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut gathered: Vec<(usize, U)> = Vec::with_capacity(len);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        mine.push((i, f(i)));
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(mine) => gathered.extend(mine),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    gathered.sort_by_key(|&(i, _)| i);
    gathered.into_iter().map(|(_, u)| u).collect()
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item through `f` (runs at `collect`).
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// Mapped parallel iterator, ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Executes the map over the current pool and collects in input order.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
        C: FromIterator<U>,
    {
        let items = self.items;
        let f = &self.f;
        run_indexed(items.len(), |i| f(&items[i]))
            .into_iter()
            .collect()
    }
}

/// Parallel iterator over contiguous chunks of a slice.
pub struct ParChunks<'a, T> {
    items: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Maps each chunk through `f` (runs at `collect`).
    pub fn map<U, F>(self, f: F) -> ParChunksMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a [T]) -> U + Sync,
    {
        ParChunksMap {
            items: self.items,
            chunk: self.chunk,
            f,
        }
    }
}

/// Mapped chunk iterator, ready to collect.
pub struct ParChunksMap<'a, T, F> {
    items: &'a [T],
    chunk: usize,
    f: F,
}

impl<'a, T: Sync, F> ParChunksMap<'a, T, F> {
    /// Executes the map over the current pool and collects in input order.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(&'a [T]) -> U + Sync,
        C: FromIterator<U>,
    {
        let items = self.items;
        let chunk = self.chunk.max(1);
        let n_chunks = items.len().div_ceil(chunk);
        let f = &self.f;
        run_indexed(n_chunks, |i| {
            let start = i * chunk;
            let end = (start + chunk).min(items.len());
            f(&items[start..end])
        })
        .into_iter()
        .collect()
    }
}

/// Entry points for slice parallelism, imported via the prelude.
pub trait ParallelSlice<T: Sync> {
    /// Parallel per-item iterator.
    fn par_iter(&self) -> ParIter<'_, T>;

    /// Parallel iterator over `chunk_size`-sized contiguous chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        ParChunks {
            items: self,
            chunk: chunk_size,
        }
    }
}

/// The rayon-style glob-import module.
pub mod prelude {
    pub use crate::ParallelSlice;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let doubled: Vec<u64> = pool.install(|| xs.par_iter().map(|x| x * 2).collect());
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_cover_everything_in_order() {
        let xs: Vec<u32> = (0..103).collect();
        let sums: Vec<u32> = xs.par_chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 11);
        let total: u32 = sums.iter().sum();
        assert_eq!(total, (0..103).sum());
    }

    #[test]
    fn collect_into_result_short_circuits_on_err_value() {
        let xs: Vec<u32> = (0..50).collect();
        let mapped: Vec<Result<u32, String>> = xs
            .par_iter()
            .map(|&x| {
                if x == 33 {
                    Err("boom".to_owned())
                } else {
                    Ok(x)
                }
            })
            .collect();
        let r: Result<Vec<u32>, String> = mapped.into_iter().collect();
        assert_eq!(r.unwrap_err(), "boom");
    }

    #[test]
    fn panics_propagate_out_of_collect() {
        let xs: Vec<u32> = (0..64).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Vec<u32> = pool.install(|| {
                xs.par_iter()
                    .map(|&x| {
                        assert!(x != 40, "injected");
                        x
                    })
                    .collect()
            });
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| assert_eq!(super::current_threads(), 3));
    }
}
