//! Vendored `#[derive(Serialize, Deserialize)]` for the minimal serde
//! facade in `vendor/serde`.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build has
//! no `syn`/`quote`), covering exactly the shapes this workspace derives:
//! named structs, tuple/newtype structs, unit structs, and enums with unit,
//! newtype, tuple and struct variants; plain type generics (`Foo<V>`); and
//! the `#[serde(skip)]` field attribute (omitted on serialize, rebuilt via
//! `Default` on deserialize). Encoding matches serde's defaults: maps for
//! named fields, transparent newtypes, externally tagged enums.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String, // field name, or index as string for tuple fields
    skip: bool,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Named(Vec<Field>),
    Tuple(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    /// Generic parameters verbatim, e.g. `["'a", "V"]`.
    params: Vec<String>,
    kind: Kind,
}

// ---------- token-level parsing ----------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Consumes a run of `#[...]` attributes; reports whether any of them
    /// was `#[serde(skip)]` (or `skip_serializing`/`skip_deserializing`,
    /// treated identically here since we always control both sides).
    fn eat_attrs(&mut self) -> bool {
        let mut skip = false;
        while self.eat_punct('#') {
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let mut inner = g.stream().into_iter();
                    if let Some(TokenTree::Ident(name)) = inner.next() {
                        if name.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.next() {
                                let text = args.stream().to_string();
                                if text.split(',').any(|a| a.trim().starts_with("skip")) {
                                    skip = true;
                                }
                            }
                        }
                    }
                }
                _ => panic!("serde_derive: malformed attribute"),
            }
        }
        skip
    }

    /// Consumes `pub`, `pub(...)` if present.
    fn eat_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Consumes `<...>` generics, returning each parameter verbatim
    /// (lifetimes keep their tick, type params are bare idents; bounds and
    /// defaults are stripped).
    fn eat_generics(&mut self) -> Vec<String> {
        if !self.eat_punct('<') {
            return Vec::new();
        }
        let mut params = Vec::new();
        let mut depth = 1usize;
        let mut current = String::new();
        let mut in_bound_or_default = false;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            if !current.is_empty() {
                                params.push(current);
                            }
                            return params;
                        }
                    }
                    ',' if depth == 1 => {
                        if !current.is_empty() {
                            params.push(std::mem::take(&mut current));
                        }
                        in_bound_or_default = false;
                        continue;
                    }
                    ':' | '=' if depth == 1 => {
                        in_bound_or_default = true;
                        continue;
                    }
                    '\'' if depth == 1 && !in_bound_or_default => {
                        current.push('\'');
                        continue;
                    }
                    _ => {}
                }
            }
            if depth == 1 && !in_bound_or_default {
                if let TokenTree::Ident(i) = &t {
                    current.push_str(&i.to_string());
                }
            }
        }
        panic!("serde_derive: unterminated generics");
    }

    /// Skips tokens until a top-level `,` (consumed) or end of stream,
    /// tracking `<...>` depth so type arguments don't terminate the field.
    fn skip_type_until_comma(&mut self) {
        let mut angle = 0usize;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle = angle.saturating_sub(1),
                    ',' if angle == 0 => {
                        self.pos += 1;
                        return;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let skip = c.eat_attrs();
        if c.peek().is_none() {
            break;
        }
        c.eat_visibility();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        assert!(
            c.eat_punct(':'),
            "serde_derive: expected `:` after field name"
        );
        c.skip_type_until_comma();
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_tuple_fields(group: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    let mut idx = 0usize;
    while c.peek().is_some() {
        let skip = c.eat_attrs();
        if c.peek().is_none() {
            break;
        }
        c.eat_visibility();
        c.skip_type_until_comma();
        fields.push(Field {
            name: idx.to_string(),
            skip,
        });
        idx += 1;
    }
    fields
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(group);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.eat_attrs(); // e.g. #[default], doc comments
        if c.peek().is_none() {
            break;
        }
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.pos += 1;
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = parse_tuple_fields(g.stream());
                c.pos += 1;
                Shape::Tuple(fields)
            }
            _ => Shape::Unit,
        };
        // optional discriminant `= expr`
        if c.eat_punct('=') {
            c.skip_type_until_comma();
        } else {
            c.eat_punct(',');
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut c = Cursor::new(input);
    c.eat_attrs();
    c.eat_visibility();
    let kind_word = loop {
        match c.next() {
            Some(TokenTree::Ident(i)) => {
                let w = i.to_string();
                if w == "struct" || w == "enum" {
                    break w;
                }
                // e.g. `union` unsupported; other idents (none expected) skipped
            }
            Some(_) => continue,
            None => panic!("serde_derive: no struct/enum found"),
        }
    };
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    let params = c.eat_generics();
    // skip a possible `where` clause up to the body group / semicolon
    let kind = if kind_word == "struct" {
        loop {
            match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let fields = parse_named_fields(g.stream());
                    break Kind::Struct(Shape::Named(fields));
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let fields = parse_tuple_fields(g.stream());
                    break Kind::Struct(Shape::Tuple(fields));
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                    break Kind::Struct(Shape::Unit);
                }
                Some(_) => {
                    c.pos += 1;
                }
                None => break Kind::Struct(Shape::Unit),
            }
        }
    } else {
        loop {
            match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    break Kind::Enum(parse_variants(g.stream()));
                }
                Some(_) => {
                    c.pos += 1;
                }
                None => panic!("serde_derive: enum without body"),
            }
        }
    };
    Input { name, params, kind }
}

// ---------- code generation ----------

/// `impl<'a, V: ::serde::Serialize> Trait for Name<'a, V>` header pieces.
fn impl_header(input: &Input, bound: &str) -> (String, String) {
    if input.params.is_empty() {
        return (String::new(), String::new());
    }
    let mut impl_params = Vec::new();
    let mut type_args = Vec::new();
    for p in &input.params {
        if p.starts_with('\'') {
            impl_params.push(p.clone());
        } else {
            impl_params.push(format!("{p}: {bound}"));
        }
        type_args.push(p.clone());
    }
    (
        format!("<{}>", impl_params.join(", ")),
        format!("<{}>", type_args.join(", ")),
    )
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let (impl_generics, ty_generics) = impl_header(input, "::serde::Serialize");
    let body = match &input.kind {
        Kind::Struct(Shape::Unit) => "::serde::Content::Null".to_owned(),
        Kind::Struct(Shape::Named(fields)) => {
            let mut s = String::from("::serde::Content::Map(::std::vec![");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "(::std::string::String::from(\"{0}\"), ::serde::Serialize::serialize(&self.{0})),",
                    f.name
                ));
            }
            s.push_str("])");
            s
        }
        Kind::Struct(Shape::Tuple(fields)) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if live.len() == 1 {
                format!("::serde::Serialize::serialize(&self.{})", live[0].name)
            } else {
                let items: Vec<String> = live
                    .iter()
                    .map(|f| format!("::serde::Serialize::serialize(&self.{})", f.name))
                    .collect();
                format!("::serde::Content::Seq(::std::vec![{}])", items.join(","))
            }
        }
        Kind::Enum(variants) => {
            let mut s = String::from("match self {");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => s.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str(::std::string::String::from(\"{vn}\")),"
                    )),
                    Shape::Named(fields) => {
                        let binders: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut entries = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            entries.push_str(&format!(
                                "(::std::string::String::from(\"{0}\"), ::serde::Serialize::serialize({0})),",
                                f.name
                            ));
                        }
                        s.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Content::Map(::std::vec![{entries}]))]),",
                            binds = binders.join(", "),
                        ));
                    }
                    Shape::Tuple(fields) => {
                        let binders: Vec<String> = (0..fields.len())
                            .map(|i| format!("f{i}"))
                            .collect();
                        let inner = if fields.len() == 1 {
                            "::serde::Serialize::serialize(f0)".to_owned()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Content::Seq(::std::vec![{}])", items.join(","))
                        };
                        s.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Content::Map(::std::vec![(::std::string::String::from(\"{vn}\"), {inner})]),",
                            binds = binders.join(", "),
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
             fn serialize(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn named_field_exprs(fields: &[Field], source: &str) -> String {
    let mut s = String::new();
    for f in fields {
        if f.skip {
            s.push_str(&format!("{}: ::core::default::Default::default(),", f.name));
        } else {
            s.push_str(&format!(
                "{0}: ::serde::Deserialize::deserialize({source}.get(\"{0}\").ok_or_else(|| ::serde::DeError::missing_field(\"{0}\"))?)?,",
                f.name
            ));
        }
    }
    s
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let (impl_generics, ty_generics) = impl_header(input, "::serde::Deserialize");
    let body = match &input.kind {
        Kind::Struct(Shape::Unit) => format!("::core::result::Result::Ok({name})"),
        Kind::Struct(Shape::Named(fields)) => {
            format!(
                "if content.as_map().is_none() {{ return ::core::result::Result::Err(::serde::DeError::invalid_type(\"map\", content)); }}\n\
                 ::core::result::Result::Ok({name} {{ {} }})",
                named_field_exprs(fields, "content")
            )
        }
        Kind::Struct(Shape::Tuple(fields)) => {
            let live: Vec<usize> = fields
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.skip)
                .map(|(i, _)| i)
                .collect();
            if live.len() == 1 && fields.len() == 1 {
                format!(
                    "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(content)?))"
                )
            } else {
                let mut s = format!(
                    "let seq = content.as_seq().ok_or_else(|| ::serde::DeError::invalid_type(\"sequence\", content))?;\n\
                     if seq.len() != {} {{ return ::core::result::Result::Err(::serde::DeError::custom(\"tuple struct arity mismatch\")); }}\n",
                    live.len()
                );
                let mut items = Vec::new();
                let mut cursor = 0usize;
                for (i, f) in fields.iter().enumerate() {
                    let _ = i;
                    if f.skip {
                        items.push("::core::default::Default::default()".to_owned());
                    } else {
                        items.push(format!(
                            "::serde::Deserialize::deserialize(&seq[{cursor}])?"
                        ));
                        cursor += 1;
                    }
                }
                s.push_str(&format!(
                    "::core::result::Result::Ok({name}({}))",
                    items.join(",")
                ));
                s
            }
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),"
                    )),
                    Shape::Named(fields) => data_arms.push_str(&format!(
                        "\"{vn}\" => {{\n\
                             if value.as_map().is_none() {{ return ::core::result::Result::Err(::serde::DeError::invalid_type(\"map\", value)); }}\n\
                             ::core::result::Result::Ok({name}::{vn} {{ {} }})\n\
                         }},",
                        named_field_exprs(fields, "value")
                    )),
                    Shape::Tuple(fields) if fields.len() == 1 => data_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(value)?)),"
                    )),
                    Shape::Tuple(fields) => {
                        let items: Vec<String> = (0..fields.len())
                            .map(|i| format!("::serde::Deserialize::deserialize(&seq[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let seq = value.as_seq().ok_or_else(|| ::serde::DeError::invalid_type(\"sequence\", value))?;\n\
                                 if seq.len() != {len} {{ return ::core::result::Result::Err(::serde::DeError::custom(\"variant arity mismatch\")); }}\n\
                                 ::core::result::Result::Ok({name}::{vn}({items}))\n\
                             }},",
                            len = fields.len(),
                            items = items.join(","),
                        ));
                    }
                }
            }
            format!(
                "match content {{\n\
                     ::serde::Content::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::core::result::Result::Err(::serde::DeError::unknown_variant(other)),\n\
                     }},\n\
                     ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                         let (tag, value) = &entries[0];\n\
                         let _ = value;\n\
                         match tag.as_str() {{\n\
                             {data_arms}\n\
                             other => ::core::result::Result::Err(::serde::DeError::unknown_variant(other)),\n\
                         }}\n\
                     }},\n\
                     other => ::core::result::Result::Err(::serde::DeError::invalid_type(\"enum\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
             fn deserialize(content: &::serde::Content) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Derives `::serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `::serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}
