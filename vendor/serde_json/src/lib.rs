//! Vendored minimal JSON backend over the `vendor/serde` facade.
//!
//! Supports exactly what the workspace uses: `to_string`,
//! `to_string_pretty`, `to_vec`, `from_str`, `from_slice`. Numbers are
//! emitted via Rust's shortest-round-trip float formatting, so
//! `to_string` → `from_str` reproduces every finite `f64` bit-exactly;
//! non-finite floats serialize as `null` (serde_json rejects them — no
//! caller here produces them).

use serde::{Content, DeError, Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Value alias (the vendored facade's interchange tree doubles as the
/// JSON value type).
pub type Value = Content;

// ---------- writing ----------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    // ensure the token re-parses as a float, not an integer
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_compact(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, c: &Content, indent: usize) {
    const STEP: &str = "  ";
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serializes to compact JSON.
///
/// # Errors
///
/// Infallible for the supported data model; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, &value.serialize());
    Ok(out)
}

/// Serializes to human-readable JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the supported data model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.serialize(), 0);
    Ok(out)
}

/// Serializes to compact JSON bytes.
///
/// # Errors
///
/// Infallible for the supported data model.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

// ---------- parsing ----------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        if self.depth > MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                self.depth += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
                self.depth -= 1;
                Ok(Content::Seq(items))
            }
            Some(b'{') => {
                self.pos += 1;
                self.depth += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
                self.depth -= 1;
                Ok(Content::Map(entries))
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // advance one UTF-8 char; input came from &str, so this
                    // boundary arithmetic is safe
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("expected number"));
        }
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Syntax errors and data-model mismatches.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::deserialize(&value)?)
}

/// Parses JSON bytes into `T`.
///
/// # Errors
///
/// Invalid UTF-8, syntax errors, and data-model mismatches.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf8: {e}")))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("0.1").unwrap(), 0.1);
        let x = 0.1f64 + 0.2;
        assert_eq!(from_str::<f64>(&to_string(&x).unwrap()).unwrap(), x);
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
        let nested: Vec<Vec<f64>> = vec![vec![1.5], vec![]];
        let back: Vec<Vec<f64>> = from_str(&to_string(&nested).unwrap()).unwrap();
        assert_eq!(back, nested);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = vec![vec![1u32, 2], vec![3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);
    }
}
