//! Vendored, dependency-free benchmark harness exposing the `criterion`
//! surface this workspace's benches use: `criterion_group!`/
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`/
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the group tuning
//! knobs (`sample_size`, `warm_up_time`, `measurement_time`).
//!
//! No statistics engine: each benchmark is warmed up, then timed over
//! `sample_size` batches within the measurement window; the per-iteration
//! mean and min are printed as a table row. `--test` (the CI smoke mode,
//! `cargo bench -- --test`) runs every body exactly once and prints
//! nothing but a pass marker — identical contract to upstream.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work (same contract as `criterion::black_box`).
pub fn black_box<T>(dummy: T) -> T {
    std::hint::black_box(dummy)
}

/// Identifier for a parameterized benchmark (`name/param`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter display.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter display (inside a named group).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { full: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(full: String) -> Self {
        BenchmarkId { full }
    }
}

/// Per-benchmark timing driver handed to the bench closure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Filled by `iter`: (total iterations, total elapsed).
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `inner` repeatedly; in `--test` mode runs it exactly once.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut inner: R) {
        if self.test_mode {
            black_box(inner());
            self.measured = Some((1, Duration::ZERO));
            return;
        }
        // warm-up: run until the warm-up window elapses
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(inner());
            warm_iters += 1;
        }
        // derive a batch size from warm-up throughput so each sample is
        // long enough to time meaningfully
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let target_sample = self.measurement_time.as_secs_f64() / self.sample_size.max(1) as f64;
        let batch = ((target_sample / per_iter.max(1e-9)).ceil() as u64).max(1);
        let mut total_iters = 0u64;
        let mut total_time = Duration::ZERO;
        let measure_start = Instant::now();
        for _ in 0..self.sample_size.max(1) {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(inner());
            }
            total_time += t0.elapsed();
            total_iters += batch;
            if measure_start.elapsed() > self.measurement_time * 2 {
                break; // runaway benchmark: stop at 2× the window
            }
        }
        self.measured = Some((total_iters, total_time));
    }
}

#[derive(Clone)]
struct GroupConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    config: GroupConfig,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Warm-up window before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Total timing window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    fn run_one<F>(&mut self, id: String, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.config.sample_size,
            warm_up_time: self.config.warm_up_time,
            measurement_time: self.config.measurement_time,
            measured: None,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id);
        if self.criterion.test_mode {
            println!("test {full} ... ok");
            return;
        }
        match b.measured {
            Some((iters, total)) if iters > 0 => {
                let mean_ns = total.as_nanos() as f64 / iters as f64;
                println!("bench {full:<60} {mean_ns:>14.1} ns/iter ({iters} iters)");
            }
            _ => println!("bench {full:<60} (no measurement)"),
        }
    }

    /// Runs one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        self.run_one(id.full, f);
        self
    }

    /// Runs one parameterized benchmark; the closure receives `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.full, |b| f(b, input));
        self
    }

    /// Ends the group (separator line in normal mode).
    pub fn finish(self) {
        if !self.criterion.test_mode {
            println!();
        }
    }
}

/// The harness entry object.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` smoke mode: execute each body once.
        // `--bench` is what cargo passes to harness=false bench targets.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Returns self; upstream reads CLI flags here, the vendored harness
    /// already did in `default()`.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.test_mode {
            println!("group {name}");
        }
        BenchmarkGroup {
            criterion: self,
            name,
            config: GroupConfig::default(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: "bench".to_owned(),
            config: GroupConfig::default(),
        };
        group.bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_body_once() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group.bench_function("once", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        let mut seen = 0usize;
        group.bench_with_input(BenchmarkId::new("param", 42), &42usize, |b, &x| {
            b.iter(|| seen = x)
        });
        group.finish();
        assert_eq!(seen, 42);
    }
}
