//! Vendored, dependency-free stand-in for the `rand` 0.8 API surface this
//! workspace uses: `StdRng` + `SeedableRng::seed_from_u64`, the `Rng`
//! extension trait (`gen`, `gen_range`, `gen_bool`), and
//! `seq::SliceRandom` (`shuffle`, `choose`).
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — not the same
//! stream as upstream rand's ChaCha12, but deterministic, well-mixed, and
//! stable across this workspace's platforms, which is all the seed-driven
//! generators and tests rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`]. The element type `T` is a
/// trait parameter (not an associated type) so that the *use site* of the
/// sampled value drives integer-literal inference, exactly like upstream
/// rand's `SampleRange<T>`.
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, n)` (Lemire-style
/// multiply-shift with rejection on the biased zone).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    loop {
        let x = rng.next_u64();
        let m = x as u128 * n as u128;
        let low = m as u64;
        if low >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_below(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(uniform_below(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive range in gen_range");
        // treat the closed interval as [lo, hi] via the half-open sample
        // nudged to include the top endpoint
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Randomized slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let k = rng.gen_range(3usize..10);
            assert!((3..10).contains(&k));
            let j = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
