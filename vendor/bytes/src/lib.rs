//! Vendored, dependency-free stand-in for the `bytes` crate surface used
//! by the binary dataset persistence: little-endian `get_*`/`put_*`
//! cursors over byte slices (`Buf` for `&[u8]`, `BufMut` for `BytesMut`)
//! and the frozen `Bytes` container.
//!
//! Reads panic when the buffer is too short — identical to upstream
//! `bytes` — so callers must bounds-check with [`Buf::remaining`] first
//! (the persistence layer's `need()` does exactly that).

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Current readable contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copies exactly `dst.len()` bytes out. Panics when short.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write sink for little-endian fields.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Growable byte buffer (append-only subset of `bytes::BytesMut`).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// View of the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Immutable byte container (owned subset of `bytes::Bytes`).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies out into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_round_trip() {
        let mut out = BytesMut::with_capacity(32);
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_f64_le(-1.5);
        out.put_slice(b"xyz");
        let frozen = out.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 2 + 4 + 8 + 8 + 3);
        assert_eq!(cursor.get_u16_le(), 0xBEEF);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cursor.get_f64_le(), -1.5);
        let mut tail = [0u8; 3];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn short_reads_panic() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }
}
