//! Vendored, dependency-free stand-in for the `serde` facade.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small serialization surface it actually uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs/enums plus a JSON backend
//! (`vendor/serde_json`). Instead of serde's visitor architecture, both
//! traits go through a self-describing [`Content`] tree — more allocation
//! per value, but identical observable behavior for the formats and types
//! this workspace touches (externally tagged enums, newtype transparency,
//! `#[serde(skip)]`).

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized value, the interchange model between
/// [`Serialize`]/[`Deserialize`] impls and format backends.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer outside `i64` range (or any unsigned source).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered string-keyed map (JSON object).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map view, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Sequence view, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// First value under `key` in a map.
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error (message-carrying, like `serde::de::Error`).
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Free-form error.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    /// A required field was absent.
    pub fn missing_field(name: &str) -> Self {
        DeError(format!("missing field `{name}`"))
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(tag: &str) -> Self {
        DeError(format!("unknown variant `{tag}`"))
    }

    /// The content kind did not match what the type expected.
    pub fn invalid_type(expected: &str, got: &Content) -> Self {
        let kind = match got {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        };
        DeError(format!("invalid type: expected {expected}, found {kind}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Content`] tree.
pub trait Serialize {
    /// Serializes `self` into the interchange model.
    fn serialize(&self) -> Content;
}

/// Types that can rebuild themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from the interchange model.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or range mismatches.
    fn deserialize(content: &Content) -> Result<Self, DeError>;
}

// ---------- primitive impls ----------

// The interchange model serializes as itself, so callers can hand-build a
// `Content` tree (e.g. to splice extra keys into a derived map) and feed
// it straight to a format backend.
impl Serialize for Content {
    fn serialize(&self) -> Content {
        self.clone()
    }
}

// And it deserializes as itself, so format backends can hand the raw tree
// back to callers that want to inspect optional keys before committing to
// a concrete type (e.g. hand-rolled request parsing).
impl Deserialize for Content {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::invalid_type("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::custom("unsigned value out of signed range"))?,
                    other => return Err(DeError::invalid_type("integer", other)),
                };
                <$t>::try_from(v).map_err(|_| {
                    DeError::custom(format!("{v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                let v: u64 = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) => u64::try_from(*v)
                        .map_err(|_| DeError::custom("negative value for unsigned type"))?,
                    other => return Err(DeError::invalid_type("integer", other)),
                };
                <$t>::try_from(v).map_err(|_| {
                    DeError::custom(format!("{v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            other => Err(DeError::invalid_type("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        f64::deserialize(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::invalid_type("single-char string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(s) => s.iter().map(T::deserialize).collect(),
            other => Err(DeError::invalid_type("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let v = Vec::<T>::deserialize(c)?;
        <[T; N]>::try_from(v)
            .map_err(|v| DeError::custom(format!("expected {N} elements, got {}", v.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                let s = c.as_seq().ok_or_else(|| DeError::invalid_type("tuple", c))?;
                let expected = [$( stringify!($n) ),+].len();
                if s.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected}, got {}", s.len()
                    )));
                }
                Ok(($($t::deserialize(&s[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let m = c.as_map().ok_or_else(|| DeError::invalid_type("map", c))?;
        m.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let m = c.as_map().ok_or_else(|| DeError::invalid_type("map", c))?;
        m.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        T::deserialize(c).map(Box::new)
    }
}

// serde serializes Duration as {"secs": u64, "nanos": u32}; kept
// bit-compatible so persisted metrics stay readable by real serde.
impl Serialize for Duration {
    fn serialize(&self) -> Content {
        Content::Map(vec![
            ("secs".to_owned(), Content::U64(self.as_secs())),
            (
                "nanos".to_owned(),
                Content::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let secs = u64::deserialize(
            c.get("secs")
                .ok_or_else(|| DeError::missing_field("secs"))?,
        )?;
        let nanos = u32::deserialize(
            c.get("nanos")
                .ok_or_else(|| DeError::missing_field("nanos"))?,
        )?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(
            String::deserialize(&"hi".to_owned().serialize()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u8>::deserialize(&vec![1u8, 2, 3].serialize()).unwrap(),
            vec![1, 2, 3]
        );
        let d = Duration::new(3, 500);
        assert_eq!(Duration::deserialize(&d.serialize()).unwrap(), d);
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(u8::deserialize(&Content::U64(300)).is_err());
        assert!(u32::deserialize(&Content::I64(-1)).is_err());
        assert!(bool::deserialize(&Content::Str("true".into())).is_err());
    }
}
