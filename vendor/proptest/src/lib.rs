//! Vendored, dependency-free property-testing harness exposing the
//! `proptest` surface this workspace's tests use: the `proptest!` macro
//! with optional `#![proptest_config(...)]`, `Strategy` + `prop_map`,
//! range and tuple strategies, `any::<T>()`, `collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and panics directly) and deterministic per-test seeding
//! (derived from the test's module path and name, overridable with the
//! `PROPTEST_SEED` environment variable), so failures reproduce exactly
//! under plain `cargo test`.

use std::ops::{Range, RangeInclusive};

/// Deterministic 64-bit generator (xoshiro256++, SplitMix64-seeded) — the
/// entropy source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut state = seed;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`; panics on `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample below 0");
        loop {
            let x = self.next_u64();
            let m = x as u128 * n as u128;
            if (m as u64) >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derives the per-test seed: FNV-1a of the test's identity, overridden by
/// `PROPTEST_SEED` when set (for replaying a run with different entropy).
pub fn rng_for(test_identity: &str) -> TestRng {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = seed.trim().parse::<u64>() {
            return TestRng::seed_from_u64(v);
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_identity.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // finite full-range doubles (non-finite values break most numeric
        // properties and upstream's `any::<f64>()` default also excludes
        // NaN/infinity)
        loop {
            let v = f64::from_bits(rng.next_u64());
            if v.is_finite() {
                return v;
            }
        }
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies; the `From`
    /// impls pin range literals to `usize`, like upstream's `SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.hi - self.len.lo + 1) as u64;
            let n = self.len.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of `element` values with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }
}

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Runner plumbing re-exported under the upstream path.
pub mod test_runner {
    pub use super::ProptestConfig;
}

/// Glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests. Each embedded `fn` runs `cases` times with
/// freshly generated inputs; a failing case panics with its case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }));
                if let ::std::result::Result::Err(payload) = result {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (set PROPTEST_SEED to vary entropy)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2i64..=2, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (1u32..5, 10u32..20).prop_map(|(a, b)| a + b),
            v in crate::collection::vec(0u8..4, 2..6),
        ) {
            prop_assert!((11..25).contains(&pair));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn deterministic_per_identity() {
        let mut a = crate::rng_for("some::test");
        let mut b = crate::rng_for("some::test");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
