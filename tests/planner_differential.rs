//! Differential proof that the adaptive planner never changes results:
//! for every query shape the planner can route — single-source, rare-
//! keyword text-dominated, full-drain (high m × ubiquitous keywords),
//! and the default expansion path — the planner-selected algorithm must
//! return results **bit-identical** to every forced algorithm and to the
//! brute-force oracle.
//!
//! This is the service-facing counterpart of `tests/differential.rs`:
//! that harness proves the four algorithms agree with each other; this
//! one proves the *dispatch layer* on top of them is invisible in the
//! answers, and that the full-drain planner route (which sends high-m /
//! low-selectivity queries to the multi-source shared-frontier drain via
//! the layout-equipped oracle) is covered by real queries.

use uots::core::planner::{AlgorithmKind, Planner};
use uots::prelude::*;
use uots::{
    workload, Dataset, DatasetConfig, KeywordSet, LayoutTables, QueryOptions, QueryResult,
    TrajectoryStore, UotsQuery,
};
use uots_core::algorithms::Algorithm;
use uots_network::generators::{grid_city, GridCityConfig};
use uots_network::NodeId;
use uots_text::KeywordId;
use uots_trajectory::{Sample, Trajectory};

/// Bit-exact result fingerprint: ids in order, every channel's mantissa.
fn fingerprint(r: &QueryResult) -> Vec<(TrajectoryId, u64, u64, u64, u64)> {
    r.matches
        .iter()
        .map(|m| {
            (
                m.id,
                m.similarity.to_bits(),
                m.spatial.to_bits(),
                m.textual.to_bits(),
                m.temporal.to_bits(),
            )
        })
        .collect()
}

/// A store with controlled selectivity over a grid city: keyword 0 tags
/// every trajectory (selectivity 1.0 — ubiquitous), keyword 1 tags only
/// trajectory 0 (rare), keywords 2..6 tag arithmetic subsets. Large
/// enough (300 live) to clear the planner's tiny-dataset oracle rule.
struct Fixture {
    net: uots::RoadNetwork,
    store: TrajectoryStore,
}

fn fixture() -> Fixture {
    let net = grid_city(&GridCityConfig::tiny(22)).unwrap();
    let n = net.num_nodes() as u32;
    let mut store = TrajectoryStore::new();
    for i in 0..300u32 {
        let mut kws = vec![KeywordId(0)];
        if i == 0 {
            kws.push(KeywordId(1));
        }
        for k in 2..7u32 {
            if i % k == 0 {
                kws.push(KeywordId(k));
            }
        }
        let samples = vec![
            Sample {
                node: NodeId(i % n),
                time: f64::from(i % 200) * 60.0,
            },
            Sample {
                node: NodeId((i * 7 + 13) % n),
                time: f64::from(i % 200) * 60.0 + 600.0,
            },
        ];
        store.push(Trajectory::new(samples, KeywordSet::from_ids(kws)).expect("valid trajectory"));
    }
    Fixture { net, store }
}

/// Query shapes spanning every planner branch. Returns (label, query).
fn shaped_queries(net: &uots::RoadNetwork) -> Vec<(&'static str, UotsQuery)> {
    let n = net.num_nodes() as u32;
    let loc = |i: u32| NodeId(i % n);
    let locs = |m: u32| (0..m).map(|i| loc(i * 37 + 5)).collect::<Vec<_>>();
    let q = |locations: Vec<NodeId>, kws: Vec<u32>, lambda: f64, k: usize| {
        UotsQuery::with_options(
            locations,
            KeywordSet::from_ids(kws.into_iter().map(KeywordId)),
            Vec::new(),
            QueryOptions {
                weights: Weights::lambda(lambda).unwrap(),
                k,
                ..QueryOptions::default()
            },
        )
        .expect("valid query")
    };
    vec![
        // m = 1 → single-source baseline route.
        ("single-source", q(locs(1), vec![2, 3], 0.5, 3)),
        // rare keyword, text-dominated λ → text-first route.
        ("rare-text", q(locs(2), vec![1], 0.1, 3)),
        // high m × ubiquitous keyword → the full-drain route
        // (multi-source shared-frontier drain, satellite 3).
        ("full-drain", q(locs(10), vec![0], 0.5, 5)),
        ("full-drain-k1", q(locs(12), vec![0, 2], 0.7, 1)),
        // the default expansion path.
        ("default", q(locs(3), vec![2, 5], 0.5, 3)),
        ("lambda-1", q(locs(4), vec![3], 1.0, 4)),
    ]
}

#[test]
fn planner_routes_cover_every_branch_and_match_all_forced_algorithms() {
    let fx = fixture();
    let vertex_index = fx.store.build_vertex_index(fx.net.num_nodes());
    let keyword_index = fx.store.build_keyword_index(8);
    let layout = LayoutTables::build(&fx.net, &fx.store, 8);
    let db = Database::new(&fx.net, &fx.store, &vertex_index)
        .with_keyword_index(&keyword_index)
        .with_layout(&layout);

    let planner = Planner::new();
    let mut reasons = std::collections::BTreeSet::new();
    for (label, q) in shaped_queries(&fx.net) {
        let decision = planner.decide(&db, &q);
        reasons.insert(decision.reason);
        let planned = planner.run(&db, &q).expect("planner run");
        let want = fingerprint(&planned);
        assert!(!want.is_empty(), "{label}: no matches at all");
        for kind in AlgorithmKind::ALL {
            let forced = Planner::forced(kind).run(&db, &q).expect("forced run");
            assert_eq!(
                want,
                fingerprint(&forced),
                "{label}: planner ({}) vs forced {kind} diverged",
                decision.kind
            );
        }
    }
    // The workload above must actually exercise the routing table, not
    // collapse into one branch.
    for expect in [
        "single-source",
        "rare-keywords-text-dominated",
        "full-drain-shape",
        "default-expansion",
    ] {
        assert!(
            reasons.contains(expect),
            "no query hit the `{expect}` planner branch (hit: {reasons:?})"
        );
    }
}

#[test]
fn planner_matches_forced_on_a_generated_workload() {
    let ds = Dataset::build(&DatasetConfig::small(220, 41)).expect("dataset");
    let db = uots::db(&ds);
    let planner = Planner::new();
    let specs = workload::generate(
        &ds,
        &workload::WorkloadConfig {
            num_queries: 24,
            ..Default::default()
        },
    );
    let mut cases = 0;
    for (i, spec) in specs.into_iter().enumerate() {
        let q = UotsQuery::with_options(
            spec.locations,
            spec.keywords,
            Vec::new(),
            QueryOptions {
                k: 1 + i % 5,
                ..QueryOptions::default()
            },
        )
        .expect("valid query");
        let want = fingerprint(&planner.run(&db, &q).expect("planner run"));
        for kind in AlgorithmKind::ALL {
            let forced = Planner::forced(kind).run(&db, &q).expect("forced run");
            assert_eq!(
                want,
                fingerprint(&forced),
                "q{i}: planner vs forced {kind} diverged"
            );
            cases += 1;
        }
    }
    assert_eq!(cases, 24 * 4);
}
