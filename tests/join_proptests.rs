//! Property tests for the trajectory similarity self-join: on arbitrary
//! random networks, stores and parameters, the two-phase join must return
//! exactly the brute-force pair set with matching similarities.

use proptest::prelude::*;
use uots::join::{ts_join, ts_join_brute, JoinConfig, JoinScheduling};
use uots::network::NetworkBuilder;
use uots::trajectory::{Sample, Trajectory};
use uots::{KeywordSet, NodeId, Point, RoadNetwork, TrajectoryStore};

fn graph(seed: u64, n: usize) -> RoadNetwork {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new();
    let ids: Vec<NodeId> = (0..n)
        .map(|_| b.add_node(Point::new(rng.gen::<f64>() * 8.0, rng.gen::<f64>() * 8.0)))
        .collect();
    for i in 1..n {
        let j = rng.gen_range(0..i);
        b.add_edge(ids[i], ids[j], Some(rng.gen::<f64>() * 2.0 + 0.05))
            .expect("valid edge");
    }
    for _ in 0..n / 2 {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            b.add_edge(ids[i], ids[j], Some(rng.gen::<f64>() * 2.0 + 0.05))
                .expect("valid edge");
        }
    }
    b.build().expect("non-empty")
}

fn store(seed: u64, n_nodes: usize, count: usize) -> TrajectoryStore {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = TrajectoryStore::new();
    for _ in 0..count {
        let len = rng.gen_range(1..6);
        let t0 = rng.gen::<f64>() * 80_000.0;
        let samples = (0..len)
            .map(|i| Sample {
                node: NodeId(rng.gen_range(0..n_nodes) as u32),
                time: (t0 + 45.0 * i as f64).min(86_400.0),
            })
            .collect();
        store.push(Trajectory::new(samples, KeywordSet::empty()).expect("valid"));
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn join_equals_brute_force_on_arbitrary_inputs(
        seed in any::<u64>(),
        n_nodes in 6usize..16,
        count in 2usize..18,
        theta in 0.3f64..0.95,
        lambda in 0.0f64..=1.0,
        min_radius in any::<bool>(),
    ) {
        let net = graph(seed, n_nodes);
        let st = store(seed ^ 1, n_nodes, count);
        let vidx = st.build_vertex_index(net.num_nodes());
        let tidx = st.build_timestamp_index();
        let cfg = JoinConfig {
            theta,
            lambda,
            scheduling: if min_radius {
                JoinScheduling::MinRadius
            } else {
                JoinScheduling::RoundRobin
            },
            ..Default::default()
        };
        let fast = ts_join(&net, &st, &vidx, &tidx, &cfg, 1).expect("join runs");
        let brute = ts_join_brute(&net, &st, &cfg).expect("brute runs");
        prop_assert_eq!(
            fast.pairs.len(),
            brute.len(),
            "θ={} λ={}: {:?} vs {:?}",
            theta,
            lambda,
            fast.pairs,
            brute
        );
        for (f, b) in fast.pairs.iter().zip(brute.iter()) {
            prop_assert_eq!((f.a, f.b), (b.a, b.b));
            prop_assert!((f.similarity - b.similarity).abs() < 1e-9);
            prop_assert!(f.similarity >= theta);
        }
    }

    #[test]
    fn join_pairs_are_canonical_and_deduplicated(
        seed in any::<u64>(),
        theta in 0.4f64..0.9,
    ) {
        let net = graph(seed, 10);
        let st = store(seed ^ 2, 10, 12);
        let vidx = st.build_vertex_index(net.num_nodes());
        let tidx = st.build_timestamp_index();
        let cfg = JoinConfig { theta, ..Default::default() };
        let result = ts_join(&net, &st, &vidx, &tidx, &cfg, 2).expect("join runs");
        let mut seen = std::collections::HashSet::new();
        for p in &result.pairs {
            prop_assert!(p.a < p.b, "pairs must be canonical: {:?}", p);
            prop_assert!(seen.insert((p.a, p.b)), "duplicate pair {:?}", p);
        }
    }
}
