//! Cross-crate integration tests: the full pipeline from dataset generation
//! through indexing to query answering, exercised through the public facade.

use uots::prelude::*;
use uots::{order, parallel, TrajectoryStore};

fn build(trips: usize, seed: u64) -> Dataset {
    Dataset::build(&DatasetConfig::small(trips, seed)).expect("dataset builds")
}

#[test]
fn full_pipeline_all_algorithms_agree() {
    let ds = build(120, 1);
    let tidx = ds.store.build_timestamp_index();
    let db = uots::db(&ds).with_timestamp_index(&tidx);
    let specs = workload::generate(
        &ds,
        &workload::WorkloadConfig {
            num_queries: 6,
            locations_per_query: 4,
            keywords_per_query: 3,
            seed: 5,
            ..Default::default()
        },
    );
    let algos: Vec<Box<dyn Algorithm>> = vec![
        Box::new(BruteForce),
        Box::new(TextFirst),
        Box::new(IknnBaseline::default()),
        Box::new(Expansion::default()),
    ];
    for spec in specs {
        for k in [1usize, 3, 7] {
            let q = UotsQuery::with_options(
                spec.locations.clone(),
                spec.keywords.clone(),
                vec![],
                QueryOptions {
                    k,
                    ..Default::default()
                },
            )
            .expect("valid query");
            let oracle = BruteForce.run(&db, &q).expect("oracle runs");
            for a in &algos {
                let got = a.run(&db, &q).expect("algorithm runs");
                assert_eq!(got.ids(), oracle.ids(), "{} k={k}", a.name());
            }
        }
    }
}

#[test]
fn facade_helper_wires_keyword_index() {
    let ds = build(50, 2);
    let db = uots::db(&ds);
    // TextFirst requires the keyword index, so this proves it is attached
    let spec = &workload::generate(&ds, &workload::WorkloadConfig::default())[0];
    let q = UotsQuery::new(spec.locations.clone(), spec.keywords.clone()).expect("valid");
    assert!(TextFirst.run(&db, &q).is_ok());
}

#[test]
fn results_serialize_and_deserialize() {
    let ds = build(40, 3);
    let db = uots::db(&ds);
    let spec = &workload::generate(&ds, &workload::WorkloadConfig::default())[0];
    let q = UotsQuery::new(spec.locations.clone(), spec.keywords.clone()).expect("valid");
    let r = Expansion::default().run(&db, &q).expect("runs");
    let json = serde_json::to_string(&r).expect("serializes");
    let back: QueryResult = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(r.ids(), back.ids());
    assert_eq!(
        r.metrics.visited_trajectories,
        back.metrics.visited_trajectories
    );
}

#[test]
fn batch_execution_is_deterministic_across_thread_counts() {
    let ds = build(100, 4);
    let db = uots::db(&ds);
    let queries: Vec<UotsQuery> = workload::generate(
        &ds,
        &workload::WorkloadConfig {
            num_queries: 10,
            seed: 17,
            ..Default::default()
        },
    )
    .into_iter()
    .map(|s| UotsQuery::new(s.locations, s.keywords).expect("valid"))
    .collect();
    let algo = Expansion::default();
    let r1 = parallel::run_batch(&db, &algo, &queries, 1).expect("runs");
    let r3 = parallel::run_batch(&db, &algo, &queries, 3).expect("runs");
    for (a, b) in r1.iter().zip(r3.iter()) {
        assert_eq!(a.ids(), b.ids());
    }
}

#[test]
fn order_reranking_preserves_the_match_set() {
    let ds = build(80, 5);
    let db = uots::db(&ds);
    let spec = &workload::generate(&ds, &workload::WorkloadConfig::default())[0];
    let q = UotsQuery::with_options(
        spec.locations.clone(),
        spec.keywords.clone(),
        vec![],
        QueryOptions {
            k: 5,
            ..Default::default()
        },
    )
    .expect("valid");
    let mut r = Expansion::default().run(&db, &q).expect("runs");
    let mut before: Vec<TrajectoryId> = r.ids();
    before.sort_unstable();
    order::rerank_by_order(&db, &q, &mut r, 0.4);
    let mut after: Vec<TrajectoryId> = r.ids();
    after.sort_unstable();
    assert_eq!(before, after, "re-ranking must permute, not alter, the set");
    assert!(r.is_ranked() || !r.matches.is_empty());
}

#[test]
fn network_round_trips_through_edge_list_and_queries_still_work() {
    let ds = build(30, 6);
    let text = uots::network::io::to_edge_list(&ds.network);
    let net2 = uots::network::io::parse_edge_list(&text).expect("parses");
    assert_eq!(ds.network, net2);
    // rebuild the database against the re-parsed network
    let vidx = ds.store.build_vertex_index(net2.num_nodes());
    let db = Database::new(&net2, &ds.store, &vidx);
    let spec = &workload::generate(&ds, &workload::WorkloadConfig::default())[0];
    let q = UotsQuery::new(spec.locations.clone(), spec.keywords.clone()).expect("valid");
    assert!(Expansion::default().run(&db, &q).is_ok());
}

#[test]
fn gps_ingestion_pipeline_feeds_queries() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uots::network::astar::AStar;
    use uots::trajectory::mapmatch::{map_match, simulate_gps};
    use uots::trajectory::{TagModelConfig, TagSampler};

    let ds = build(1, 7); // reuse its network only
    let grid = uots::index::GridIndex::build(ds.network.points(), 8);
    let mut rng = StdRng::seed_from_u64(9);
    let (tags, vocab) = TagSampler::synthetic(&TagModelConfig::default(), &mut rng);
    let mut store = TrajectoryStore::new();
    let mut astar = AStar::new(&ds.network);
    for i in 0..20u32 {
        let a = NodeId(i * 13 % ds.network.num_nodes() as u32);
        let b = NodeId((i * 31 + 200) % ds.network.num_nodes() as u32);
        if a == b {
            continue;
        }
        let route = astar.route(a, b).expect("connected");
        if route.path.len() < 2 {
            continue;
        }
        let fixes = simulate_gps(
            &ds.network,
            &route.path,
            3_600.0,
            30.0,
            10.0,
            0.02,
            &mut rng,
        );
        let kws = tags.sample_tags(0, 3, &mut rng);
        store.push(map_match(&fixes, &grid, kws).expect("matches"));
    }
    assert!(store.len() >= 15);
    let vidx = store.build_vertex_index(ds.network.num_nodes());
    let kidx = store.build_keyword_index(vocab.len());
    let db = Database::new(&ds.network, &store, &vidx).with_keyword_index(&kidx);
    let mut rng2 = StdRng::seed_from_u64(11);
    let kws = tags.sample_tags(0, 2, &mut rng2);
    let q = UotsQuery::new(vec![NodeId(0), NodeId(400)], kws).expect("valid");
    let r = Expansion::default().run(&db, &q).expect("runs");
    let oracle = BruteForce.run(&db, &q).expect("runs");
    assert_eq!(r.ids(), oracle.ids());
}

#[test]
fn stats_and_metrics_are_consistent() {
    let ds = build(60, 8);
    let db = uots::db(&ds);
    let stats = ds.stats();
    assert_eq!(stats.count, 60);
    let spec = &workload::generate(&ds, &workload::WorkloadConfig::default())[0];
    let q = UotsQuery::new(spec.locations.clone(), spec.keywords.clone()).expect("valid");
    let r = Expansion::default().run(&db, &q).expect("runs");
    assert!(r.metrics.visited_trajectories <= stats.count);
    assert!(r.metrics.candidates <= r.metrics.visited_trajectories);
    assert!(r.metrics.candidate_ratio(stats.count) <= 1.0);
}
