//! Crash-recovery differential suite for the durability layer.
//!
//! The property under test: **recovery rebuilds exactly the durable
//! prefix**. For a WAL cut at *any* byte — every record boundary, torn
//! mid-record writes, flipped bits — [`recover`] must produce an
//! [`EpochManager`] whose snapshot answers queries bit-identically to a
//! from-scratch rebuild of the mutations that were durable before the
//! cut, for all four algorithms plus the brute-force oracle. Checkpoints
//! only shorten replay; they must never change answers, and corrupt
//! checkpoints must fall back (older checkpoint, then base dataset)
//! rather than fail.
//!
//! Seeds are fixed: CI reproduces these exact crash points.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use uots::core::testing::corrupt;
use uots::core::wal::{self, FsyncPolicy, WalConfig, WalWriter};
use uots::datagen::persist::{self, Checkpoint};
use uots::durable::{recover, DurableError, DurableIngest, RecoverySource};
use uots::prelude::*;
use uots::{
    EpochSnapshot, KeywordSet, LiveSet, Mutation, QueryResult, Sample, Trajectory, TrajectoryStore,
};
use uots_core::algorithms::{BruteForce, Expansion, IknnBaseline, TextFirst};
use uots_text::KeywordId;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("uots_wal_recovery")
        .join(format!("{name}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Bit-exact result fingerprint (ids + every similarity channel).
fn fingerprint(r: &QueryResult) -> Vec<(TrajectoryId, u64, u64, u64, u64)> {
    r.matches
        .iter()
        .map(|m| {
            (
                m.id,
                m.similarity.to_bits(),
                m.spatial.to_bits(),
                m.textual.to_bits(),
                m.temporal.to_bits(),
            )
        })
        .collect()
}

fn lineup() -> Vec<(&'static str, Box<dyn Algorithm>)> {
    vec![
        ("expansion", Box::new(Expansion::default())),
        (
            "expansion-rr",
            Box::new(Expansion::new(Scheduler::RoundRobin)),
        ),
        (
            "iknn-baseline",
            Box::new(IknnBaseline {
                settles_per_round: 5,
            }),
        ),
        ("text-first", Box::new(TextFirst)),
    ]
}

fn random_traj(rng: &mut StdRng, n: usize, vocab_len: usize) -> Trajectory {
    let len = rng.gen_range(1..6);
    let t0 = rng.gen::<f64>() * 80_000.0;
    let samples: Vec<Sample> = (0..len)
        .map(|i| Sample {
            node: NodeId(rng.gen_range(0..n) as u32),
            time: (t0 + 30.0 * i as f64).min(86_400.0),
        })
        .collect();
    let tags: Vec<KeywordId> = (0..rng.gen_range(0..4))
        .map(|_| KeywordId(rng.gen_range(0..vocab_len.min(12)) as u32))
        .collect();
    Trajectory::new(samples, KeywordSet::from_ids(tags)).expect("valid trajectory")
}

fn random_query(rng: &mut StdRng, n: usize, vocab_len: usize) -> UotsQuery {
    let m = rng.gen_range(1..4);
    let locations: Vec<NodeId> = (0..m).map(|_| NodeId(rng.gen_range(0..n) as u32)).collect();
    let kws: Vec<KeywordId> = (0..rng.gen_range(0..4))
        .map(|_| KeywordId(rng.gen_range(0..vocab_len.min(12)) as u32))
        .collect();
    UotsQuery::with_options(
        locations,
        KeywordSet::from_ids(kws),
        vec![],
        QueryOptions {
            weights: Weights::lambda(0.5).expect("valid lambda"),
            k: 4,
            ..Default::default()
        },
    )
    .expect("valid query")
}

/// The scripted workload: `batches` mutation batches over `ds`, with
/// retires always referencing ids that exist in every prefix containing
/// them (ids only grow, so prefix-consistency holds by construction).
fn scripted_batches(ds: &Dataset, batches: usize, seed: u64) -> Vec<Vec<Mutation>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = ds.network.num_nodes();
    let vocab_len = ds.vocab.len();
    let mut next_id = ds.store.len();
    let mut out = Vec::new();
    for _ in 0..batches {
        let mut batch = Vec::new();
        for _ in 0..rng.gen_range(1..4) {
            if rng.gen_bool(0.7) {
                batch.push(Mutation::Insert(random_traj(&mut rng, n, vocab_len)));
                next_id += 1;
            } else {
                batch.push(Mutation::Retire(TrajectoryId(
                    rng.gen_range(0..next_id) as u32
                )));
            }
        }
        out.push(batch);
    }
    out
}

/// Applies a batch to a plain (store, live) pair — the oracle's notion of
/// what one WAL record means.
fn apply_expected(store: &mut TrajectoryStore, live: &mut LiveSet, batch: &[Mutation]) {
    for m in batch {
        match m {
            Mutation::Insert(t) => {
                store.push(t.clone());
                live.grow_to(store.len());
            }
            Mutation::Retire(id) => {
                live.retire(*id);
            }
        }
    }
}

/// The from-scratch oracle for a durable prefix of `m` batches: base
/// dataset + the first `m` batches applied to plain state.
fn expected_state(ds: &Dataset, batches: &[Vec<Mutation>], m: usize) -> (TrajectoryStore, LiveSet) {
    let mut store = ds.store.clone();
    let mut live = LiveSet::all_live(store.len());
    for batch in &batches[..m] {
        apply_expected(&mut store, &mut live, batch);
    }
    (store, live)
}

/// Asserts `snapshot` answers every query bit-identically to a
/// from-scratch compacted rebuild of its own live subset — the same
/// oracle the live-ingest differential uses, here applied to a
/// *recovered* snapshot.
fn assert_matches_rebuild(
    snapshot: &EpochSnapshot,
    vocab_len: usize,
    queries: &[UotsQuery],
    label: &str,
) {
    let net = snapshot.network();
    let (compacted, id_map) = snapshot.rebuild_compacted();
    let vidx = compacted.build_vertex_index(net.num_nodes());
    let kidx = compacted.build_keyword_index(vocab_len);
    let oracle_db = Database::new(net, &compacted, &vidx).with_keyword_index(&kidx);
    let live_db = snapshot.database();
    for (q_i, q) in queries.iter().enumerate() {
        let want = fingerprint(&BruteForce.run(&oracle_db, q).expect("oracle runs"));
        let map_fp = |r: &QueryResult| -> Vec<(TrajectoryId, u64, u64, u64, u64)> {
            fingerprint(r)
                .into_iter()
                .map(|(id, s, sp, tx, tm)| {
                    let mapped = id_map[id.index()]
                        .unwrap_or_else(|| panic!("{label} q{q_i}: served retired {id}"));
                    (mapped, s, sp, tx, tm)
                })
                .collect()
        };
        for (name, algo) in lineup() {
            let got = algo.run(&live_db, q).expect("recovered run");
            assert_eq!(
                want,
                map_fp(&got),
                "{label} q{q_i}: recovered {name} diverged from rebuild"
            );
        }
        let brute = BruteForce.run(&live_db, q).expect("recovered oracle");
        assert_eq!(
            want,
            map_fp(&brute),
            "{label} q{q_i}: recovered brute force diverged"
        );
    }
}

/// Copies the WAL dir into a fresh crash-scene dir, keeping only WAL
/// segments at-or-before `seg` (later ones never existed at the crash
/// point) and truncating the copy of `seg` itself to `keep` bytes.
/// Checkpoint files are copied untouched.
fn materialize_crash(src: &Path, dst: &Path, seg: &Path, keep: u64) {
    if dst.exists() {
        std::fs::remove_dir_all(dst).unwrap();
    }
    std::fs::create_dir_all(dst).unwrap();
    let seg_name = seg.file_name().unwrap().to_str().unwrap().to_string();
    for entry in std::fs::read_dir(src).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        if name.ends_with(".seg") && name.as_str() > seg_name.as_str() {
            continue;
        }
        std::fs::copy(&path, dst.join(&name)).unwrap();
    }
    corrupt::truncate_file(dst.join(&seg_name), keep).unwrap();
}

/// Runs recovery against a crash scene and checks the full contract for a
/// durable prefix of `m` batches: replay counts, state shape, and
/// bit-identical answers across all algorithms.
#[allow(clippy::too_many_arguments)]
fn check_crash_point(
    scene: &Path,
    ds: &Dataset,
    batches: &[Vec<Mutation>],
    m: usize,
    expect_torn: bool,
    queries: &[UotsQuery],
    label: &str,
) {
    let recovered =
        recover(scene, Some(ds), None).unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
    let report = &recovered.report;
    assert_eq!(
        report.replayed_batches as usize, m,
        "{label}: wrong durable prefix (report: {report:?})"
    );
    assert_eq!(
        report.wal_corruption.is_some(),
        expect_torn,
        "{label}: torn-tail detection mismatch (report: {report:?})"
    );
    let (want_store, want_live) = expected_state(ds, batches, m);
    let snap = recovered.manager.snapshot();
    assert_eq!(snap.store().len(), want_store.len(), "{label}: store len");
    assert_eq!(snap.live(), &want_live, "{label}: liveness mask");
    assert_matches_rebuild(&snap, ds.vocab.len(), queries, label);
}

/// Crash at **every record boundary** and at torn cuts inside every
/// record: recovery must serve exactly the durable prefix, bit-identical
/// to a from-scratch rebuild, for all four algorithms.
#[test]
fn crash_at_every_record_boundary_recovers_durable_prefix() {
    let dir = tmpdir("boundaries");
    let wal_dir = dir.join("wal");
    std::fs::create_dir_all(&wal_dir).unwrap();
    let ds = Dataset::build(&DatasetConfig::small(24, 9)).expect("dataset builds");
    let batches = scripted_batches(&ds, 8, 0xb07);
    let mut rng = StdRng::seed_from_u64(0xc0a7);
    let queries: Vec<UotsQuery> = (0..2)
        .map(|_| random_query(&mut rng, ds.network.num_nodes(), ds.vocab.len()))
        .collect();

    // write the full log once, remembering the byte boundary after the
    // header and after every record — the exhaustive crash-point set
    let mut writer = WalWriter::open(
        &wal_dir,
        WalConfig {
            fsync: FsyncPolicy::Never,
            ..WalConfig::default()
        },
    )
    .expect("wal opens");
    let mut boundaries = vec![writer.position()];
    for batch in &batches {
        writer.append(batch).expect("append");
        boundaries.push(writer.position());
    }
    drop(writer);

    for (m, (seg, offset)) in boundaries.iter().enumerate() {
        // crash exactly on the boundary: m batches durable, clean tail
        let scene = dir.join("scene");
        materialize_crash(&wal_dir, &scene, seg, *offset);
        check_crash_point(
            &scene,
            &ds,
            &batches,
            m,
            false,
            &queries,
            &format!("boundary {m}"),
        );
        // torn cuts inside the next record: still m batches durable, and
        // the tear must be detected and reported
        if m < batches.len() {
            let (next_seg, next_offset) = &boundaries[m + 1];
            let record_len = next_offset - offset;
            for cut in [1, record_len / 2, record_len - 1] {
                if cut == 0 || cut >= record_len {
                    continue;
                }
                materialize_crash(&wal_dir, &scene, next_seg, offset + cut);
                check_crash_point(
                    &scene,
                    &ds,
                    &batches,
                    m,
                    true,
                    &queries,
                    &format!("torn record {m} cut +{cut}"),
                );
            }
        }
    }
}

/// Bit flips cut the log at the damaged record — everything before stays
/// recoverable and correct, everything after is discarded, never applied
/// half-corrupt.
#[test]
fn bit_flips_cut_the_log_at_the_damaged_record() {
    let dir = tmpdir("bitflips");
    let wal_dir = dir.join("wal");
    std::fs::create_dir_all(&wal_dir).unwrap();
    let ds = Dataset::build(&DatasetConfig::small(20, 11)).expect("dataset builds");
    let batches = scripted_batches(&ds, 6, 0x1337);
    let mut rng = StdRng::seed_from_u64(0xb17f);
    let queries: Vec<UotsQuery> = (0..2)
        .map(|_| random_query(&mut rng, ds.network.num_nodes(), ds.vocab.len()))
        .collect();

    let mut writer = WalWriter::open(
        &wal_dir,
        WalConfig {
            fsync: FsyncPolicy::Never,
            ..WalConfig::default()
        },
    )
    .expect("wal opens");
    let mut boundaries = vec![writer.position()];
    for batch in &batches {
        writer.append(batch).expect("append");
        boundaries.push(writer.position());
    }
    drop(writer);
    let seg = boundaries[0].0.clone();

    // flip one payload bit inside each record: the CRC must cut the log
    // exactly there
    for m in 0..batches.len() {
        let record_start = boundaries[m].1;
        let record_end = boundaries[m + 1].1;
        let scene = dir.join("scene");
        materialize_crash(&wal_dir, &scene, &seg, u64::MAX); // full copy
                                                             // a byte inside the payload (skip the 16-byte record header)
        let victim = record_start + 16 + (record_end - record_start - 16) / 2;
        corrupt::flip_bit(scene.join(seg.file_name().unwrap()), victim, 3).unwrap();
        check_crash_point(
            &scene,
            &ds,
            &batches,
            m,
            true,
            &queries,
            &format!("payload flip in record {m}"),
        );
    }

    // flip a bit in the segment magic: nothing is recoverable from the
    // WAL, so recovery falls back to the base dataset alone
    let scene = dir.join("scene");
    materialize_crash(&wal_dir, &scene, &seg, u64::MAX);
    corrupt::flip_bit(scene.join(seg.file_name().unwrap()), 0, 0).unwrap();
    check_crash_point(&scene, &ds, &batches, 0, true, &queries, "magic flip");
}

/// Tiny segments force a rotation per batch; crash points at and inside
/// segment boundaries (including wholly missing later segments) recover
/// the same durable prefix as a single-segment log would.
#[test]
fn segment_rotation_crash_points_recover_cleanly() {
    let dir = tmpdir("rotation");
    let wal_dir = dir.join("wal");
    std::fs::create_dir_all(&wal_dir).unwrap();
    let ds = Dataset::build(&DatasetConfig::small(18, 5)).expect("dataset builds");
    let batches = scripted_batches(&ds, 6, 0x5e65);
    let mut rng = StdRng::seed_from_u64(0x5e65);
    let queries: Vec<UotsQuery> = (0..2)
        .map(|_| random_query(&mut rng, ds.network.num_nodes(), ds.vocab.len()))
        .collect();

    let mut writer = WalWriter::open(
        &wal_dir,
        WalConfig {
            segment_bytes: 1, // rotate after every batch
            fsync: FsyncPolicy::Never,
        },
    )
    .expect("wal opens");
    let mut boundaries = vec![writer.position()];
    for batch in &batches {
        writer.append(batch).expect("append");
        boundaries.push(writer.position());
    }
    drop(writer);
    let segments = wal::list_segments(&wal_dir).expect("list");
    assert!(
        segments.len() >= batches.len(),
        "tiny segment_bytes must rotate per batch: {segments:?}"
    );

    // `position()` after a rotating append points at the fresh header-only
    // segment, so boundaries[m].0 is the segment that *receives* batch m;
    // cut by the on-disk length of that segment instead
    for (m, boundary) in boundaries.iter().take(batches.len()).enumerate() {
        let seg = &boundary.0;
        let full_len = std::fs::metadata(seg).unwrap().len();
        let scene = dir.join("scene");
        // crash right after batch m became durable; the next segment was
        // never created
        materialize_crash(&wal_dir, &scene, seg, full_len);
        check_crash_point(
            &scene,
            &ds,
            &batches,
            m + 1,
            false,
            &queries,
            &format!("rotation boundary after batch {m}"),
        );
        // torn write inside batch m's record: prefix shrinks by one
        materialize_crash(&wal_dir, &scene, seg, full_len - 1);
        check_crash_point(
            &scene,
            &ds,
            &batches,
            m,
            true,
            &queries,
            &format!("rotation torn tail in batch {m}"),
        );
    }
}

/// Checkpoints shorten replay without changing answers; corrupt
/// checkpoints fall back — newest-but-one first, base dataset last —
/// and the fall-back chain is reported.
#[test]
fn checkpoints_shorten_replay_and_corrupt_ones_fall_back() {
    let dir = tmpdir("checkpoints");
    let wal_dir = dir.join("wal");
    std::fs::create_dir_all(&wal_dir).unwrap();
    let ds = Dataset::build(&DatasetConfig::small(22, 7)).expect("dataset builds");
    let batches = scripted_batches(&ds, 8, 0xcafe);
    let mut rng = StdRng::seed_from_u64(0xcafe);
    let queries: Vec<UotsQuery> = (0..2)
        .map(|_| random_query(&mut rng, ds.network.num_nodes(), ds.vocab.len()))
        .collect();

    let mut writer = WalWriter::open(
        &wal_dir,
        WalConfig {
            fsync: FsyncPolicy::Never,
            ..WalConfig::default()
        },
    )
    .expect("wal opens");
    for batch in &batches {
        writer.append(batch).expect("append");
    }
    drop(writer);

    // cut checkpoints at lsn 3 and lsn 6 from the oracle's state
    for lsn in [3u64, 6] {
        let (store, live) = expected_state(&ds, &batches, lsn as usize);
        let ck = Checkpoint {
            network: ds.network.clone(),
            vocab: ds.vocab.clone(),
            store,
            live,
            epoch: lsn, // one publish per batch in this script
            lsn,
        };
        persist::save_checkpoint_file(&ck, wal_dir.join(format!("ckpt-{lsn:020}.uotsck")))
            .expect("checkpoint saves");
    }

    let full = batches.len();
    let all = |label: &str, want_replayed: u64, want_rejected: usize| {
        let recovered = recover(&wal_dir, Some(&ds), None).expect("recovery");
        assert_eq!(
            recovered.report.replayed_batches, want_replayed,
            "{label}: replay length"
        );
        assert_eq!(
            recovered.report.rejected_checkpoints.len(),
            want_rejected,
            "{label}: rejected checkpoints"
        );
        let (want_store, want_live) = expected_state(&ds, &batches, full);
        let snap = recovered.manager.snapshot();
        assert_eq!(snap.store().len(), want_store.len(), "{label}: store len");
        assert_eq!(snap.live(), &want_live, "{label}: liveness mask");
        assert_matches_rebuild(&snap, ds.vocab.len(), &queries, label);
        recovered
    };

    // newest checkpoint (lsn 6) wins: only 2 batches replayed
    let r = all("both checkpoints valid", (full as u64) - 6, 0);
    assert!(
        matches!(&r.report.source, RecoverySource::Checkpoint(p) if p.to_string_lossy().contains("006")
            || p.to_string_lossy().contains("0006")),
        "should recover from the lsn-6 checkpoint: {:?}",
        r.report.source
    );

    // corrupt the newest: falls back to lsn 3, replays 5, reports the reject
    corrupt::flip_bit(wal_dir.join(format!("ckpt-{:020}.uotsck", 6)), 40, 2).unwrap();
    let r = all("newest checkpoint corrupt", (full as u64) - 3, 1);
    assert!(matches!(&r.report.source, RecoverySource::Checkpoint(_)));

    // corrupt both: base dataset fallback, full replay, both rejects listed
    corrupt::truncate_file(wal_dir.join(format!("ckpt-{:020}.uotsck", 3)), 10).unwrap();
    let r = all("all checkpoints corrupt", full as u64, 2);
    assert_eq!(r.report.source, RecoverySource::BaseDataset);
}

/// Once `prune_segments` has deleted log covered by the newest checkpoint,
/// older checkpoints are no longer valid recovery bases: the surviving
/// tail starts past the LSNs they'd need replayed. Recovery must reject
/// such a fallback (and the base-dataset arm) rather than splice the tail
/// onto a state missing the pruned range — which would assign wrong dense
/// [`TrajectoryId`]s silently.
#[test]
fn pruned_log_rejects_gapped_checkpoint_fallback() {
    let dir = tmpdir("gapped");
    let wal_dir = dir.join("wal");
    std::fs::create_dir_all(&wal_dir).unwrap();
    let ds = Dataset::build(&DatasetConfig::small(22, 7)).expect("dataset builds");
    let batches = scripted_batches(&ds, 8, 0xfa11);

    let mut writer = WalWriter::open(
        &wal_dir,
        WalConfig {
            fsync: FsyncPolicy::Never,
            segment_bytes: 1, // rotate after every batch: one LSN per segment
        },
    )
    .expect("wal opens");
    for batch in &batches {
        writer.append(batch).expect("append");
    }
    drop(writer);

    for lsn in [3u64, 6] {
        let (store, live) = expected_state(&ds, &batches, lsn as usize);
        let ck = Checkpoint {
            network: ds.network.clone(),
            vocab: ds.vocab.clone(),
            store,
            live,
            epoch: lsn,
            lsn,
        };
        persist::save_checkpoint_file(&ck, wal_dir.join(format!("ckpt-{lsn:020}.uotsck")))
            .expect("checkpoint saves");
    }
    // prune against the newest checkpoint: segments for lsns 1..=6 go,
    // the surviving tail starts at lsn 7
    let pruned = wal::prune_segments(&wal_dir, 6).expect("prune");
    assert_eq!(pruned, 6, "one segment per lsn");

    // with the lsn-6 checkpoint intact the tail is contiguous and recovery
    // reproduces the full state
    let recovered = recover(&wal_dir, Some(&ds), None).expect("recovery");
    assert_eq!(recovered.report.replayed_batches, 2);
    let (want_store, want_live) = expected_state(&ds, &batches, batches.len());
    let snap = recovered.manager.snapshot();
    assert_eq!(snap.store().len(), want_store.len());
    assert_eq!(snap.live(), &want_live);

    // corrupt it: the lsn-3 checkpoint would need lsns 4..=6 replayed but
    // they are gone, and the base dataset would need 1..=6 — both gapped.
    // Recovery must refuse, not silently skip the pruned range.
    corrupt::flip_bit(wal_dir.join(format!("ckpt-{:020}.uotsck", 6)), 40, 2).unwrap();
    match recover(&wal_dir, Some(&ds), None) {
        Err(DurableError::Inconsistent(msg)) => {
            assert!(msg.contains("pruned"), "{msg}")
        }
        Err(e) => panic!("want Inconsistent, got {e}"),
        Ok(_) => panic!("gapped fallback must be rejected"),
    }
}

/// End-to-end through [`DurableIngest`]: the write path cuts checkpoints
/// on cadence, prunes covered segments, and a recovery of the directory
/// reproduces the exact final state — then resumes writing.
#[test]
fn durable_ingest_round_trip_with_checkpoint_cadence() {
    let dir = tmpdir("e2e");
    let wal_dir = dir.join("wal");
    std::fs::create_dir_all(&wal_dir).unwrap();
    let ds = Dataset::build(&DatasetConfig::small(20, 3)).expect("dataset builds");
    let batches = scripted_batches(&ds, 9, 0xe2e);
    let mut rng = StdRng::seed_from_u64(0xe2e);
    let queries: Vec<UotsQuery> = (0..2)
        .map(|_| random_query(&mut rng, ds.network.num_nodes(), ds.vocab.len()))
        .collect();

    let mut ingest = DurableIngest::create(
        Arc::new(ds.network.clone()),
        ds.store.clone(),
        ds.vocab.clone(),
        &wal_dir,
        WalConfig {
            fsync: FsyncPolicy::EveryBatch,
            ..WalConfig::default()
        },
        Some(2), // checkpoint every second batch (at publish boundaries)
        None,
    )
    .expect("durable ingest opens");
    for (i, batch) in batches.iter().enumerate() {
        ingest.apply(batch.clone()).expect("apply");
        if i % 3 == 2 {
            ingest.publish().expect("publish");
        }
    }
    let live_snap = ingest.checkpoint_now().expect("final checkpoint");
    assert!(
        ingest.last_checkpoint_lsn() == batches.len() as u64,
        "final checkpoint must cover the whole log"
    );
    drop(ingest); // crash: no clean shutdown beyond what's already durable

    let recovered = recover(&wal_dir, Some(&ds), None).expect("recovery");
    assert!(
        matches!(recovered.report.source, RecoverySource::Checkpoint(_)),
        "cadence must have produced checkpoints: {:?}",
        recovered.report
    );
    assert_eq!(
        recovered.report.replayed_batches, 0,
        "final checkpoint covers everything"
    );
    let snap = recovered.manager.snapshot();
    assert_eq!(snap.live(), live_snap.live());
    assert_eq!(snap.epoch(), live_snap.epoch());
    assert_matches_rebuild(&snap, ds.vocab.len(), &queries, "e2e");

    // the recovered manager is a working write path: resume and publish
    let resumed = DurableIngest::resume(recovered, &wal_dir, WalConfig::default(), None, None);
    let mut resumed = resumed.expect("resume");
    let id = resumed
        .ingest(random_traj(
            &mut rng,
            ds.network.num_nodes(),
            ds.vocab.len(),
        ))
        .expect("resumed ingest");
    assert_eq!(id.index(), snap.store().len());
    let after = resumed.publish().expect("resumed publish");
    assert!(after.live().is_live(id));
}
