//! Workspace-level property tests on the core invariants:
//!
//! * shortest-path primitives agree with the Floyd–Warshall oracle;
//! * the incremental expansion realizes exact first-hit distances in
//!   nondecreasing order;
//! * the UOTS algorithms return the brute-force ranking for *arbitrary*
//!   datasets, queries and parameters — the paper's correctness claim;
//! * textual similarity axioms;
//! * grid-index nearest-neighbour equals linear scan;
//! * top-k equals sort-and-truncate.

use proptest::prelude::*;
use uots::core::TopK;
use uots::index::GridIndex;
use uots::network::expansion::NetworkExpansion;
use uots::network::matrix::DistanceMatrix;
use uots::network::{dijkstra, NetworkBuilder};
use uots::prelude::*;
use uots::text::{KeywordId, TextSimilarity};
use uots::trajectory::{Sample, Trajectory};
use uots::{RoadNetwork, TrajectoryStore};

// ---------- strategies ----------

/// A connected random graph: `n` jittered points, spanning tree + extras.
fn graph_strategy(max_n: usize) -> impl Strategy<Value = RoadNetwork> {
    (3usize..max_n, any::<u64>()).prop_map(|(n, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = NetworkBuilder::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|_| b.add_node(Point::new(rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 10.0)))
            .collect();
        for i in 1..n {
            let j = rng.gen_range(0..i);
            b.add_edge(ids[i], ids[j], Some(rng.gen::<f64>() * 4.0 + 0.05))
                .expect("valid edge");
        }
        for _ in 0..n {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i != j {
                b.add_edge(ids[i], ids[j], Some(rng.gen::<f64>() * 4.0 + 0.05))
                    .expect("valid edge");
            }
        }
        b.build().expect("non-empty")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dijkstra_matches_floyd_warshall(net in graph_strategy(24)) {
        let m = DistanceMatrix::compute(&net);
        let src = NodeId(0);
        let tree = dijkstra::shortest_path_tree(&net, src);
        for v in net.node_ids() {
            match (tree.distance(v), m.get(src, v)) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                (a, b) => prop_assert_eq!(a.is_some(), b.is_some()),
            }
        }
    }

    #[test]
    fn expansion_settles_in_order_with_exact_distances(net in graph_strategy(24)) {
        let tree = dijkstra::shortest_path_tree(&net, NodeId(0));
        let mut exp = NetworkExpansion::from_source(&net, NodeId(0));
        let mut last = 0.0f64;
        while let Some(s) = exp.next_settled() {
            prop_assert!(s.dist >= last - 1e-12);
            last = s.dist;
            prop_assert!((tree.distance(s.node).expect("reached") - s.dist).abs() < 1e-12);
        }
    }

    #[test]
    fn astar_matches_dijkstra(net in graph_strategy(20), a in 0u32..20, b in 0u32..20) {
        let n = net.num_nodes() as u32;
        let (a, b) = (NodeId(a % n), NodeId(b % n));
        let expect = dijkstra::distance(&net, a, b);
        let got = uots::network::astar::AStar::new(&net).distance(a, b);
        match (expect, got) {
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
            (x, y) => prop_assert_eq!(x.is_some(), y.is_some()),
        }
    }

    #[test]
    fn jaccard_axioms(
        xs in proptest::collection::vec(0u32..30, 0..10),
        ys in proptest::collection::vec(0u32..30, 0..10),
    ) {
        let a = KeywordSet::from_ids(xs.into_iter().map(KeywordId));
        let b = KeywordSet::from_ids(ys.into_iter().map(KeywordId));
        let ab = TextSimilarity::Jaccard.similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert_eq!(ab, TextSimilarity::Jaccard.similarity(&b, &a));
        prop_assert_eq!(TextSimilarity::Jaccard.similarity(&a, &a), 1.0);
    }

    #[test]
    fn grid_nearest_equals_linear_scan(
        pts in proptest::collection::vec((0.0f64..50.0, 0.0f64..50.0), 1..80),
        qx in -10.0f64..60.0,
        qy in -10.0f64..60.0,
    ) {
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let grid = GridIndex::build(&points, 4);
        let q = Point::new(qx, qy);
        let (_, gd) = grid.nearest(&q);
        let ld = points
            .iter()
            .map(|p| q.distance(p))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((gd - ld).abs() < 1e-9);
    }

    #[test]
    fn topk_equals_sort_and_truncate(
        sims in proptest::collection::vec(0.0f64..1.0, 1..40),
        k in 1usize..10,
    ) {
        let mut topk = TopK::new(k);
        let mut all: Vec<Match> = sims
            .iter()
            .enumerate()
            .map(|(i, &s)| Match {
                id: TrajectoryId(i as u32),
                similarity: s,
                spatial: s,
                textual: 0.0,
                temporal: 0.0,
                order_blend: None,
            })
            .collect();
        for m in &all {
            topk.offer(*m);
        }
        all.sort_by(Match::ranking_cmp);
        all.truncate(k);
        let got = topk.into_sorted();
        prop_assert_eq!(got.len(), all.len());
        for (g, e) in got.iter().zip(all.iter()) {
            prop_assert_eq!(g.id, e.id);
        }
    }
}

proptest! {
    // end-to-end cases are heavier: fewer cases, still randomized
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline property: on arbitrary connected networks, trajectory
    /// stores and query parameters, every algorithm reproduces the
    /// brute-force ranking.
    #[test]
    fn algorithms_match_oracle_on_arbitrary_inputs(
        net in graph_strategy(18),
        seed in any::<u64>(),
        lambda in 0.0f64..=1.0,
        k in 1usize..6,
        m in 1usize..4,
        kws in proptest::collection::vec(0u32..12, 0..4),
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = net.num_nodes();
        let store = {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut store = TrajectoryStore::new();
            for _ in 0..rng.gen_range(1..30) {
                let len = rng.gen_range(1..7);
                let t0 = rng.gen::<f64>() * 80_000.0;
                let samples = (0..len)
                    .map(|i| Sample {
                        node: NodeId(rng.gen_range(0..n) as u32),
                        time: (t0 + 30.0 * i as f64).min(86_400.0),
                    })
                    .collect();
                let tags: Vec<KeywordId> =
                    (0..rng.gen_range(0..4)).map(|_| KeywordId(rng.gen_range(0..12))).collect();
                store.push(
                    Trajectory::new(samples, KeywordSet::from_ids(tags)).expect("valid"),
                );
            }
            store
        };
        let vidx = store.build_vertex_index(n);
        let kidx = store.build_keyword_index(12);
        let db = Database::new(&net, &store, &vidx).with_keyword_index(&kidx);

        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let locations: Vec<NodeId> = (0..m).map(|_| NodeId(rng.gen_range(0..n) as u32)).collect();
        let q = UotsQuery::with_options(
            locations,
            KeywordSet::from_ids(kws.into_iter().map(KeywordId)),
            vec![],
            QueryOptions {
                weights: Weights::lambda(lambda).expect("valid"),
                k,
                ..Default::default()
            },
        )
        .expect("valid query");

        let oracle = BruteForce.run(&db, &q).expect("oracle runs");
        for algo in [
            Box::new(Expansion::default()) as Box<dyn Algorithm>,
            Box::new(Expansion::new(Scheduler::RoundRobin)),
            Box::new(Expansion::new(Scheduler::MinRadius)),
            Box::new(IknnBaseline { settles_per_round: 7 }),
            Box::new(TextFirst),
        ] {
            let got = algo.run(&db, &q).expect("runs");
            prop_assert_eq!(got.ids(), oracle.ids(), "{} λ={} k={}", algo.name(), lambda, k);
            for (g, o) in got.matches.iter().zip(oracle.matches.iter()) {
                prop_assert!((g.similarity - o.similarity).abs() < 1e-9);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The live-ingest invariant the epoch subsystem leans on:
    /// `freeze` after an arbitrary interleaving of inserts and removes is
    /// exactly the CSR index built directly from the surviving postings —
    /// and the mutation return values agree with a set-semantics model.
    #[test]
    fn dynamic_index_freeze_equals_direct_build(
        num_vertices in 1usize..12,
        ops in proptest::collection::vec(
            (0u32..12, 0u32..20, any::<bool>()), 0..120),
    ) {
        use std::collections::BTreeSet;
        use uots::index::{DynamicVertexIndex, VertexInvertedIndex};
        let mut dynamic = DynamicVertexIndex::new(num_vertices);
        let mut surviving: BTreeSet<(u32, u32)> = BTreeSet::new();
        for (v, val, is_insert) in ops {
            let v = v % num_vertices as u32;
            if is_insert {
                let fresh = dynamic.insert(NodeId(v), val);
                prop_assert_eq!(fresh, surviving.insert((v, val)));
            } else {
                let removed = dynamic.remove(NodeId(v), val);
                prop_assert_eq!(removed, surviving.remove(&(v, val)));
            }
        }
        let frozen = dynamic.freeze();
        let direct = VertexInvertedIndex::build(
            num_vertices,
            surviving.iter().map(|&(v, val)| (NodeId(v), val)),
        );
        prop_assert_eq!(frozen.num_postings(), surviving.len());
        for v in 0..num_vertices {
            let v = NodeId(v as u32);
            prop_assert_eq!(frozen.values_at(v), direct.values_at(v));
        }
    }
}
