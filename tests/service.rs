//! End-to-end tests of the query service: concurrent HTTP answers must
//! be bit-identical to direct engine calls against the same epoch,
//! overload must degrade to certified best-effort (or shed with 429) —
//! never a 5xx, never a hang — and `/ingest` must publish epochs that
//! subsequent searches observe.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use serde::{Content, Serialize};
use uots::core::planner::Planner;
use uots::obs::{MetricsRegistry, ObsState};
use uots::prelude::*;
use uots::serve::{QueryService, ServiceConfig};
use uots::{workload, Dataset, DatasetConfig, EpochManager, KeywordSet, QueryOptions, UotsQuery};
use uots_core::algorithms::Algorithm;
use uots_text::KeywordId;
use uots_trajectory::{Sample, Trajectory};

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let code: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (code, body)
}

fn as_u64(c: Option<&Content>) -> Option<u64> {
    match c {
        Some(Content::U64(v)) => Some(*v),
        Some(Content::I64(v)) if *v >= 0 => Some(*v as u64),
        _ => None,
    }
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Content) {
    let (code, text) = http(addr, "POST", path, body);
    let content = serde_json::from_str::<Content>(&text)
        .unwrap_or_else(|e| panic!("non-JSON body for {path} ({code}): {e}\n{text}"));
    (code, content)
}

fn start_service(trips: usize, seed: u64, cfg: ServiceConfig) -> (QueryService, Dataset) {
    let ds = Dataset::build(&DatasetConfig::small(trips, seed)).expect("dataset");
    let registry = MetricsRegistry::new();
    let manager = EpochManager::with_metrics(
        Arc::new(ds.network.clone()),
        ds.store.clone(),
        ds.vocab.len(),
        &registry,
    );
    let obs = ObsState::new().with_registry(registry.clone());
    let service = QueryService::start("127.0.0.1:0", Arc::new(manager), registry, obs, cfg)
        .expect("bind service");
    (service, ds)
}

/// One query's JSON for the wire, from a workload spec.
fn query_json(locations: &[NodeId], keywords: &[KeywordId], lambda: f64, k: usize) -> String {
    let locs: Vec<String> = locations.iter().map(|n| n.0.to_string()).collect();
    let kws: Vec<String> = keywords.iter().map(|k| k.0.to_string()).collect();
    format!(
        r#"{{"locations":[{}],"keywords":[{}],"lambda":{lambda},"k":{k}}}"#,
        locs.join(","),
        kws.join(",")
    )
}

/// Canonicalizes the integer representation: the JSON parser yields
/// `I64` for anything in `i64` range while direct `Serialize` yields
/// `U64` for unsigned sources. The *values* must still match bit-exactly
/// (floats keep their full mantissa through the writer's round-trip
/// format).
fn normalized(c: &Content) -> Content {
    match c {
        Content::U64(v) if *v <= i64::MAX as u64 => Content::I64(*v as i64),
        Content::Seq(items) => Content::Seq(items.iter().map(normalized).collect()),
        Content::Map(entries) => Content::Map(
            entries
                .iter()
                .map(|(k, v)| (k.clone(), normalized(v)))
                .collect(),
        ),
        other => other.clone(),
    }
}

/// The `matches` subtree of a direct engine run, as serialized `Content`
/// — the bit-exact expectation for the HTTP answer.
fn direct_matches(ds: &Dataset, q: &UotsQuery) -> Content {
    let db = uots::db(ds);
    let result = Planner::new().run(&db, q).expect("direct run");
    normalized(result.serialize().get("matches").expect("matches field"))
}

#[test]
fn concurrent_http_results_are_bit_identical_to_direct_engine_calls() {
    let (service, ds) = start_service(150, 7, ServiceConfig::default());
    let addr = service.local_addr();
    let specs = workload::generate(
        &ds,
        &workload::WorkloadConfig {
            num_queries: 8,
            ..Default::default()
        },
    );
    let cases: Vec<(String, UotsQuery)> = specs
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            let k = 1 + i % 4;
            let json = query_json(&s.locations, s.keywords.ids(), 0.5, k);
            let q = UotsQuery::with_options(
                s.locations,
                s.keywords,
                Vec::new(),
                QueryOptions {
                    k,
                    ..QueryOptions::default()
                },
            )
            .unwrap();
            (json, q)
        })
        .collect();

    // Fire every case from its own thread, twice over, against /search
    // (batch of one) and /topk (bare query object).
    let cases = Arc::new(cases);
    let ds = Arc::new(ds);
    let mut handles = Vec::new();
    for round in 0..2 {
        for (i, (json, q)) in cases.iter().enumerate() {
            let json = json.clone();
            let q = q.clone();
            let ds = Arc::clone(&ds);
            handles.push(std::thread::spawn(move || {
                let want = direct_matches(&ds, &q);
                if round == 0 {
                    let (code, body) = post(addr, "/search", &format!(r#"{{"queries":[{json}]}}"#));
                    assert_eq!(code, 200, "case {i}: {body:?}");
                    let results = body.get("results").expect("results").as_seq().unwrap();
                    let got = results[0].get("matches").expect("matches");
                    assert_eq!(&want, got, "case {i}: /search diverged from direct call");
                } else {
                    let (code, body) = post(addr, "/topk", &json);
                    assert_eq!(code, 200, "case {i}: {body:?}");
                    let got = body
                        .get("result")
                        .expect("result")
                        .get("matches")
                        .expect("matches");
                    assert_eq!(&want, got, "case {i}: /topk diverged from direct call");
                }
            }));
        }
    }
    for h in handles {
        h.join().expect("client thread");
    }

    // The response also reports the plan; on this service nothing is
    // degraded and the epoch is the seed epoch.
    let (json, _) = &cases[0];
    let (code, body) = post(addr, "/search", &format!(r#"{{"queries":[{json}]}}"#));
    assert_eq!(code, 200);
    assert_eq!(body.get("degraded"), Some(&Content::Bool(false)));
    assert!(body.get("epoch").is_some());
    let planned = body.get("planned").unwrap().as_seq().unwrap();
    assert!(planned[0].get("algorithm").is_some());
    assert!(planned[0].get("reason").is_some());
}

#[test]
fn request_level_force_matches_the_planner_through_http() {
    let (service, ds) = start_service(120, 11, ServiceConfig::default());
    let addr = service.local_addr();
    let spec = workload::generate(&ds, &workload::WorkloadConfig::default())
        .into_iter()
        .next()
        .unwrap();
    let json = query_json(&spec.locations, spec.keywords.ids(), 0.5, 3);
    let (code, planner_body) = post(addr, "/search", &format!(r#"{{"queries":[{json}]}}"#));
    assert_eq!(code, 200);
    let want = planner_body.get("results").unwrap().as_seq().unwrap()[0]
        .get("matches")
        .unwrap()
        .clone();
    for algo in ["brute-force", "text-first", "iknn-baseline", "expansion"] {
        let (code, body) = post(
            addr,
            "/search",
            &format!(r#"{{"algorithm":"{algo}","queries":[{json}]}}"#),
        );
        assert_eq!(code, 200, "forced {algo}");
        let got = body.get("results").unwrap().as_seq().unwrap()[0]
            .get("matches")
            .unwrap();
        assert_eq!(&want, got, "forced {algo} diverged over HTTP");
        let planned = body.get("planned").unwrap().as_seq().unwrap();
        assert_eq!(
            planned[0].get("algorithm"),
            Some(&Content::Str(algo.to_string()))
        );
        assert_eq!(
            planned[0].get("reason"),
            Some(&Content::Str("forced".to_string()))
        );
    }
    let (code, body) = post(addr, "/search", r#"{"algorithm":"nope","queries":[{}]}"#);
    assert_eq!(code, 400, "{body:?}");
}

#[test]
fn overload_degrades_to_certified_best_effort_and_never_5xx() {
    // Tenant soft ring at zero: every request runs under the degraded
    // budget. One visited trajectory is far below what these queries
    // need, so completeness must certify the gap.
    let cfg = ServiceConfig {
        tenant_inflight: 0,
        degraded_budget: uots::ExecutionBudget::default().with_max_visited(1),
        ..ServiceConfig::default()
    };
    let (service, ds) = start_service(200, 23, cfg);
    let addr = service.local_addr();
    let specs = workload::generate(
        &ds,
        &workload::WorkloadConfig {
            num_queries: 6,
            ..Default::default()
        },
    );
    let mut best_effort = 0;
    for s in specs {
        let json = query_json(&s.locations, s.keywords.ids(), 0.5, 3);
        let (code, body) = post(addr, "/search", &format!(r#"{{"queries":[{json}]}}"#));
        assert_eq!(code, 200, "degraded requests still answer 200: {body:?}");
        assert_eq!(body.get("degraded"), Some(&Content::Bool(true)));
        let completeness = body.get("results").unwrap().as_seq().unwrap()[0]
            .get("completeness")
            .expect("completeness certificate");
        // `Exact` serializes as a bare string, `BestEffort` as a map
        // carrying the certified bound gap.
        match completeness {
            Content::Str(s) => assert_eq!(s, "Exact"),
            other => {
                let rendered = serde_json::to_string(other).unwrap();
                assert!(
                    rendered.contains("BestEffort") && rendered.contains("bound_gap"),
                    "unexpected completeness: {rendered}"
                );
                best_effort += 1;
            }
        }
    }
    assert!(
        best_effort > 0,
        "a 1-visited-trajectory budget must interrupt at least one query"
    );
}

#[test]
fn hard_overload_sheds_with_429_never_hangs() {
    let cfg = ServiceConfig {
        max_inflight: 1,
        tenant_inflight: 1000,
        ..ServiceConfig::default()
    };
    let (service, ds) = start_service(150, 31, cfg);
    let addr = service.local_addr();
    let spec = workload::generate(&ds, &workload::WorkloadConfig::default())
        .into_iter()
        .next()
        .unwrap();
    // Each request carries 4 queries against a 1-slot ring, fired from 12
    // threads: whatever interleaving happens, every response must be 200
    // or a JSON 429 — and all must arrive (no hang, no 5xx).
    let json = query_json(&spec.locations, spec.keywords.ids(), 0.5, 2);
    let body = format!(r#"{{"queries":[{json},{json},{json},{json}]}}"#);
    let mut handles = Vec::new();
    for _ in 0..12 {
        let body = body.clone();
        handles.push(std::thread::spawn(move || post(addr, "/search", &body)));
    }
    let mut shed = 0;
    for h in handles {
        let (code, content) = h.join().expect("client thread");
        assert!(
            code == 200 || code == 429,
            "overload must answer 200 or 429, got {code}: {content:?}"
        );
        if code == 429 {
            assert!(content.get("error").is_some(), "429 carries a JSON error");
            shed += 1;
        }
    }
    assert!(shed > 0, "a 1-slot ring under 12×4 queries must shed");
}

#[test]
fn ingest_publishes_epochs_visible_to_search() {
    let (service, ds) = start_service(100, 13, ServiceConfig::default());
    let addr = service.local_addr();
    let epoch0 = service.current_epoch();

    // A trajectory with a brand-new rare keyword, sitting exactly on the
    // queried vertex: it must win a k=1 text-heavy search after ingest.
    let marker = KeywordId(u32::try_from(ds.vocab.len()).unwrap() - 1);
    let node = NodeId(0);
    let t = Trajectory::new(
        vec![
            Sample { node, time: 60.0 },
            Sample {
                node: NodeId(1),
                time: 120.0,
            },
        ],
        KeywordSet::from_ids([marker]),
    )
    .expect("valid trajectory");
    let ingest_body = serde_json::to_string(&Content::Map(vec![
        ("insert".to_string(), Content::Seq(vec![t.serialize()])),
        ("retire".to_string(), Content::Seq(vec![Content::U64(0)])),
    ]))
    .unwrap();
    let (code, reply) = post(addr, "/ingest", &ingest_body);
    assert_eq!(code, 200, "{reply:?}");
    let epoch1 = as_u64(reply.get("epoch")).expect("epoch in reply");
    assert!(epoch1 > epoch0, "publish must advance the epoch");
    assert_eq!(as_u64(reply.get("retired")), Some(1));
    let inserted = reply.get("inserted").unwrap().as_seq().unwrap();
    assert_eq!(inserted.len(), 1);
    let new_id = as_u64(Some(&inserted[0])).expect("inserted id");

    let query = format!(
        r#"{{"locations":[{}],"keywords":[{}],"lambda":0.2,"k":1}}"#,
        node.0, marker.0
    );
    let (code, body) = post(addr, "/topk", &query);
    assert_eq!(code, 200, "{body:?}");
    assert_eq!(
        as_u64(body.get("epoch")),
        Some(epoch1),
        "search must observe the published epoch"
    );
    let matches = body
        .get("result")
        .unwrap()
        .get("matches")
        .unwrap()
        .as_seq()
        .unwrap();
    let top = serde_json::to_string(&matches[0]).unwrap();
    assert!(
        top.contains(&format!("{new_id}")),
        "ingested trajectory must win its own query: {top}"
    );
}

#[test]
fn observability_and_error_paths_surface_over_http() {
    let (service, _ds) = start_service(80, 3, ServiceConfig::default());
    let addr = service.local_addr();

    // A couple of requests so the counters move.
    let (code, _) = http(addr, "POST", "/search", "{not json");
    assert_eq!(code, 400);
    let (code, _) = http(addr, "POST", "/search", r#"{"queries":[]}"#);
    assert_eq!(code, 400);
    let (code, _) = http(addr, "POST", "/nope", "{}");
    assert_eq!(code, 404);
    let (code, _) = http(addr, "PUT", "/search", "{}");
    assert_eq!(code, 405);
    let (code, _) = http(addr, "POST", "/join", r#"{"theta":"high"}"#);
    assert_eq!(code, 400);

    let (code, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(code, 200);
    uots::obs::validate_prometheus_text(&metrics).expect("valid exposition");
    assert!(
        metrics.contains("uots_serve_requests_total"),
        "service counters exported"
    );
    assert!(
        metrics.contains("uots_serve_errors_total"),
        "error counter exported"
    );

    let (code, index) = http(addr, "GET", "/", "");
    assert_eq!(code, 200);
    assert!(index.contains("/search"));
}

#[test]
fn join_endpoint_answers_with_pairs_and_certificate() {
    let (service, _ds) = start_service(60, 17, ServiceConfig::default());
    let addr = service.local_addr();
    let (code, body) = post(addr, "/join", r#"{"theta":0.9,"lambda":0.5}"#);
    assert_eq!(code, 200, "{body:?}");
    assert!(body.get("pairs").unwrap().as_seq().is_some());
    assert!(body.get("completeness").is_some());
    assert!(body.get("epoch").is_some());
}

#[test]
fn admin_shutdown_drains_the_workers() {
    let (mut service, _ds) = start_service(60, 19, ServiceConfig::default());
    let addr = service.local_addr();
    let (code, body) = post(addr, "/admin/shutdown", "");
    assert_eq!(code, 200, "{body:?}");
    assert_eq!(body.get("stopping"), Some(&Content::Bool(true)));
    service.shutdown();
    assert!(service.is_stopped());
}
