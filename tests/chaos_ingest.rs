//! Chaos harness for the durable ingest path: randomized storage-fault
//! schedules must never lose an acknowledged-durable write.
//!
//! Each seed drives a [`DurableIngest`] over a [`FaultFs`] whose write,
//! sync, and metadata operations fail with seeded probabilities (torn
//! writes, ENOSPC, fsync page loss, transient errors), then materializes
//! a worst-case crash image — every file truncated to its durable prefix
//! plus a random cut of the unsynced tail — and recovers it. Two
//! invariants are checked for every seed:
//!
//! 1. **No acked-durable write is ever lost.** Every batch whose LSN the
//!    ingest reported durable before the crash must be present, content-
//!    identical, after recovery.
//! 2. **Recovery ≡ from-scratch rebuild.** The recovered state equals the
//!    base dataset plus exactly the replayed prefix of acked batches —
//!    structurally for every seed, and bit-identically under the query
//!    differential (expansion vs brute force over a compacted rebuild)
//!    for sampled seeds.
//!
//! The default sweep is 200 seeds; set `UOTS_CHAOS_ITERS` to widen it.
//! A meta-test flips the backend into `lie_on_fsync` mode (fsync drops
//! the pages but reports success) and asserts the harness *fails* — the
//! invariants are strong enough to catch an acked-write-lost bug.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use uots::core::algorithms::{Algorithm, BruteForce, Expansion};
use uots::core::wal::{self, FsyncPolicy, WalConfig};
use uots::durable::{recover, DurableIngest};
use uots::prelude::*;
use uots::storage::fault::{FaultConfig, FaultFs};
use uots::storage::RetryPolicy;
use uots::{
    EpochSnapshot, KeywordSet, LiveSet, Mutation, QueryResult, Sample, Trajectory, TrajectoryStore,
};
use uots_text::KeywordId;

fn tmproot(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("uots_chaos")
        .join(format!("{name}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn iters() -> u64 {
    std::env::var("UOTS_CHAOS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

fn random_traj(rng: &mut StdRng, n: usize, vocab_len: usize) -> Trajectory {
    let len = rng.gen_range(1..5);
    let t0 = rng.gen::<f64>() * 80_000.0;
    let samples: Vec<Sample> = (0..len)
        .map(|i| Sample {
            node: NodeId(rng.gen_range(0..n) as u32),
            time: (t0 + 30.0 * i as f64).min(86_400.0),
        })
        .collect();
    let tags: Vec<KeywordId> = (0..rng.gen_range(0..3))
        .map(|_| KeywordId(rng.gen_range(0..vocab_len.min(12)) as u32))
        .collect();
    Trajectory::new(samples, KeywordSet::from_ids(tags)).expect("valid trajectory")
}

fn random_query(rng: &mut StdRng, n: usize, vocab_len: usize) -> UotsQuery {
    let m = rng.gen_range(1..3);
    let locations: Vec<NodeId> = (0..m).map(|_| NodeId(rng.gen_range(0..n) as u32)).collect();
    let kws: Vec<KeywordId> = (0..rng.gen_range(0..3))
        .map(|_| KeywordId(rng.gen_range(0..vocab_len.min(12)) as u32))
        .collect();
    UotsQuery::with_options(
        locations,
        KeywordSet::from_ids(kws),
        vec![],
        QueryOptions {
            weights: Weights::lambda(0.5).expect("valid lambda"),
            k: 4,
            ..Default::default()
        },
    )
    .expect("valid query")
}

/// Applies a batch to the oracle's plain (store, live) pair.
fn apply_expected(store: &mut TrajectoryStore, live: &mut LiveSet, batch: &[Mutation]) {
    for m in batch {
        match m {
            Mutation::Insert(t) => {
                store.push(t.clone());
                live.grow_to(store.len());
            }
            Mutation::Retire(id) => {
                live.retire(*id);
            }
        }
    }
}

fn fingerprint(r: &QueryResult) -> Vec<(TrajectoryId, u64, u64, u64, u64)> {
    r.matches
        .iter()
        .map(|m| {
            (
                m.id,
                m.similarity.to_bits(),
                m.spatial.to_bits(),
                m.textual.to_bits(),
                m.temporal.to_bits(),
            )
        })
        .collect()
}

/// Query differential: the recovered snapshot must answer bit-identically
/// to a from-scratch compacted rebuild of its own live subset.
fn check_query_differential(
    snapshot: &EpochSnapshot,
    vocab_len: usize,
    queries: &[UotsQuery],
) -> Result<(), String> {
    let net = snapshot.network();
    let (compacted, id_map) = snapshot.rebuild_compacted();
    let vidx = compacted.build_vertex_index(net.num_nodes());
    let kidx = compacted.build_keyword_index(vocab_len);
    let oracle_db = Database::new(net, &compacted, &vidx).with_keyword_index(&kidx);
    let live_db = snapshot.database();
    for (q_i, q) in queries.iter().enumerate() {
        let want = fingerprint(
            &BruteForce
                .run(&oracle_db, q)
                .map_err(|e| format!("q{q_i}: oracle failed: {e}"))?,
        );
        let got = Expansion::default()
            .run(&live_db, q)
            .map_err(|e| format!("q{q_i}: recovered run failed: {e}"))?;
        let mapped: Result<Vec<_>, String> = fingerprint(&got)
            .into_iter()
            .map(|(id, s, sp, tx, tm)| {
                id_map[id.index()]
                    .map(|m| (m, s, sp, tx, tm))
                    .ok_or_else(|| format!("q{q_i}: recovered snapshot served retired {id}"))
            })
            .collect();
        if want != mapped? {
            return Err(format!("q{q_i}: recovered expansion diverged from rebuild"));
        }
    }
    Ok(())
}

struct SeedOutcome {
    /// Batches the ingest acknowledged (WAL append returned Ok).
    acked: usize,
    /// Highest LSN the ingest believed durable when the crash hit.
    durable_lsn: u64,
    /// Batches recovery actually reproduced.
    recovered: u64,
    /// Faults the schedule injected.
    faults: u64,
}

/// Drives one full chaos round: faulty ingest, crash image, recovery,
/// invariant checks. `Err` means an invariant was violated — for an
/// honest backend that is a bug; for the lying backend it is the point.
fn run_seed(
    ds: &Dataset,
    root: &Path,
    seed: u64,
    lie_on_fsync: bool,
    deep_check: bool,
) -> Result<Option<SeedOutcome>, String> {
    let dir = root.join(format!("seed-{seed}"));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).map_err(|e| e.to_string())?;
    }
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;

    // fault intensity buckets: calm, rough, hostile
    let (p_write, p_sync, p_meta) = if lie_on_fsync {
        // the meta-test wants certain page loss, nothing else
        (0.0, 0.6, 0.0)
    } else {
        match seed % 3 {
            0 => (0.02, 0.02, 0.01),
            1 => (0.08, 0.08, 0.04),
            _ => (0.20, 0.20, 0.08),
        }
    };
    let fsync = if !lie_on_fsync && seed % 4 == 3 {
        FsyncPolicy::Never // acked ≠ durable: the crash may drop the tail
    } else {
        FsyncPolicy::EveryBatch
    };
    let checkpoint_every = if !lie_on_fsync && seed % 2 == 1 {
        Some(2)
    } else {
        None
    };

    let fs = FaultFs::random(FaultConfig {
        seed,
        p_write,
        p_sync,
        p_meta,
        lie_on_fsync,
    });
    // open is not retried internally, so give it the couple of attempts
    // an operator would; a schedule hostile enough to kill all of them
    // acked nothing, leaving nothing to verify
    let mut ingest = None;
    for _ in 0..3 {
        match DurableIngest::create_with_backend(
            Arc::new(ds.network.clone()),
            ds.store.clone(),
            ds.vocab.clone(),
            &dir,
            WalConfig {
                fsync,
                ..WalConfig::default()
            },
            checkpoint_every,
            None,
            Arc::clone(&fs) as Arc<dyn uots::storage::StorageBackend>,
            RetryPolicy::without_backoff(),
        ) {
            Ok(i) => {
                ingest = Some(i);
                break;
            }
            Err(_) => continue,
        }
    }
    let Some(mut ingest) = ingest else {
        return Ok(None);
    };

    // scripted workload, generated just-in-time so retires only ever name
    // ids that exist in the acked prefix
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a0_5000);
    let n = ds.network.num_nodes();
    let vocab_len = ds.vocab.len();
    let mut next_id = ds.store.len();
    let mut acked: Vec<(u64, Vec<Mutation>)> = Vec::new();
    for _ in 0..12 {
        let mut batch = Vec::new();
        let mut inserts = 0usize;
        for _ in 0..rng.gen_range(1..4) {
            if rng.gen_bool(0.7) {
                batch.push(Mutation::Insert(random_traj(&mut rng, n, vocab_len)));
                inserts += 1;
            } else {
                batch.push(Mutation::Retire(TrajectoryId(
                    rng.gen_range(0..next_id) as u32
                )));
            }
        }
        match ingest.apply(batch.clone()) {
            Ok((lsn, _)) => {
                // LSNs are consecutive from 1: a retried append reuses its
                // LSN, so acks can never skip or duplicate
                if lsn != acked.len() as u64 + 1 {
                    return Err(format!(
                        "seed {seed}: acked lsn {lsn} out of sequence (expected {})\nfaults:\n  {}",
                        acked.len() + 1,
                        fs.fault_log().join("\n  ")
                    ));
                }
                acked.push((lsn, batch));
                next_id += inserts;
            }
            // an unacked batch: whether it is durable is undefined, but
            // the applied state must not run ahead of the log — stop here
            Err(_) => break,
        }
        if rng.gen_bool(0.3) && ingest.publish().is_err() {
            break;
        }
        // only on checkpointing seeds: a checkpoint prunes covered WAL
        // segments, and the checkpoint-free seeds rely on the full log
        // surviving for the mutation-level content check below
        if checkpoint_every.is_some() && rng.gen_bool(0.15) {
            let _ = ingest.checkpoint_now();
        }
    }
    let status = ingest.status();
    let durable_lsn = status.durable_lsn;
    drop(ingest);

    // power loss: durable prefixes survive, a seeded cut of each unsynced
    // tail may or may not
    fs.crash(seed ^ 0x0dd0)
        .map_err(|e| format!("seed {seed}: crash materialization failed: {e}"))?;

    let recovered =
        recover(&dir, Some(ds), None).map_err(|e| format!("seed {seed}: recovery failed: {e}"))?;
    let m = recovered.report.next_lsn.saturating_sub(1);

    // invariant 1: everything acked as durable is still there
    if m < durable_lsn {
        return Err(format!(
            "seed {seed}: acked-durable write LOST — ingest reported lsn {durable_lsn} durable, \
             recovery reproduced only {m} batch(es)\nfaults:\n  {}",
            fs.fault_log().join("\n  ")
        ));
    }
    // ... and the log can never contain more than was acked
    if m as usize > acked.len() {
        return Err(format!(
            "seed {seed}: recovery replayed {m} batches but only {} were acked",
            acked.len()
        ));
    }

    // invariant 2: recovered state ≡ base + exactly the first m acked
    // batches. Without checkpoints the WAL is never pruned, so the log
    // itself must replay to the acked prefix, mutation-for-mutation.
    if checkpoint_every.is_none() {
        let replayed = wal::replay(&dir, 0)
            .map_err(|e| format!("seed {seed}: post-crash replay failed: {e}"))?;
        if replayed.batches.len() != m as usize {
            return Err(format!(
                "seed {seed}: replay length {} != recovery's {m}",
                replayed.batches.len()
            ));
        }
        for ((got_lsn, got), (want_lsn, want)) in replayed.batches.iter().zip(acked.iter()) {
            if got_lsn != want_lsn || got != want {
                return Err(format!(
                    "seed {seed}: durable batch diverged at lsn {want_lsn}: log has {got:?}, \
                     acked {want:?}"
                ));
            }
        }
    }
    let mut want_store = ds.store.clone();
    let mut want_live = LiveSet::all_live(want_store.len());
    for (_, batch) in &acked[..m as usize] {
        apply_expected(&mut want_store, &mut want_live, batch);
    }
    let snap = recovered.manager.snapshot();
    if snap.store().len() != want_store.len() {
        return Err(format!(
            "seed {seed}: recovered store has {} trajectories, expected {}",
            snap.store().len(),
            want_store.len()
        ));
    }
    for i in 0..want_store.len() {
        let id = TrajectoryId(i as u32);
        if snap.store().get(id) != want_store.get(id) {
            return Err(format!("seed {seed}: trajectory {id} content diverged"));
        }
    }
    if snap.live() != &want_live {
        return Err(format!(
            "seed {seed}: liveness mask diverged\n got {:?}\nwant {want_live:?}",
            snap.live()
        ));
    }
    if deep_check {
        let mut qrng = StdRng::seed_from_u64(seed ^ 0x9e3e);
        let queries: Vec<UotsQuery> = (0..2)
            .map(|_| random_query(&mut qrng, n, vocab_len))
            .collect();
        check_query_differential(&snap, vocab_len, &queries)
            .map_err(|e| format!("seed {seed}: {e}"))?;
    }

    let faults = fs.injected_faults();
    std::fs::remove_dir_all(&dir).ok();
    Ok(Some(SeedOutcome {
        acked: acked.len(),
        durable_lsn,
        recovered: m,
        faults,
    }))
}

/// The main sweep: `UOTS_CHAOS_ITERS` (default 200) randomized fault
/// schedules, every one recovered and checked against both invariants.
#[test]
fn chaos_no_acked_durable_write_is_ever_lost() {
    let root = tmproot("sweep");
    let ds = Dataset::build(&DatasetConfig::small(16, 5)).expect("dataset builds");
    let n = iters();
    let (mut ran, mut skipped, mut total_faults, mut total_acked, mut faulted_rounds) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for seed in 0..n {
        match run_seed(&ds, &root, seed, false, seed % 8 == 0) {
            Ok(Some(o)) => {
                ran += 1;
                total_faults += o.faults;
                total_acked += o.acked as u64;
                if o.faults > 0 && o.acked > 0 {
                    faulted_rounds += 1;
                }
                assert!(
                    o.recovered >= o.durable_lsn,
                    "seed {seed}: internal accounting broke"
                );
            }
            Ok(None) => skipped += 1,
            Err(e) => panic!("chaos invariant violated:\n{e}"),
        }
    }
    eprintln!(
        "chaos sweep: {ran} rounds ({skipped} skipped at open), {total_acked} acked batches, \
         {total_faults} faults injected, {faulted_rounds} rounds faulted with acked writes"
    );
    // the sweep must actually exercise the machinery, not vacuously pass
    assert!(ran >= n / 2, "too many rounds skipped: {skipped}/{n}");
    assert!(total_faults > 0, "no faults injected — schedule is broken");
    assert!(
        faulted_rounds > 0,
        "no round combined faults with acked writes"
    );
}

/// Meta-test: a backend that *lies about fsync* (drops the pages, reports
/// success) must be caught by the same harness — proof the invariants
/// detect acked-write loss rather than vacuously passing.
#[test]
fn a_lying_fsync_backend_is_caught() {
    let root = tmproot("liar");
    let ds = Dataset::build(&DatasetConfig::small(16, 5)).expect("dataset builds");
    let mut caught = 0u64;
    for seed in 0..40 {
        match run_seed(&ds, &root, seed, true, false) {
            Err(e) if e.contains("LOST") => caught += 1,
            // a lying round can also surface as divergence downstream of
            // the loss (holes in the log, shifted prefixes) — any failure
            // is a detection; what must not happen is *silent* success
            // on every seed
            Err(_) => caught += 1,
            Ok(_) => {}
        }
    }
    assert!(
        caught > 0,
        "the chaos harness failed to detect a backend that drops acked writes"
    );
}
