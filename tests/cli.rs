//! End-to-end tests of the `uots` CLI binary: every subcommand plus the
//! error paths, driven through the real executable.

use std::path::PathBuf;
use std::process::Command;

fn uots() -> Command {
    Command::new(env!("CARGO_BIN_EXE_uots"))
}

fn temp_dataset(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("uots_cli_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn generate(path: &PathBuf) {
    let out = uots()
        .args([
            "generate", "--preset", "small", "--trips", "120", "--seed", "3", "--out",
        ])
        .arg(path)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn help_and_unknown_command() {
    let out = uots().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("generate"));

    let out = uots().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_stats_query_join_pipeline() {
    let path = temp_dataset("pipeline.uotsds");
    generate(&path);
    assert!(path.exists());

    let out = uots()
        .args(["stats", "--data"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("trajectories        : 120"), "{text}");

    let out = uots()
        .args(["query", "--data"])
        .arg(&path)
        .args([
            "--at", "2.0,2.0", "--at", "5.0,3.0", "--k", "2", "--lambda", "0.7",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("top 2 trips"), "{text}");
    assert!(text.contains("visited"), "{text}");

    let out = uots()
        .args(["join", "--data"])
        .arg(&path)
        .args(["--theta", "0.9"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("similarity >= 0.9"));

    std::fs::remove_file(&path).ok();
}

#[test]
fn query_rejects_bad_flags() {
    let path = temp_dataset("badflags.uotsds");
    generate(&path);

    // no --at place
    let out = uots()
        .args(["query", "--data"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--at"));

    // malformed coordinates
    let out = uots()
        .args(["query", "--data"])
        .arg(&path)
        .args(["--at", "nope"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // out-of-range lambda
    let out = uots()
        .args(["query", "--data"])
        .arg(&path)
        .args(["--at", "1,1", "--lambda", "7"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_dataset_file_is_a_clean_error() {
    let out = uots()
        .args(["stats", "--data", "/definitely/not/here.uotsds"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn corrupt_dataset_is_a_one_line_error() {
    let path = temp_dataset("corrupt.uotsds");
    std::fs::write(&path, b"this is not a uots dataset at all").unwrap();
    for cmd in ["stats", "query", "join"] {
        let mut c = uots();
        c.args([cmd, "--data"]).arg(&path);
        if cmd == "query" {
            c.args(["--at", "1,1"]);
        }
        let out = c.output().unwrap();
        assert!(!out.status.success(), "{cmd} must fail on garbage input");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.starts_with("error: "), "{cmd}: {stderr}");
        assert_eq!(
            stderr.trim_end().lines().count(),
            1,
            "{cmd}: one-line diagnostic\n{stderr}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_dataset_is_a_one_line_error() {
    let path = temp_dataset("whole.uotsds");
    generate(&path);
    let bytes = std::fs::read(&path).unwrap();
    let cut = temp_dataset("truncated.uotsds");
    std::fs::write(&cut, &bytes[..bytes.len() / 3]).unwrap();
    let out = uots().args(["stats", "--data"]).arg(&cut).output().unwrap();
    assert!(!out.status.success(), "truncated dataset must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.starts_with("error: "), "{stderr}");
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "one-line diagnostic\n{stderr}"
    );
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&cut).ok();
}

#[test]
fn budget_flags_produce_best_effort_output() {
    let path = temp_dataset("budget.uotsds");
    generate(&path);

    // a zero-trajectory visit budget must trip immediately but still exit 0
    let out = uots()
        .args(["query", "--data"])
        .arg(&path)
        .args(["--at", "2.0,2.0", "--max-visited", "0"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("best-effort"), "{text}");
    assert!(text.contains("certified gap"), "{text}");

    // bad budget values are rejected
    let out = uots()
        .args(["query", "--data"])
        .arg(&path)
        .args(["--at", "1,1", "--deadline-ms", "soon"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--deadline-ms"));

    // the join accepts the same budget flags
    let out = uots()
        .args(["join", "--data"])
        .arg(&path)
        .args(["--theta", "0.9", "--max-visited", "0"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("best-effort"));

    std::fs::remove_file(&path).ok();
}

#[test]
fn metrics_and_trace_outputs_are_valid() {
    let path = temp_dataset("telemetry.uotsds");
    generate(&path);
    let prom = temp_dataset("telemetry.prom");
    let trace = temp_dataset("telemetry.trace.json");

    let out = uots()
        .args(["query", "--data"])
        .arg(&path)
        .args(["--at", "2.0,2.0", "--at", "5.0,3.0", "--metrics-out"])
        .arg(&prom)
        .arg("--trace")
        .arg(&trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("phase breakdown:"), "{text}");
    assert!(text.contains("network_expansion"), "{text}");

    // the Prometheus export passes the CLI's own validator
    let out = uots()
        .args(["check-metrics", "--file"])
        .arg(&prom)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));
    let prom_text = std::fs::read_to_string(&prom).unwrap();
    assert!(
        prom_text.contains("uots_query_phase_duration_ns"),
        "{prom_text}"
    );
    assert!(prom_text.contains("quantile=\"0.99\""), "{prom_text}");

    // the trace is well-formed JSON whose phase spans nest in the root
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert!(trace_text.contains("\"query\""), "{trace_text}");
    assert!(trace_text.contains("network_expansion"), "{trace_text}");

    // a corrupted export must fail validation
    std::fs::write(&prom, format!("{prom_text}uots_query_latency_us_count 2\n")).unwrap();
    let out = uots()
        .args(["check-metrics", "--file"])
        .arg(&prom)
        .output()
        .unwrap();
    assert!(!out.status.success(), "duplicate sample must be rejected");

    // the join writes its own exposition
    let out = uots()
        .args(["join", "--data"])
        .arg(&path)
        .args(["--theta", "0.95", "--metrics-out"])
        .arg(&prom)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let prom_text = std::fs::read_to_string(&prom).unwrap();
    assert!(
        prom_text.contains("uots_join_phase_duration_ns"),
        "{prom_text}"
    );

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&prom).ok();
    std::fs::remove_file(&trace).ok();
}

#[test]
fn durable_ingest_and_recover_round_trip() {
    let path = temp_dataset("durable.uotsds");
    generate(&path);
    let wal_dir = temp_dataset("durable.wal");
    std::fs::remove_dir_all(&wal_dir).ok();
    std::fs::create_dir_all(&wal_dir).unwrap();
    let script = temp_dataset("durable.script");
    std::fs::write(
        &script,
        "ingest 0 1 2\nretire 0\npublish\ningest 3 4 5\nretire 7\npublish\n",
    )
    .unwrap();

    // durable ingest: wal + checkpoint cadence + per-epoch verification
    let out = uots()
        .args(["ingest", "--data"])
        .arg(&path)
        .arg("--script")
        .arg(&script)
        .arg("--wal-dir")
        .arg(&wal_dir)
        .args(["--fsync", "batch", "--checkpoint-every", "2", "--verify"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("durable ingest"), "{text}");
    assert!(text.contains("wal durable through lsn 4"), "{text}");
    assert!(
        text.contains("verified against from-scratch rebuild"),
        "{text}"
    );
    let names: Vec<String> = std::fs::read_dir(&wal_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.iter().any(|n| n.ends_with(".uotsck")),
        "checkpoint cadence must have cut a checkpoint: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.ends_with(".seg")),
        "wal segments must exist: {names:?}"
    );

    // recovery reproduces the state and verifies against a rebuild
    let prom = temp_dataset("durable.prom");
    let out = uots()
        .args(["recover", "--wal-dir"])
        .arg(&wal_dir)
        .args(["--data"])
        .arg(&path)
        .arg("--verify")
        .arg("--metrics-out")
        .arg(&prom)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("recovered from checkpoint"), "{text}");
    assert!(text.contains("durable through lsn 4"), "{text}");
    assert!(
        text.contains("verified against from-scratch rebuild"),
        "{text}"
    );
    let prom_text = std::fs::read_to_string(&prom).unwrap();
    assert!(prom_text.contains("uots_recovery_total"), "{prom_text}");

    // bad fsync policy is rejected up front
    let out = uots()
        .args(["ingest", "--data"])
        .arg(&path)
        .arg("--script")
        .arg(&script)
        .arg("--wal-dir")
        .arg(&wal_dir)
        .args(["--fsync", "sometimes"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--fsync"));

    // recovery without a checkpoint or base dataset is a clean error
    let empty = temp_dataset("durable.empty.wal");
    std::fs::remove_dir_all(&empty).ok();
    std::fs::create_dir_all(&empty).unwrap();
    let out = uots()
        .args(["recover", "--wal-dir"])
        .arg(&empty)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no usable checkpoint"));

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&script).ok();
    std::fs::remove_file(&prom).ok();
    std::fs::remove_dir_all(&wal_dir).ok();
    std::fs::remove_dir_all(&empty).ok();
}

#[test]
fn generate_rejects_unknown_preset() {
    let out = uots()
        .args([
            "generate",
            "--preset",
            "mars",
            "--trips",
            "10",
            "--out",
            "/tmp/x.uotsds",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown preset"));
}

#[test]
fn status_and_fsck_report_through_exit_codes() {
    let path = temp_dataset("fsck.uotsds");
    generate(&path);
    let wal_dir = temp_dataset("fsck.wal");
    std::fs::remove_dir_all(&wal_dir).ok();
    std::fs::create_dir_all(&wal_dir).unwrap();
    let script = temp_dataset("fsck.script");
    std::fs::write(
        &script,
        "ingest 0 1 2\npublish\ningest 3 4 5\npublish\ningest 1 2 3\npublish\n",
    )
    .unwrap();
    let out = uots()
        .args(["ingest", "--data"])
        .arg(&path)
        .arg("--script")
        .arg(&script)
        .arg("--wal-dir")
        .arg(&wal_dir)
        .args(["--checkpoint-every", "1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // clean directory: status exits 0 and says so
    let out = uots()
        .args(["status", "--wal-dir"])
        .arg(&wal_dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "clean dir is exit 0");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("clean"), "{text}");
    assert!(text.contains("recovery plan"), "{text}");

    // corrupt the newest checkpoint: status reports exit 4, moves nothing
    let cks: Vec<std::path::PathBuf> = {
        let mut v: Vec<_> = std::fs::read_dir(&wal_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "uotsck"))
            .collect();
        v.sort();
        v.reverse();
        v
    };
    assert!(cks.len() >= 2, "need checkpoints to corrupt: {cks:?}");
    let victim = &cks[0];
    let mut raw = std::fs::read(victim).unwrap();
    let n = raw.len();
    raw[n - 2] ^= 0xff;
    std::fs::write(victim, &raw).unwrap();

    let out = uots()
        .args(["status", "--wal-dir"])
        .arg(&wal_dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "corruption found is exit 4");
    assert!(String::from_utf8_lossy(&out.stdout).contains("corrupt checkpoint"));
    assert!(victim.exists(), "status is read-only");

    // recover still works but took the fallback path: exit 3
    let out = uots()
        .args(["recover", "--wal-dir"])
        .arg(&wal_dir)
        .args(["--data"])
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(3),
        "skipped-checkpoint recovery is exit 3: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("skipped corrupt checkpoint"));

    // fsck quarantines the corrupt file (still exit 4: damage was found)
    let out = uots()
        .args(["fsck", "--wal-dir"])
        .arg(&wal_dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("quarantined"), "{text}");
    assert!(!victim.exists(), "fsck moves the corrupt checkpoint");
    let manifest = wal_dir.join("quarantine").join("MANIFEST.txt");
    assert!(manifest.exists(), "quarantine manifest must exist");

    // after the scrub both status and recover are clean again
    let out = uots()
        .args(["status", "--wal-dir"])
        .arg(&wal_dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "scrubbed dir is clean");
    let out = uots()
        .args(["recover", "--wal-dir"])
        .arg(&wal_dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "clean recovery is exit 0");

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&script).ok();
    std::fs::remove_dir_all(&wal_dir).ok();
}

#[test]
fn unrecoverable_directories_exit_5() {
    let path = temp_dataset("unrec.uotsds");
    generate(&path);
    let wal_dir = temp_dataset("unrec.wal");
    std::fs::remove_dir_all(&wal_dir).ok();
    std::fs::create_dir_all(&wal_dir).unwrap();
    let script = temp_dataset("unrec.script");
    std::fs::write(&script, "ingest 0 1 2\npublish\n").unwrap();
    // wal only, no checkpoints
    let out = uots()
        .args(["ingest", "--data"])
        .arg(&path)
        .arg("--script")
        .arg(&script)
        .arg("--wal-dir")
        .arg(&wal_dir)
        .output()
        .unwrap();
    assert!(out.status.success());

    // destroy the only segment's header: nothing replayable remains
    let seg: std::path::PathBuf = std::fs::read_dir(&wal_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "seg"))
        .expect("wal segment exists");
    let mut raw = std::fs::read(&seg).unwrap();
    raw[0] ^= 0xff;
    std::fs::write(&seg, &raw).unwrap();

    // without a base dataset fsck declares the directory unrecoverable
    let out = uots()
        .args(["fsck", "--wal-dir"])
        .arg(&wal_dir)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(5),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // with --data the base dataset makes it recoverable: plain exit 4
    // (the segment is already quarantined; re-damage nothing — a second
    // fsck over the now-empty dir is clean, so re-check via status first)
    let out = uots()
        .args(["status", "--wal-dir"])
        .arg(&wal_dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "quarantine emptied the dir");

    // recover over the scrubbed, checkpoint-less dir without a base: exit 5
    let out = uots()
        .args(["recover", "--wal-dir"])
        .arg(&wal_dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(5));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no usable checkpoint"));

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&script).ok();
    std::fs::remove_dir_all(&wal_dir).ok();
}
