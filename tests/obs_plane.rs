//! Integration tests for the operational observability plane: the event
//! journal's causal chain under storage faults, the live exposition
//! endpoint's agreement with in-process state, concurrent registry
//! exposition under mutation, and the overhead guard for the always-on
//! (tracing-disabled) configuration.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};

use uots::core::parallel::{run_batch, run_batch_observed, BatchObserver, BatchOptions};
use uots::core::wal::WalConfig;
use uots::durable::{DurableIngest, IngestState};
use uots::obs::{
    validate_prometheus_text, EventJournal, JournalEvent, MetricsRegistry, ObsServer, ObsState,
    TailSampler,
};
use uots::prelude::*;
use uots::storage::fault::{Fault, FaultFs, OpKind, ScriptedFault};
use uots::storage::{RetryPolicy, StdFs, StorageBackend};
use uots::{Mutation, Trajectory};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("uots_obs_plane")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn donor(ds: &Dataset, i: u32) -> Trajectory {
    ds.store.get(TrajectoryId(i)).clone()
}

fn durable_over(
    ds: &Dataset,
    dir: &std::path::Path,
    backend: Arc<dyn StorageBackend>,
    registry: &MetricsRegistry,
) -> DurableIngest {
    DurableIngest::create_with_backend(
        Arc::new(ds.network.clone()),
        ds.store.clone(),
        ds.vocab.clone(),
        dir,
        WalConfig::default(),
        None,
        Some(registry),
        backend,
        RetryPolicy::without_backoff(),
    )
    .unwrap()
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let code: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (code, body)
}

fn queries_for(ds: &Dataset, n: usize) -> Vec<UotsQuery> {
    workload::generate(ds, &workload::WorkloadConfig::default())
        .into_iter()
        .cycle()
        .take(n)
        .map(|spec| UotsQuery::new(spec.locations.clone(), spec.keywords.clone()).unwrap())
        .collect()
}

/// The acceptance scenario: fault injection drives `DurableIngest` to
/// read-only, the journal holds the full causal chain *in order*, and
/// the live endpoint agrees with the in-process `status()` snapshot.
#[test]
fn degraded_transition_journals_causal_chain_and_serves_it_live() {
    let ds = Dataset::build(&DatasetConfig::small(16, 5)).unwrap();
    let dir = tmpdir("causal-chain");
    // Sync ops under FsyncPolicy::EveryBatch: #0 = segment header at
    // create, #1 = the healthy batch's record fsync, #2 = the doomed
    // batch's first attempt, #3 = the fresh segment's header during
    // heal, #4 = the one permanent-budget retry. Failing #2 and #4
    // exhausts the permanent budget (permanent_attempts = 2).
    let fs = FaultFs::scripted(
        11,
        vec![
            ScriptedFault {
                op: OpKind::Sync,
                nth: 2,
                fault: Fault::FsyncLoss,
            },
            ScriptedFault {
                op: OpKind::Sync,
                nth: 4,
                fault: Fault::FsyncLoss,
            },
        ],
    );
    let registry = MetricsRegistry::new();
    let journal = EventJournal::default();
    let mut ingest = durable_over(&ds, &dir, fs, &registry);
    ingest.set_journal(journal.clone());

    // live endpoint over the same registry + journal, with a status
    // document the test updates the way the CLI does after each publish
    let status_doc = Arc::new(Mutex::new(String::from("{}")));
    let reader = Arc::clone(&status_doc);
    let state = ObsState::new()
        .with_registry(registry.clone())
        .with_journal(journal.clone())
        .with_status(move || reader.lock().unwrap().clone());
    let mut server = ObsServer::start("127.0.0.1:0", state).expect("bind obs endpoint");
    let addr = server.local_addr();

    // healthy batch: acked, journal quiet, /status agrees
    ingest
        .apply(vec![Mutation::Insert(donor(&ds, 0))])
        .expect("healthy batch is acked");
    let healthy_json = serde_json::to_string(&ingest.status()).unwrap();
    *status_doc.lock().unwrap() = healthy_json.clone();
    let (code, body) = http_get(addr, "/status");
    assert_eq!(code, 200);
    assert_eq!(body, healthy_json);
    assert!(body.contains("\"state\":\"healthy\""), "{body}");

    // doomed batch: both fsync attempts fail, ingest degrades
    let err = ingest
        .apply(vec![Mutation::Insert(donor(&ds, 1))])
        .unwrap_err();
    assert!(ingest.is_degraded(), "not degraded after {err}");
    assert!(matches!(
        ingest.status().state,
        IngestState::Degraded { .. }
    ));
    let degraded_json = serde_json::to_string(&ingest.status()).unwrap();
    *status_doc.lock().unwrap() = degraded_json.clone();

    // the journal holds the causal chain in order: first failed fsync,
    // seal, retry; second failed fsync, seal; budget exhausted; degraded
    let events = journal.recent(usize::MAX);
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.component == "wal" || e.component == "durable")
        .map(|e| e.name.as_str())
        .collect();
    let chain = [
        "fsync_failure",
        "segment_sealed",
        "append_retry",
        "fsync_failure",
        "segment_sealed",
        "retries_exhausted",
        "degraded_read_only",
    ];
    let mut pos = 0;
    for want in chain {
        match names[pos..].iter().position(|n| *n == want) {
            Some(i) => pos += i + 1,
            None => panic!("missing {want} after index {pos} in journal: {names:?}"),
        }
    }

    // the live endpoints agree with the final in-process snapshot
    let (code, body) = http_get(addr, "/status");
    assert_eq!(code, 200);
    assert_eq!(body, degraded_json);
    assert!(body.contains("\"state\":\"degraded\""), "{body}");

    let (code, metrics) = http_get(addr, "/metrics");
    assert_eq!(code, 200);
    validate_prometheus_text(&metrics).expect("served exposition validates");
    assert!(
        metrics
            .lines()
            .any(|l| l.trim() == "uots_durable_degraded 1"),
        "degraded gauge not exposed:\n{metrics}"
    );

    let (code, jbody) = http_get(addr, "/journal?n=256");
    assert_eq!(code, 200);
    let lines: Vec<&str> = jbody.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(!lines.is_empty());
    let parsed: Vec<JournalEvent> = lines
        .iter()
        .map(|l| serde_json::from_str::<JournalEvent>(l).expect("journal line parses"))
        .collect();
    assert!(
        parsed.iter().any(|e| e.name == "degraded_read_only"),
        "served journal is missing the degradation event"
    );

    server.shutdown();
}

/// Satellite: exposition snapshots must stay internally consistent while
/// batch executors and a durable ingest mutate the same registry.
#[test]
fn concurrent_exposition_always_validates() {
    let ds = Dataset::build(&DatasetConfig::small(40, 7)).unwrap();
    let db = uots::db(&ds);
    let queries = queries_for(&ds, 24);
    let registry = MetricsRegistry::new();
    let dir = tmpdir("concurrent");
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        let renderer = s.spawn(|| {
            let mut renders = 0u64;
            while !done.load(Ordering::Relaxed) {
                let text = registry.render_prometheus();
                validate_prometheus_text(&text).expect("mid-mutation snapshot validates");
                let json = registry.render_json();
                assert!(json.starts_with('{'), "render_json produced: {json}");
                renders += 1;
            }
            renders
        });

        let batches = s.spawn(|| {
            let obs = BatchObserver::new(&registry).with_sampler(TailSampler::new(32));
            let algo = Expansion::default();
            for _ in 0..4 {
                let results = run_batch_observed(
                    &db,
                    &algo,
                    &queries,
                    &BatchOptions::fail_fast(2),
                    &CancellationToken::new(),
                    &obs,
                )
                .expect("batch admits");
                assert_eq!(results.len(), queries.len());
            }
        });

        let ingest = s.spawn(|| {
            let mut durable = durable_over(&ds, &dir, Arc::new(StdFs), &registry);
            for i in 0..12 {
                durable
                    .apply(vec![Mutation::Insert(donor(&ds, i % 8))])
                    .expect("durable batch");
                if i % 4 == 3 {
                    durable.publish().expect("publish");
                }
            }
        });

        batches.join().expect("batch thread");
        ingest.join().expect("ingest thread");
        done.store(true, Ordering::Relaxed);
        let renders = renderer.join().expect("renderer thread");
        assert!(renders > 0, "renderer never observed the registry");
    });

    // the final snapshot still validates and saw both mutators
    let text = registry.render_prometheus();
    validate_prometheus_text(&text).unwrap();
    assert!(text.contains("uots_batch_queries_total"), "{text}");
    assert!(text.contains("uots_durable_retries_total"), "{text}");
}

/// Satellite: the always-on configuration (journal + metadata-only
/// sampler attached, tracing disabled) must not meaningfully slow the
/// defaults-row query workload.
#[test]
fn tracing_disabled_overhead_is_bounded() {
    let ds = Dataset::build(&DatasetConfig::small(48, 3)).unwrap();
    let db = uots::db(&ds);
    let queries = queries_for(&ds, 32);
    let algo = Expansion::default();

    // warm caches and code paths before timing anything
    run_batch(&db, &algo, &queries, 1).expect("warmup");

    let repeats = 5;
    let baseline = (0..repeats)
        .map(|_| {
            let t0 = Instant::now();
            run_batch(&db, &algo, &queries, 1).expect("baseline batch");
            t0.elapsed()
        })
        .min()
        .unwrap();

    let registry = MetricsRegistry::new();
    let journal = EventJournal::default();
    // metadata-only sampler: trace_spans = None, so recorders stay in
    // the phases-only mode and no span ring is allocated per query
    let obs = BatchObserver::new(&registry).with_sampler(TailSampler::new(64));
    let dir = tmpdir("overhead");
    let mut durable = durable_over(&ds, &dir, Arc::new(StdFs), &registry);
    durable.set_journal(journal.clone());
    let observed = (0..repeats)
        .map(|_| {
            let t0 = Instant::now();
            let results = run_batch_observed(
                &db,
                &algo,
                &queries,
                &BatchOptions::fail_fast(1),
                &CancellationToken::new(),
                &obs,
            )
            .expect("observed batch");
            assert_eq!(results.len(), queries.len());
            t0.elapsed()
        })
        .min()
        .unwrap();

    let per_query_slack = Duration::from_micros(500) * queries.len() as u32;
    let bound = baseline * 5 / 2 + per_query_slack;
    assert!(
        observed <= bound,
        "observed plane overhead too high: baseline {baseline:?}, observed {observed:?}, \
         bound {bound:?} over {} queries",
        queries.len()
    );
    // the plane actually saw the work it was attached to
    assert!(registry
        .render_prometheus()
        .contains("uots_batch_queries_total"));
}
