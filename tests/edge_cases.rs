//! Edge-case torture tests for the query engine and its substrates:
//! boundary parameter values, degenerate stores, tie-breaking, and the
//! exactness of each similarity channel against independently computed
//! values.

use uots::network::astar::AStar;
use uots::network::generators::{grid_city, GridCityConfig};
use uots::prelude::*;
use uots::trajectory::{Sample, Trajectory};
use uots::{KeywordId, RoadNetwork, TrajectoryStore};

fn kws(ids: &[u32]) -> KeywordSet {
    KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
}

fn traj(nodes: &[u32], t0: f64, tags: &[u32]) -> Trajectory {
    Trajectory::new(
        nodes
            .iter()
            .enumerate()
            .map(|(i, &v)| Sample {
                node: NodeId(v),
                time: (t0 + 60.0 * i as f64).min(86_400.0),
            })
            .collect(),
        kws(tags),
    )
    .unwrap()
}

fn run_all(
    net: &RoadNetwork,
    store: &TrajectoryStore,
    q: &UotsQuery,
) -> Vec<(String, QueryResult)> {
    let vidx = store.build_vertex_index(net.num_nodes());
    let kidx = store.build_keyword_index(64);
    let db = Database::new(net, store, &vidx).with_keyword_index(&kidx);
    let algos: Vec<Box<dyn Algorithm>> = vec![
        Box::new(BruteForce),
        Box::new(TextFirst),
        Box::new(IknnBaseline::default()),
        Box::new(Expansion::default()),
        Box::new(Expansion::new(Scheduler::MinRadius)),
    ];
    algos
        .into_iter()
        .map(|a| (a.name().to_string(), a.run(&db, q).unwrap()))
        .collect()
}

#[test]
fn sixty_four_query_locations_is_accepted_and_sixty_five_rejected() {
    let net = grid_city(&GridCityConfig::tiny(10)).unwrap();
    let mut store = TrajectoryStore::new();
    store.push(traj(&[0, 1, 2], 0.0, &[1]));
    let max: Vec<NodeId> = (0..64).map(NodeId).collect();
    let q = UotsQuery::new(max, kws(&[1])).unwrap();
    let results = run_all(&net, &store, &q);
    let oracle_ids = results[0].1.ids();
    for (name, r) in &results {
        assert_eq!(r.ids(), oracle_ids, "{name}");
    }
    let too_many: Vec<NodeId> = (0..65).map(NodeId).collect();
    assert!(UotsQuery::new(too_many, kws(&[])).is_err());
}

#[test]
fn single_trajectory_single_sample_store() {
    let net = grid_city(&GridCityConfig::tiny(4)).unwrap();
    let mut store = TrajectoryStore::new();
    store.push(traj(&[7], 500.0, &[]));
    let q = UotsQuery::new(vec![NodeId(0), NodeId(15)], kws(&[2])).unwrap();
    for (name, r) in run_all(&net, &store, &q) {
        assert_eq!(r.matches.len(), 1, "{name}");
        assert_eq!(r.matches[0].id, TrajectoryId(0), "{name}");
        assert_eq!(r.matches[0].textual, 0.0, "{name}");
    }
}

#[test]
fn every_trajectory_identical_forces_full_tie_break() {
    // 20 identical trajectories: ranking must be by ascending id everywhere
    let net = grid_city(&GridCityConfig::tiny(6)).unwrap();
    let mut store = TrajectoryStore::new();
    for _ in 0..20 {
        store.push(traj(&[0, 1, 7], 100.0, &[3, 4]));
    }
    let q = UotsQuery::new(vec![NodeId(0), NodeId(8)], kws(&[3]))
        .unwrap()
        .reoptioned(QueryOptions {
            k: 5,
            ..Default::default()
        })
        .unwrap();
    for (name, r) in run_all(&net, &store, &q) {
        let expect: Vec<TrajectoryId> = (0..5).map(TrajectoryId).collect();
        assert_eq!(r.ids(), expect, "{name}");
    }
}

#[test]
fn lambda_one_matches_network_distances_exactly() {
    // pure spatial query on a single-sample trajectory: similarity must be
    // exactly e^(-sd(o, p)) with sd verified by A*
    let net = grid_city(&GridCityConfig::new(12, 12).with_seed(5)).unwrap();
    let mut store = TrajectoryStore::new();
    store.push(traj(&[77], 100.0, &[1]));
    let q = UotsQuery::with_options(
        vec![NodeId(3)],
        kws(&[]),
        vec![],
        QueryOptions {
            weights: Weights::lambda(1.0).unwrap(),
            ..Default::default()
        },
    )
    .unwrap();
    let results = run_all(&net, &store, &q);
    let sd = AStar::new(&net).distance(NodeId(3), NodeId(77)).unwrap();
    let expect = (-sd).exp();
    for (name, r) in results {
        assert!(
            (r.matches[0].similarity - expect).abs() < 1e-9,
            "{name}: {} vs {}",
            r.matches[0].similarity,
            expect
        );
    }
}

#[test]
fn lambda_zero_is_pure_jaccard() {
    let net = grid_city(&GridCityConfig::tiny(5)).unwrap();
    let mut store = TrajectoryStore::new();
    store.push(traj(&[0], 0.0, &[1, 2, 3]));
    store.push(traj(&[24], 0.0, &[1, 2]));
    let q = UotsQuery::with_options(
        vec![NodeId(12)],
        kws(&[1, 2]),
        vec![],
        QueryOptions {
            weights: Weights::lambda(0.0).unwrap(),
            k: 2,
            ..Default::default()
        },
    )
    .unwrap();
    for (name, r) in run_all(&net, &store, &q) {
        // τ1 has Jaccard 1.0 (exact match), τ0 has 2/3
        assert_eq!(r.matches[0].id, TrajectoryId(1), "{name}");
        assert!((r.matches[0].similarity - 1.0).abs() < 1e-12, "{name}");
        assert!(
            (r.matches[1].similarity - 2.0 / 3.0).abs() < 1e-12,
            "{name}"
        );
    }
}

#[test]
fn duplicate_query_locations_collapse() {
    let net = grid_city(&GridCityConfig::tiny(5)).unwrap();
    let mut store = TrajectoryStore::new();
    store.push(traj(&[0, 1], 0.0, &[1]));
    store.push(traj(&[20, 21], 0.0, &[1]));
    let q_dup =
        UotsQuery::new(vec![NodeId(2), NodeId(2), NodeId(2), NodeId(14)], kws(&[1])).unwrap();
    let q_clean = UotsQuery::new(vec![NodeId(2), NodeId(14)], kws(&[1])).unwrap();
    assert_eq!(q_dup.num_locations(), 2);
    let vidx = store.build_vertex_index(net.num_nodes());
    let db = Database::new(&net, &store, &vidx);
    let a = Expansion::default().run(&db, &q_dup).unwrap();
    let b = Expansion::default().run(&db, &q_clean).unwrap();
    assert_eq!(a.ids(), b.ids());
    assert!((a.matches[0].similarity - b.matches[0].similarity).abs() < 1e-12);
}

#[test]
fn trajectories_spanning_midnight_boundaries() {
    let net = grid_city(&GridCityConfig::tiny(4)).unwrap();
    let mut store = TrajectoryStore::new();
    // ends exactly at the day boundary
    store.push(
        Trajectory::new(
            vec![
                Sample {
                    node: NodeId(0),
                    time: 86_300.0,
                },
                Sample {
                    node: NodeId(1),
                    time: 86_400.0,
                },
            ],
            kws(&[1]),
        )
        .unwrap(),
    );
    // starts at zero
    store.push(traj(&[2, 3], 0.0, &[1]));
    let tidx = store.build_timestamp_index();
    let vidx = store.build_vertex_index(net.num_nodes());
    let db = Database::new(&net, &store, &vidx).with_timestamp_index(&tidx);
    let q = UotsQuery::with_options(
        vec![NodeId(0)],
        kws(&[]),
        vec![86_400.0],
        QueryOptions {
            weights: Weights::new(0.3, 0.0, 0.7).unwrap(),
            k: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let r = Expansion::default().run(&db, &q).unwrap();
    let oracle = BruteForce.run(&db, &q).unwrap();
    assert_eq!(r.ids(), oracle.ids());
    // the late-night trajectory matches the 24:00 preference best
    assert_eq!(r.matches[0].id, TrajectoryId(0));
}

#[test]
fn k_equal_to_store_size_with_heavy_duplicates() {
    let net = grid_city(&GridCityConfig::tiny(6)).unwrap();
    let mut store = TrajectoryStore::new();
    for i in 0..12u32 {
        store.push(traj(&[i % 4, i % 4 + 6], 100.0 * i as f64, &[i % 3]));
    }
    let q = UotsQuery::new(vec![NodeId(0)], kws(&[0]))
        .unwrap()
        .reoptioned(QueryOptions {
            k: 12,
            ..Default::default()
        })
        .unwrap();
    for (name, r) in run_all(&net, &store, &q) {
        assert_eq!(r.matches.len(), 12, "{name}");
        assert!(r.is_ranked(), "{name}");
    }
}

#[test]
fn extreme_decay_scales_still_agree_with_oracle() {
    let net = grid_city(&GridCityConfig::tiny(8)).unwrap();
    let mut store = TrajectoryStore::new();
    for i in 0..15u32 {
        store.push(traj(
            &[i * 4 % 64, (i * 4 + 1) % 64],
            1_000.0 * i as f64,
            &[i % 5],
        ));
    }
    for decay_km in [0.01, 100.0] {
        let q = UotsQuery::with_options(
            vec![NodeId(0), NodeId(63)],
            kws(&[1, 2]),
            vec![],
            QueryOptions {
                decay_km,
                k: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let vidx = store.build_vertex_index(net.num_nodes());
        let kidx = store.build_keyword_index(8);
        let db = Database::new(&net, &store, &vidx).with_keyword_index(&kidx);
        let fast = Expansion::default().run(&db, &q).unwrap();
        let oracle = BruteForce.run(&db, &q).unwrap();
        assert_eq!(fast.ids(), oracle.ids(), "decay {decay_km}");
        for (f, o) in fast.matches.iter().zip(oracle.matches.iter()) {
            assert!((f.similarity - o.similarity).abs() < 1e-9);
        }
    }
}

#[test]
fn revisiting_trajectories_count_each_vertex_once_in_the_index() {
    // a trajectory bouncing between two vertices must behave identically to
    // its deduplicated twin for spatial similarity (min distance semantics)
    let net = grid_city(&GridCityConfig::tiny(5)).unwrap();
    let mut store = TrajectoryStore::new();
    store.push(traj(&[0, 1, 0, 1, 0, 1], 0.0, &[1]));
    store.push(traj(&[0, 1], 0.0, &[1]));
    let q = UotsQuery::new(vec![NodeId(12)], kws(&[1]))
        .unwrap()
        .reoptioned(QueryOptions {
            k: 2,
            ..Default::default()
        })
        .unwrap();
    for (name, r) in run_all(&net, &store, &q) {
        assert_eq!(r.matches.len(), 2, "{name}");
        assert!(
            (r.matches[0].similarity - r.matches[1].similarity).abs() < 1e-12,
            "{name}: revisits must not change min-distance similarity"
        );
    }
}
