//! Property tests for the cache-friendly data layouts (`core::csr`,
//! `core::keywords`) and the versioned dataset codec:
//!
//! * bitset / galloping keyword intersections produce the **exact** counts
//!   and bit-identical similarities of the legacy `KeywordSet` merge walk,
//!   for vocabulary widths on both sides of the bitset threshold;
//! * CSR construction round-trips arbitrary raw graphs — every edge
//!   exactly once, weights preserved, isolated vertices kept — including
//!   multi-edges and self-loops `NetworkBuilder` would reject;
//! * one batched multi-source expansion settles bit-identical distances
//!   to `m` independent single-source runs, including on disconnected
//!   graphs where sources exhaust at different times;
//! * the UOTSDS2 vocab-table section survives the same corruption model
//!   `persist_proptests.rs` applies to the base format (truncation,
//!   appended garbage), and legacy UOTSDS1 payloads still load via
//!   interning-on-load.

use proptest::prelude::*;
use uots::datagen::persist;
use uots::prelude::*;
use uots::{KeywordId, TextSimilarity};
use uots_core::csr::{CsrGraph, MultiSourceExpansion};
use uots_core::keywords::{galloping_intersection_len, KeywordBlocks, MAX_BITSET_BITS};
use uots_text::KeywordSet;

const MEASURES: [TextSimilarity; 4] = [
    TextSimilarity::Jaccard,
    TextSimilarity::Dice,
    TextSimilarity::Cosine,
    TextSimilarity::Overlap,
];

fn kw_set(ids: &[u32]) -> KeywordSet {
    KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
}

/// Picks a vocabulary width straddling [`MAX_BITSET_BITS`]: band 0 is
/// firmly bitset, band 1 brackets the threshold from both sides, band 2
/// is firmly galloping.
fn pick_vocab(band: usize, offset: usize) -> usize {
    match band % 3 {
        0 => 1 + offset % 64,
        1 => MAX_BITSET_BITS - 80 + offset % 160,
        _ => 2000 + offset % 2000,
    }
}

/// Normalizes an undirected edge to `(min, max, weight bits)` for exact
/// multiset comparison.
fn norm(edges: &[(u32, u32, f64)]) -> Vec<(u32, u32, u64)> {
    let mut out: Vec<(u32, u32, u64)> = edges
        .iter()
        .map(|&(a, b, w)| (a.min(b), a.max(b), w.to_bits()))
        .collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite (b), textual half: for every measure, both dense modes
    /// reproduce the legacy merge walk bit-for-bit — exact counts in,
    /// identical floats out. Query ids beyond the table width must be
    /// counted in |A| without ever matching.
    #[test]
    fn dense_textual_matches_keywordset_oracle(
        band in 0usize..3,
        offset in any::<usize>(),
        raw_sets in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), 0..24), 1..20),
        raw_query in proptest::collection::vec(any::<u32>(), 0..24),
    ) {
        let vocab = pick_vocab(band, offset);
        // trajectory ids live inside the vocabulary; the query may carry a
        // few foreign ids beyond it (the `+ 64` headroom)
        let sets: Vec<KeywordSet> = raw_sets
            .iter()
            .map(|ids| kw_set(&ids.iter().map(|&i| i % vocab as u32).collect::<Vec<_>>()))
            .collect();
        let query = kw_set(
            &raw_query
                .iter()
                .map(|&i| i % (vocab as u32 + 64))
                .collect::<Vec<_>>(),
        );
        let blocks = KeywordBlocks::from_sets(sets.iter(), vocab);
        prop_assert_eq!(blocks.is_bitset(), blocks.width() <= MAX_BITSET_BITS);
        prop_assert!(blocks.width() >= vocab);
        let q = blocks.prepare(&query);
        for (i, s) in sets.iter().enumerate() {
            let tid = TrajectoryId(i as u32);
            let (inter, a_len, b_len) = blocks.counts(&q, tid, s);
            prop_assert_eq!(inter, query.intersection_len(s), "row {}", i);
            prop_assert_eq!((a_len, b_len), (query.len(), s.len()), "row {}", i);
            for m in MEASURES {
                prop_assert_eq!(
                    blocks.textual(m, &q, tid, s).to_bits(),
                    m.similarity(&query, s).to_bits(),
                    "{:?} row {}", m, i
                );
            }
        }
    }

    /// The bitset→galloping switchover at exactly [`MAX_BITSET_BITS`]
    /// vocabulary bits: widths 1023 and 1024 must select the bitset
    /// (1024 bits = 16 whole words), width 1025 the galloping fallback,
    /// and all three must reproduce the `KeywordSet` oracle exactly —
    /// counts and similarity bits — with the boundary bit (`width − 1`)
    /// forced live on both sides of every comparison.
    #[test]
    fn switchover_boundary_widths_pin_both_modes_to_the_oracle(
        delta in 0usize..3, // width = 1023 + delta
        raw_sets in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), 0..32), 1..12),
        raw_query in proptest::collection::vec(any::<u32>(), 0..32),
    ) {
        let width = MAX_BITSET_BITS - 1 + delta; // 1023 | 1024 | 1025
        let top = (width - 1) as u32;
        // every set carries the boundary bit plus ids folded into the
        // width, concentrated near both word boundaries (0..64 and the
        // last partial word) to stress the masking arithmetic
        let fold = |i: u32| match i % 3 {
            0 => i % 64,
            1 => top.saturating_sub(i % 64),
            _ => i % width as u32,
        };
        let sets: Vec<KeywordSet> = raw_sets
            .iter()
            .map(|ids| {
                let mut v: Vec<u32> = ids.iter().map(|&i| fold(i)).collect();
                v.push(top);
                kw_set(&v)
            })
            .collect();
        let mut qids: Vec<u32> = raw_query.iter().map(|&i| fold(i)).collect();
        qids.push(top);
        let query = kw_set(&qids);
        let blocks = KeywordBlocks::from_sets(sets.iter(), width);
        prop_assert_eq!(blocks.width(), width);
        prop_assert_eq!(
            blocks.is_bitset(),
            width <= MAX_BITSET_BITS,
            "mode at width {} must flip exactly past {}", width, MAX_BITSET_BITS
        );
        let q = blocks.prepare(&query);
        for (i, s) in sets.iter().enumerate() {
            let tid = TrajectoryId(i as u32);
            let (inter, a_len, b_len) = blocks.counts(&q, tid, s);
            prop_assert_eq!(inter, query.intersection_len(s), "width {} row {}", width, i);
            prop_assert_eq!((a_len, b_len), (query.len(), s.len()));
            prop_assert!(inter >= 1, "boundary bit {} must intersect", top);
            for m in MEASURES {
                prop_assert_eq!(
                    blocks.textual(m, &q, tid, s).to_bits(),
                    m.similarity(&query, s).to_bits(),
                    "{:?} width {} row {}", m, width, i
                );
            }
        }
    }

    /// The galloping kernel alone agrees with the sorted-merge oracle on
    /// arbitrary id slices (the fallback mode's only nontrivial part).
    #[test]
    fn galloping_intersection_matches_merge(
        a in proptest::collection::vec(0u32..5000, 0..40),
        b in proptest::collection::vec(0u32..5000, 0..40),
    ) {
        let (a, b) = (kw_set(&a), kw_set(&b));
        prop_assert_eq!(
            galloping_intersection_len(a.ids(), b.ids()),
            a.intersection_len(&b)
        );
    }

    /// Satellite (b), spatial half: CSR round-trips arbitrary raw graphs.
    /// Every input edge appears in `edge_list()` exactly once with its
    /// weight bits intact; vertex count (hence isolated vertices) is
    /// preserved; self-loops count once per row, other edges once per
    /// endpoint row.
    #[test]
    fn csr_round_trips_arbitrary_graphs(
        n in 1usize..30,
        raw_edges in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), 0.01f64..50.0), 0..60),
    ) {
        let edges: Vec<(u32, u32, f64)> = raw_edges
            .iter()
            .map(|&(a, b, w)| (a % n as u32, b % n as u32, w))
            .collect();
        let g = CsrGraph::from_edges(n, &edges);
        prop_assert_eq!(g.num_nodes(), n);
        prop_assert_eq!(norm(&g.edge_list()), norm(&edges));
        let self_loops = edges.iter().filter(|&&(a, b, _)| a == b).count();
        prop_assert_eq!(g.num_entries(), edges.len() * 2 - self_loops);
        let degree_sum: usize = (0..n as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, g.num_entries());
    }

    /// Satellite (c): one shared-frontier batch over `m` sources settles
    /// exactly the vertices, with exactly the distance bits, that `m`
    /// independent single-source drains produce — on arbitrary (typically
    /// disconnected) graphs, with duplicate sources allowed.
    #[test]
    fn multi_source_expansion_matches_independent_runs(
        n in 1usize..30,
        raw_edges in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), 0.01f64..50.0), 0..40),
        picks in proptest::collection::vec(any::<u32>(), 1..5),
    ) {
        let edges: Vec<(u32, u32, f64)> = raw_edges
            .iter()
            .map(|&(a, b, w)| (a % n as u32, b % n as u32, w))
            .collect();
        let g = CsrGraph::from_edges(n, &edges);
        let sources: Vec<u32> = picks.iter().map(|&p| p % n as u32).collect();
        let batch = MultiSourceExpansion::run(&g, &sources);
        prop_assert!(batch.is_exhausted());
        for (si, &s) in sources.iter().enumerate() {
            let solo = MultiSourceExpansion::run(&g, &[s]);
            prop_assert_eq!(
                batch.reached_count(si), solo.reached_count(0), "source {}", s
            );
            for v in 0..n as u32 {
                match (batch.distance(si, v), solo.distance(0, v)) {
                    (Some(x), Some(y)) => prop_assert_eq!(
                        x.to_bits(), y.to_bits(), "distance drift at v{} from s{}", v, s
                    ),
                    (None, None) => {}
                    other => panic!("settled mismatch at v{v} from s{s}: {other:?}"),
                }
            }
        }
    }

    /// Satellite (d): the v2 payload (with its vocab-table section) obeys
    /// the same corruption contract as the base format — any truncation
    /// is rejected without panicking.
    #[test]
    fn v2_truncation_is_rejected_not_a_panic(
        trips in 1usize..12,
        seed in any::<u64>(),
        cut in any::<usize>(),
    ) {
        let cfg = DatasetConfig::small(trips, seed % 1000);
        let ds = Dataset::build(&cfg).expect("dataset builds");
        let bytes = persist::save(&ds, &cfg.tags, cfg.tag_seed);
        prop_assert!(persist::load(&bytes).is_ok(), "sanity: untouched payload loads");
        let cut = cut % bytes.len();
        prop_assert!(
            persist::load(&bytes[..cut]).is_err(),
            "truncation to {} of {} bytes must not load", cut, bytes.len()
        );
    }

    /// ... and any appended suffix is rejected too (the vocab table is
    /// length-framed, so it cannot absorb trailing garbage).
    #[test]
    fn v2_appended_garbage_is_rejected(
        seed in any::<u64>(),
        suffix in proptest::collection::vec(any::<u8>(), 1..200),
    ) {
        let cfg = DatasetConfig::small(5, seed % 100);
        let ds = Dataset::build(&cfg).expect("dataset builds");
        let mut bytes = persist::save(&ds, &cfg.tags, cfg.tag_seed).to_vec();
        bytes.extend_from_slice(&suffix);
        prop_assert!(persist::load(&bytes).is_err());
    }

    /// Satellite (d): pre-vocab-table (UOTSDS1) payloads still load, and
    /// interning-on-load reconstructs a dataset that answers queries
    /// identically to the v2 round trip.
    #[test]
    fn legacy_v1_payloads_load_identically(
        trips in 1usize..20,
        seed in any::<u64>(),
    ) {
        let cfg = DatasetConfig::small(trips, seed % 1000);
        let ds = Dataset::build(&cfg).expect("dataset builds");
        let v1 = persist::load(&persist::save_legacy_v1(&ds, &cfg.tags, cfg.tag_seed))
            .expect("legacy payload loads");
        let v2 = persist::load(&persist::save(&ds, &cfg.tags, cfg.tag_seed))
            .expect("v2 payload loads");
        prop_assert_eq!(&v1.network, &v2.network);
        prop_assert_eq!(v1.vocab.len(), v2.vocab.len());
        prop_assert_eq!(v1.store.len(), v2.store.len());
        let spec = &workload::generate(&ds, &workload::WorkloadConfig::default())[0];
        let q = UotsQuery::new(spec.locations.clone(), spec.keywords.clone()).unwrap();
        let ra = Expansion::default().run(&uots::db(&v1), &q).unwrap();
        let rb = Expansion::default().run(&uots::db(&v2), &q).unwrap();
        prop_assert_eq!(ra.ids(), rb.ids());
        for (a, b) in ra.matches.iter().zip(rb.matches.iter()) {
            prop_assert_eq!(a.similarity.to_bits(), b.similarity.to_bits());
        }
    }
}
