//! Differential harness for the shared distance cache **and** the
//! cache-friendly data layouts: over hundreds of randomized cases, every
//! algorithm must return **bit-identical** results with and without the
//! cache, on both the legacy (HashMap adjacency / `KeywordSet`
//! intersection) and the CSR/bitset layouts — and all of them must equal
//! the brute-force oracle.
//!
//! The cache is a pure memo: replaying a cached expansion prefix yields
//! exactly the settle sequence a fresh Dijkstra would produce (the heap
//! order is total — distance, then node id — so ties cannot reorder).
//! The layouts are pure re-encodings: CSR Dijkstra settles the same
//! (distance, node) sequence and the bitset/galloping Jaccard routes the
//! same integer counts through the same float arithmetic. These tests are
//! the executable form of both claims, across:
//!
//! * uniform random connected networks and trajectory stores;
//! * `datagen::adversarial::hub_spike` — one vertex fans out to the whole
//!   store, maximal index pressure;
//! * `datagen::adversarial::split_city` — disconnected islands, so
//!   expansions exhaust and the infinite-distance sweep path runs;
//! * engineered exact ties (duplicated trajectories) at every `k`;
//! * small cache capacities, so eviction and admission rejection happen
//!   *during* the differential run;
//! * landmark-equipped contexts (ALT admission pruning enabled).
//!
//! Seeds are fixed: CI runs reproduce these exact cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use uots::datagen::adversarial::{hub_spike, split_city};
use uots::network::landmarks::Landmarks;
use uots::prelude::*;
use uots::{
    DistanceCache, EpochManager, EpochSnapshot, KeywordSet, LayoutTables, NetworkBuilder,
    QueryResult, SearchContext, TrajectoryStore, UotsQuery,
};
use uots_core::algorithms::{BruteForce, Expansion, IknnBaseline, TextFirst};
use uots_text::KeywordId;
use uots_trajectory::{Sample, Trajectory};

/// Everything observable about a result, bit-exact. Two runs are "the
/// same" iff their fingerprints are equal — ids in order, every similarity
/// channel to the last mantissa bit.
fn fingerprint(r: &QueryResult) -> Vec<(TrajectoryId, u64, u64, u64, u64)> {
    r.matches
        .iter()
        .map(|m| {
            (
                m.id,
                m.similarity.to_bits(),
                m.spatial.to_bits(),
                m.textual.to_bits(),
                m.temporal.to_bits(),
            )
        })
        .collect()
}

/// The four algorithms under differential test (the brute force is the
/// oracle and additionally tested against itself cached-vs-uncached).
fn lineup() -> Vec<(&'static str, Box<dyn Algorithm>)> {
    vec![
        ("expansion", Box::new(Expansion::default())),
        (
            "expansion-rr",
            Box::new(Expansion::new(Scheduler::RoundRobin)),
        ),
        (
            "iknn-baseline",
            Box::new(IknnBaseline {
                settles_per_round: 5,
            }),
        ),
        ("text-first", Box::new(TextFirst)),
    ]
}

/// Runs one (database, query) case on **both data layouts**: the legacy
/// oracle uncached sets the expected fingerprint, then the CSR/bitset
/// oracle and every algorithm — uncached and under `ctx`, legacy and
/// layout — must reproduce it bit-exactly. Both representations share
/// `ctx`'s cache on purpose: prefixes recorded by one layout must replay
/// bit-identically under the other (the cache stores (distance, node)
/// settle sequences, which the layouts agree on by construction).
/// Returns the number of differential comparisons performed.
fn check_case<'a>(
    db: &Database<'a>,
    layout: &'a LayoutTables,
    q: &UotsQuery,
    ctx: &SearchContext,
    label: &str,
) -> usize {
    let want = fingerprint(&BruteForce.run(db, q).expect("oracle runs"));
    let mut comparisons = 0;
    for (rep, rdb) in [("legacy", *db), ("layout", db.with_layout(layout))] {
        if rep == "layout" {
            let oracle = BruteForce.run(&rdb, q).expect("layout oracle runs");
            assert_eq!(
                want,
                fingerprint(&oracle),
                "{label}: layout brute force diverged"
            );
            comparisons += 1;
        }
        let oracle_cached = BruteForce
            .run_with_cache(&rdb, q, ctx)
            .expect("oracle cached");
        assert_eq!(
            want,
            fingerprint(&oracle_cached),
            "{label}: cached {rep} brute force diverged"
        );
        comparisons += 1;
        for (name, algo) in lineup() {
            let uncached = algo.run(&rdb, q).expect("uncached run");
            assert_eq!(
                want,
                fingerprint(&uncached),
                "{label}: uncached {rep} {name} diverged from oracle"
            );
            let cached = algo.run_with_cache(&rdb, q, ctx).expect("cached run");
            assert_eq!(
                want,
                fingerprint(&cached),
                "{label}: cached {rep} {name} diverged from oracle"
            );
            comparisons += 2;
        }
    }
    comparisons
}

/// A connected random network: spanning tree plus extra chords.
fn random_network(rng: &mut StdRng, n: usize) -> (uots::RoadNetwork, Vec<NodeId>) {
    let mut b = NetworkBuilder::new();
    let ids: Vec<NodeId> = (0..n)
        .map(|_| b.add_node(Point::new(rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 10.0)))
        .collect();
    for i in 1..n {
        let j = rng.gen_range(0..i);
        b.add_edge(ids[i], ids[j], Some(rng.gen::<f64>() * 4.0 + 0.05))
            .expect("valid edge");
    }
    for _ in 0..n {
        let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if i != j {
            b.add_edge(ids[i], ids[j], Some(rng.gen::<f64>() * 4.0 + 0.05))
                .expect("valid edge");
        }
    }
    (b.build().expect("non-empty"), ids)
}

/// A random store over `n` network nodes; `dup` copies of each trajectory
/// force exact similarity ties.
fn random_store(rng: &mut StdRng, n: usize, trips: usize, dup: usize) -> TrajectoryStore {
    let mut store = TrajectoryStore::new();
    for _ in 0..trips {
        let len = rng.gen_range(1..7);
        let t0 = rng.gen::<f64>() * 80_000.0;
        let samples: Vec<Sample> = (0..len)
            .map(|i| Sample {
                node: NodeId(rng.gen_range(0..n) as u32),
                time: (t0 + 30.0 * i as f64).min(86_400.0),
            })
            .collect();
        let tags: Vec<KeywordId> = (0..rng.gen_range(0..4))
            .map(|_| KeywordId(rng.gen_range(0..12)))
            .collect();
        let t = Trajectory::new(samples, KeywordSet::from_ids(tags)).expect("valid");
        for _ in 0..dup.max(1) {
            store.push(t.clone());
        }
    }
    store
}

/// A random query over `n` nodes; `k` spans top-1 through top-5.
fn random_query(rng: &mut StdRng, n: usize) -> UotsQuery {
    let m = rng.gen_range(1..4);
    let locations: Vec<NodeId> = (0..m).map(|_| NodeId(rng.gen_range(0..n) as u32)).collect();
    let kws: Vec<KeywordId> = (0..rng.gen_range(0..4))
        .map(|_| KeywordId(rng.gen_range(0..12)))
        .collect();
    let lambda = [0.0, 0.3, 0.5, 0.7, 1.0][rng.gen_range(0..5usize)];
    let k = rng.gen_range(1..6);
    UotsQuery::with_options(
        locations,
        KeywordSet::from_ids(kws),
        vec![],
        QueryOptions {
            weights: Weights::lambda(lambda).expect("valid lambda"),
            k,
            ..Default::default()
        },
    )
    .expect("valid query")
}

/// A cache-bearing context for dataset `i`: capacities cycle through
/// tiny (eviction-heavy), small and ample; odd datasets add landmarks.
fn context_for(i: usize, net: &uots::RoadNetwork) -> SearchContext {
    let capacity = [64usize, 1 << 10, 1 << 16][i % 3];
    let ctx = SearchContext::with_cache(Arc::new(DistanceCache::new(capacity)));
    if i % 2 == 1 {
        ctx.with_landmarks(Arc::new(Landmarks::select(net, 3, NodeId(0))))
    } else {
        ctx
    }
}

/// Uniform random graphs and stores: the bulk of the case count. One
/// shared cache per dataset, so later queries replay earlier prefixes.
#[test]
fn differential_uniform_random() {
    let mut rng = StdRng::seed_from_u64(0xd1ff_0001);
    let mut cases = 0;
    for ds_i in 0..12 {
        let n = rng.gen_range(6..22);
        let (net, _) = random_network(&mut rng, n);
        // every third dataset duplicates trajectories to engineer ties
        let dup = if ds_i % 3 == 2 { 3 } else { 1 };
        let trips = rng.gen_range(1..20);
        let store = random_store(&mut rng, n, trips, dup);
        let vidx = store.build_vertex_index(n);
        let kidx = store.build_keyword_index(12);
        let db = Database::new(&net, &store, &vidx).with_keyword_index(&kidx);
        let layout = LayoutTables::build(&net, &store, 12);
        let ctx = context_for(ds_i, &net);
        for q_i in 0..10 {
            let q = random_query(&mut rng, n);
            cases += check_case(&db, &layout, &q, &ctx, &format!("uniform ds{ds_i} q{q_i}"));
        }
    }
    assert!(cases >= 19 * 120, "expected ≥19 comparisons × 120 cases");
}

/// Hub-spike datasets: one vertex's posting list covers the whole store.
#[test]
fn differential_hub_spike() {
    let mut rng = StdRng::seed_from_u64(0xd1ff_0002);
    for (ds_i, seed) in [17u64, 29].into_iter().enumerate() {
        let ds = hub_spike(24, seed).expect("hub-spike builds");
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
            .with_keyword_index(&ds.keyword_index);
        let layout = LayoutTables::build(&ds.network, &ds.store, 12);
        let n = ds.network.num_nodes();
        let ctx = context_for(ds_i, &ds.network);
        for q_i in 0..20 {
            let mut q = random_query(&mut rng, n);
            if q_i % 4 == 0 {
                // aim a location straight at the hub: worst-case fan-out
                let hub = NodeId((n / 2) as u32);
                q = UotsQuery::with_options(
                    vec![hub],
                    KeywordSet::from_ids((0..2).map(|_| KeywordId(rng.gen_range(0..12)))),
                    vec![],
                    q.options().clone(),
                )
                .expect("hub query");
            }
            check_case(
                &db,
                &layout,
                &q,
                &ctx,
                &format!("hub-spike ds{ds_i} q{q_i}"),
            );
        }
    }
}

/// Split-city datasets: expansions exhaust inside their island, so the
/// unreachable-∞ sweep must behave identically cached and uncached.
#[test]
fn differential_split_city() {
    let mut rng = StdRng::seed_from_u64(0xd1ff_0003);
    for (ds_i, seed) in [41u64, 57].into_iter().enumerate() {
        let ds = split_city(3, 9, seed).expect("split-city builds");
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
            .with_keyword_index(&ds.keyword_index);
        let layout = LayoutTables::build(&ds.network, &ds.store, 12);
        let n = ds.network.num_nodes();
        let ctx = context_for(ds_i, &ds.network);
        for q_i in 0..20 {
            let q = random_query(&mut rng, n);
            check_case(
                &db,
                &layout,
                &q,
                &ctx,
                &format!("split-city ds{ds_i} q{q_i}"),
            );
        }
    }
}

/// Replaying the *same* query against a warm cache — the highest-hit-rate
/// path — still changes nothing, run after run.
#[test]
fn differential_warm_replay_is_stable() {
    let mut rng = StdRng::seed_from_u64(0xd1ff_0004);
    let n = 18;
    let (net, _) = random_network(&mut rng, n);
    let store = random_store(&mut rng, n, 14, 2);
    let vidx = store.build_vertex_index(n);
    let kidx = store.build_keyword_index(12);
    let db = Database::new(&net, &store, &vidx).with_keyword_index(&kidx);
    let layout = LayoutTables::build(&net, &store, 12);
    let cache = Arc::new(DistanceCache::new(1 << 14));
    let ctx = SearchContext::with_cache(Arc::clone(&cache));
    let queries: Vec<UotsQuery> = (0..5).map(|_| random_query(&mut rng, n)).collect();
    for round in 0..4 {
        for (q_i, q) in queries.iter().enumerate() {
            check_case(&db, &layout, q, &ctx, &format!("warm round{round} q{q_i}"));
        }
    }
    let stats = cache.stats();
    assert!(stats.hits > 0, "warm replay should hit: {stats:?}");
}

/// One random trajectory for the ingest path (same shape as
/// [`random_store`] generates).
fn random_traj(rng: &mut StdRng, n: usize) -> Trajectory {
    let len = rng.gen_range(1..7);
    let t0 = rng.gen::<f64>() * 80_000.0;
    let samples: Vec<Sample> = (0..len)
        .map(|i| Sample {
            node: NodeId(rng.gen_range(0..n) as u32),
            time: (t0 + 30.0 * i as f64).min(86_400.0),
        })
        .collect();
    let tags: Vec<KeywordId> = (0..rng.gen_range(0..4))
        .map(|_| KeywordId(rng.gen_range(0..12)))
        .collect();
    Trajectory::new(samples, KeywordSet::from_ids(tags)).expect("valid")
}

/// The ingest/rebuild oracle for one published epoch and one query: every
/// algorithm's answer on the **live** snapshot (retired trips masked, ids
/// stable), with and without the cross-epoch cache, must map — through the
/// order-preserving compaction — onto the bit-exact answer a from-scratch
/// database over only the surviving trajectories gives.
fn check_epoch_case(snapshot: &EpochSnapshot, q: &UotsQuery, ctx: &SearchContext, label: &str) {
    let net = snapshot.network();
    let (compacted, id_map) = snapshot.rebuild_compacted();
    let vidx = compacted.build_vertex_index(net.num_nodes());
    let kidx = compacted.build_keyword_index(12);
    let oracle_db = Database::new(net, &compacted, &vidx).with_keyword_index(&kidx);
    let live_db = snapshot.database();
    let want = fingerprint(&BruteForce.run(&oracle_db, q).expect("rebuild oracle runs"));
    let map_fp = |r: &QueryResult| -> Vec<(TrajectoryId, u64, u64, u64, u64)> {
        fingerprint(r)
            .into_iter()
            .map(|(id, s, sp, tx, tm)| {
                let mapped = id_map[id.index()]
                    .unwrap_or_else(|| panic!("{label}: live snapshot served retired {id}"));
                (mapped, s, sp, tx, tm)
            })
            .collect()
    };
    // The snapshot attaches its CSR/bitset tables; stripping `layout` gives
    // the legacy view of the *same* epoch — both must match the rebuild.
    let mut live_legacy = live_db;
    live_legacy.layout = None;
    for (rep, rdb) in [("layout", live_db), ("legacy", live_legacy)] {
        let oracle_live = BruteForce.run(&rdb, q).expect("live oracle runs");
        assert_eq!(
            want,
            map_fp(&oracle_live),
            "{label}: live {rep} brute force diverged"
        );
        for (name, algo) in lineup() {
            let uncached = algo.run(&rdb, q).expect("live uncached run");
            assert_eq!(
                want,
                map_fp(&uncached),
                "{label}: live {rep} {name} diverged from rebuild"
            );
            let cached = algo.run_with_cache(&rdb, q, ctx).expect("live cached run");
            assert_eq!(
                want,
                map_fp(&cached),
                "{label}: cached live {rep} {name} diverged from rebuild"
            );
        }
    }
}

/// The keystone differential: random interleavings of ingest / retire /
/// publish / query against an [`EpochManager`] answer exactly as a
/// from-scratch rebuild of the surviving trajectories at every published
/// epoch — for all four algorithms, with one distance cache kept warm
/// **across** the epoch swaps (it is keyed on the road network, which the
/// manager never replaces).
#[test]
fn differential_ingest_rebuild_oracle() {
    let mut rng = StdRng::seed_from_u64(0xd1ff_0005);
    for ds_i in 0..4 {
        let n = rng.gen_range(8..20);
        let (net, _) = random_network(&mut rng, n);
        let net = Arc::new(net);
        let trips = rng.gen_range(3..10);
        let store = random_store(&mut rng, n, trips, 1);
        let mgr = EpochManager::new(Arc::clone(&net), store, 12);
        let cache = Arc::new(DistanceCache::new([256usize, 1 << 14][ds_i % 2]));
        let ctx = SearchContext::with_cache(Arc::clone(&cache));
        let mut next_id = mgr.snapshot().store().len();
        let mut live_estimate = next_id;
        for round in 0..6 {
            for _ in 0..rng.gen_range(1..6) {
                if live_estimate <= 2 || rng.gen_bool(0.6) {
                    mgr.ingest(random_traj(&mut rng, n));
                    next_id += 1;
                    live_estimate += 1;
                } else {
                    let victim = TrajectoryId(rng.gen_range(0..next_id) as u32);
                    if mgr.retire(victim) {
                        live_estimate -= 1;
                    }
                }
            }
            let snapshot = mgr.publish();
            assert!(
                Arc::ptr_eq(snapshot.network(), &net),
                "publish must never replace the network (the cache key space)"
            );
            assert_eq!(snapshot.live().num_live(), live_estimate);
            for q_i in 0..4 {
                let q = random_query(&mut rng, n);
                check_epoch_case(
                    &snapshot,
                    &q,
                    &ctx,
                    &format!("ingest ds{ds_i} round{round} q{q_i}"),
                );
            }
        }
        let stats = cache.stats();
        assert!(
            stats.hits > 0,
            "ds{ds_i}: the cache must survive epoch swaps and keep hitting: {stats:?}"
        );
    }
}

/// Budget-interrupted queries agree with the rebuild too: `max_visited`
/// trips deterministically, and because compaction preserves id order the
/// live snapshot and the from-scratch rebuild visit corresponding
/// trajectories in the same sequence — so even *partial* (best-effort)
/// answers are bit-identical under the id map.
#[test]
fn differential_ingest_interrupted_queries_match_rebuild() {
    let mut rng = StdRng::seed_from_u64(0xd1ff_0006);
    let n = 16;
    let (net, _) = random_network(&mut rng, n);
    let net = Arc::new(net);
    let store = random_store(&mut rng, n, 10, 1);
    let mgr = EpochManager::new(Arc::clone(&net), store, 12);
    for _ in 0..6 {
        mgr.ingest(random_traj(&mut rng, n));
    }
    mgr.retire(TrajectoryId(1));
    mgr.retire(TrajectoryId(4));
    let snapshot = mgr.publish();
    let (compacted, id_map) = snapshot.rebuild_compacted();
    let vidx = compacted.build_vertex_index(n);
    let kidx = compacted.build_keyword_index(12);
    let oracle_db = Database::new(&net, &compacted, &vidx).with_keyword_index(&kidx);
    let live_db = snapshot.database();
    for q_i in 0..10 {
        let mut q = random_query(&mut rng, n);
        let mut opts = q.options().clone();
        opts.budget = ExecutionBudget::default().with_max_visited(rng.gen_range(1..6));
        q = UotsQuery::with_options(q.locations().to_vec(), q.keywords().clone(), vec![], opts)
            .expect("budgeted query");
        let live = Expansion::default().run(&live_db, &q).expect("live run");
        // the legacy view of the same snapshot must interrupt identically
        let mut legacy_db = live_db;
        legacy_db.layout = None;
        let legacy = Expansion::default()
            .run(&legacy_db, &q)
            .expect("legacy run");
        assert_eq!(
            fingerprint(&live),
            fingerprint(&legacy),
            "q{q_i}: interrupted layouts diverged"
        );
        let oracle = Expansion::default()
            .run(&oracle_db, &q)
            .expect("oracle run");
        let mapped: Vec<TrajectoryId> = live
            .ids()
            .iter()
            .map(|id| id_map[id.index()].expect("live answer is live"))
            .collect();
        assert_eq!(mapped, oracle.ids(), "q{q_i}: interrupted answers diverged");
        for (a, b) in live.matches.iter().zip(oracle.matches.iter()) {
            assert_eq!(
                a.similarity.to_bits(),
                b.similarity.to_bits(),
                "q{q_i}: interrupted similarity drift"
            );
        }
        assert_eq!(
            live.completeness, oracle.completeness,
            "q{q_i}: certified gaps must agree"
        );
    }
}

/// A query cancelled while publishes race underneath still returns a
/// certified best-effort answer drawn from exactly one epoch — the one its
/// snapshot pinned — never a torn mix of generations.
#[test]
fn differential_cancellation_mid_swap_stays_epoch_consistent() {
    let mut rng = StdRng::seed_from_u64(0xd1ff_0007);
    let n = 14;
    let (net, _) = random_network(&mut rng, n);
    let net = Arc::new(net);
    let store = random_store(&mut rng, n, 8, 1);
    let mgr = EpochManager::new(Arc::clone(&net), store, 12);
    let q = random_query(&mut rng, n);
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let churn = scope.spawn(|| {
            let mut churn_rng = StdRng::seed_from_u64(0xc4a9);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                mgr.ingest(random_traj(&mut churn_rng, n));
                mgr.publish();
            }
        });
        for _ in 0..20 {
            let snapshot = mgr.snapshot();
            let token = CancellationToken::new();
            token.cancel();
            let ctl = RunControl::with_token(token);
            let r = Expansion::default()
                .run_with(&snapshot.database(), &q, &ctl)
                .expect("cancelled run still returns");
            assert!(
                !r.completeness.is_exact(),
                "a cancelled run must be best-effort"
            );
            for id in r.ids() {
                assert!(
                    snapshot.live().is_live(id),
                    "{id} not live in the pinned epoch {}",
                    snapshot.epoch()
                );
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        churn.join().expect("churn thread");
    });
}
