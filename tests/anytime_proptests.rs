//! Property tests for the anytime-execution contract:
//!
//! * **Soundness of the certificate** — for every algorithm and every
//!   budget level, the returned `bound_gap` really bounds what was missed:
//!   `oracle[i].sim ≤ returned[i].sim + bound_gap` at every rank `i`
//!   (missing ranks count as similarity 0).
//! * **No invented answers** — budgeted results carry *exact* similarities
//!   of real trajectories and never beat the oracle at any rank.
//! * **Exact means exact** — a result tagged `Exact` is identical to the
//!   unbudgeted ranking.
//! * **Pre-cancelled runs** — a token cancelled before the first expansion
//!   step yields an empty best-effort result with `bound_gap = 1` for all
//!   four algorithms, never an error.
//! * **Poison-on-cancel** — an interrupted run never publishes its partial
//!   expansion state to a shared [`DistanceCache`], and a cache warmed
//!   before an interruption keeps serving bit-exact results after it.

use proptest::prelude::*;
use std::sync::Arc;
use uots::prelude::*;
use uots::{
    CancellationToken, DistanceCache, ExecutionBudget, Recorder, RunControl, SearchContext,
};

const EPS: f64 = 1e-9;

fn algorithms() -> Vec<Box<dyn Algorithm>> {
    vec![
        Box::new(Expansion::default()),
        Box::new(Expansion::new(Scheduler::RoundRobin)),
        Box::new(IknnBaseline {
            settles_per_round: 7,
        }),
        Box::new(TextFirst),
        Box::new(BruteForce),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn budgeted_answers_are_certified_sound(
        seed in 0u64..1_000,
        lambda in 0.0f64..=1.0,
        k in 1usize..5,
    ) {
        let ds = Dataset::build(&DatasetConfig::small(25, seed)).unwrap();
        let db = uots::db(&ds);
        let spec = &workload::generate(&ds, &workload::WorkloadConfig {
            num_queries: 1,
            seed: seed ^ 0x77,
            ..Default::default()
        })[0];
        let opts = QueryOptions {
            weights: Weights::lambda(lambda).unwrap(),
            k,
            ..Default::default()
        };
        let q = UotsQuery::with_options(
            spec.locations.clone(),
            spec.keywords.clone(),
            vec![],
            opts.clone(),
        )
        .unwrap();

        // full exact ranking: every trajectory's similarity
        let full = UotsQuery::with_options(
            spec.locations.clone(),
            spec.keywords.clone(),
            vec![],
            QueryOptions { k: ds.store.len(), ..opts.clone() },
        )
        .unwrap();
        let oracle = BruteForce.run(&db, &full).unwrap();
        let exact_sim: std::collections::HashMap<TrajectoryId, f64> =
            oracle.matches.iter().map(|m| (m.id, m.similarity)).collect();
        let oracle_topk: Vec<_> = oracle.matches.iter().take(k).collect();

        for algo in algorithms() {
            for max_settled in [0usize, 1, 4, 16, 64, 256, 4096, usize::MAX / 2] {
                let budget = ExecutionBudget::default().with_max_settled(max_settled);
                let bq = q.reoptioned(QueryOptions { budget, ..opts.clone() }).unwrap();
                let r = algo.run(&db, &bq).unwrap();
                let gap = r.completeness.bound_gap();

                prop_assert!(r.is_ranked(), "{}: ranked", algo.name());
                prop_assert!((0.0..=1.0).contains(&gap), "{}: gap {gap}", algo.name());
                prop_assert!(r.matches.len() <= k);

                // returned similarities are exact values of real trajectories
                for m in &r.matches {
                    let e = exact_sim.get(&m.id).copied().expect("real trajectory");
                    prop_assert!(
                        (m.similarity - e).abs() < EPS,
                        "{}: sim of {} is {} but exact is {e}",
                        algo.name(), m.id, m.similarity
                    );
                }

                // per-rank soundness: the certificate covers everything missed
                for (i, o) in oracle_topk.iter().enumerate() {
                    let returned = r.matches.get(i).map_or(0.0, |m| m.similarity);
                    prop_assert!(
                        o.similarity <= returned + gap + EPS,
                        "{} (budget {max_settled}): rank {i} oracle {} > returned {returned} + gap {gap}",
                        algo.name(), o.similarity
                    );
                    // and the budgeted run never beats the oracle
                    prop_assert!(returned <= o.similarity + EPS);
                }

                // a result claiming exactness must equal the oracle ranking
                if r.completeness.is_exact() {
                    let oracle_ids: Vec<_> = oracle_topk.iter().map(|m| m.id).collect();
                    prop_assert_eq!(
                        r.ids(), oracle_ids,
                        "{} (budget {}): Exact must match the oracle", algo.name(), max_settled
                    );
                }
            }
        }
    }

    #[test]
    fn unlimited_budget_is_always_exact(seed in 0u64..1_000) {
        let ds = Dataset::build(&DatasetConfig::small(20, seed)).unwrap();
        let db = uots::db(&ds);
        let spec = &workload::generate(&ds, &workload::WorkloadConfig {
            num_queries: 1,
            seed,
            ..Default::default()
        })[0];
        let q = UotsQuery::new(spec.locations.clone(), spec.keywords.clone()).unwrap();
        for algo in algorithms() {
            let r = algo.run(&db, &q).unwrap();
            prop_assert!(
                r.completeness.is_exact(),
                "{}: unlimited budget must be exact", algo.name()
            );
            prop_assert_eq!(r.completeness.bound_gap(), 0.0);
        }
    }
}

#[test]
fn pre_cancelled_token_yields_empty_best_effort_for_every_algorithm() {
    let ds = Dataset::build(&DatasetConfig::small(15, 42)).unwrap();
    let db = uots::db(&ds);
    let spec = &workload::generate(&ds, &workload::WorkloadConfig::default())[0];
    let q = UotsQuery::new(spec.locations.clone(), spec.keywords.clone()).unwrap();
    for algo in algorithms() {
        let token = CancellationToken::new();
        token.cancel();
        let ctl = RunControl::with_token(token);
        let r = algo
            .run_with(&db, &q, &ctl)
            .unwrap_or_else(|e| panic!("{}: cancellation must not error: {e}", algo.name()));
        assert!(r.matches.is_empty(), "{}: no matches", algo.name());
        assert!(
            !r.completeness.is_exact(),
            "{}: must be best-effort",
            algo.name()
        );
        assert_eq!(
            r.completeness.bound_gap(),
            1.0,
            "{}: nothing is certified",
            algo.name()
        );
        assert_eq!(r.metrics.interrupted, 1, "{}", algo.name());
    }
}

#[test]
fn interrupted_runs_poison_the_shared_cache_instead_of_publishing() {
    let ds = Dataset::build(&DatasetConfig::small(25, 11)).unwrap();
    let db = uots::db(&ds);
    let spec = &workload::generate(&ds, &workload::WorkloadConfig::default())[0];
    let q = UotsQuery::with_options(
        spec.locations.clone(),
        spec.keywords.clone(),
        vec![],
        QueryOptions {
            budget: ExecutionBudget::default().with_max_settled(2),
            ..Default::default()
        },
    )
    .unwrap();
    for algo in algorithms() {
        // a fresh cache per algorithm: any entry must come from *this* run
        let cache = Arc::new(DistanceCache::new(1 << 16));
        let ctx = SearchContext::with_cache(Arc::clone(&cache));
        let r = algo
            .run_ctx(
                &db,
                &q,
                &RunControl::unbounded(),
                &mut Recorder::disabled(),
                &ctx,
            )
            .unwrap();
        if r.completeness.is_exact() {
            continue; // nothing was missed, so publishing is legitimate
        }
        let stats = cache.stats();
        assert_eq!(
            stats.inserts,
            0,
            "{}: an interrupted run must not publish",
            algo.name()
        );
        assert!(cache.is_empty(), "{}: cache must stay empty", algo.name());
        if r.metrics.settled_vertices > 0 {
            assert!(
                stats.poisoned >= 1,
                "{}: fresh settles were discarded, the skip must be counted",
                algo.name()
            );
        }
    }
}

#[test]
fn warm_cache_survives_a_cancelled_run_bit_exactly() {
    let ds = Dataset::build(&DatasetConfig::small(25, 13)).unwrap();
    let db = uots::db(&ds);
    let spec = &workload::generate(&ds, &workload::WorkloadConfig::default())[0];
    let q = UotsQuery::new(spec.locations.clone(), spec.keywords.clone()).unwrap();
    let cache = Arc::new(DistanceCache::new(1 << 16));
    let ctx = SearchContext::with_cache(Arc::clone(&cache));
    let algo = Expansion::default();

    let clean = algo.run_with_cache(&db, &q, &ctx).unwrap();
    let published = cache.stats().inserts;
    assert!(published > 0, "clean completion must publish");

    // a mid-run cancellation on the warm cache: replays, then poisons
    let token = CancellationToken::new();
    token.cancel();
    let r = algo
        .run_ctx(
            &db,
            &q,
            &RunControl::with_token(token),
            &mut Recorder::disabled(),
            &ctx,
        )
        .unwrap();
    assert!(!r.completeness.is_exact());
    assert_eq!(
        cache.stats().inserts,
        published,
        "a cancelled run must not publish"
    );

    // the warm entries still serve the exact answer, bit for bit
    let again = algo.run_with_cache(&db, &q, &ctx).unwrap();
    assert_eq!(clean.ids(), again.ids());
    for (a, b) in clean.matches.iter().zip(again.matches.iter()) {
        assert_eq!(a.similarity.to_bits(), b.similarity.to_bits());
    }
}

#[test]
fn zero_wall_budget_interrupts_but_stays_sound() {
    let ds = Dataset::build(&DatasetConfig::small(30, 7)).unwrap();
    let db = uots::db(&ds);
    let spec = &workload::generate(&ds, &workload::WorkloadConfig::default())[0];
    let q = UotsQuery::with_options(
        spec.locations.clone(),
        spec.keywords.clone(),
        vec![],
        QueryOptions {
            budget: ExecutionBudget::default().with_deadline_ms(0),
            ..Default::default()
        },
    )
    .unwrap();
    for algo in algorithms() {
        let r = algo.run(&db, &q).unwrap();
        // a 0 ms deadline may let a few CHECK_INTERVAL steps through, but
        // the certificate must still be a valid [0, 1] gap
        let gap = r.completeness.bound_gap();
        assert!((0.0..=1.0).contains(&gap), "{}: gap {gap}", algo.name());
        assert!(r.is_ranked(), "{}", algo.name());
    }
}
