//! Property tests for the binary dataset persistence: arbitrary datasets
//! must round-trip exactly, and arbitrary byte mutations must never panic
//! the decoder.

use proptest::prelude::*;
use uots::datagen::persist;
use uots::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn arbitrary_datasets_round_trip(
        trips in 1usize..40,
        seed in any::<u64>(),
    ) {
        let cfg = DatasetConfig::small(trips, seed % 1000);
        let ds = Dataset::build(&cfg).expect("dataset builds");
        let bytes = persist::save(&ds, &cfg.tags, cfg.tag_seed);
        let back = persist::load(&bytes).expect("round trip");
        prop_assert_eq!(&ds.network, &back.network);
        prop_assert_eq!(ds.store.len(), back.store.len());
        for (a, b) in ds.store.iter().zip(back.store.iter()) {
            prop_assert_eq!(a.1, b.1);
        }
        // a query over the reloaded dataset matches the original
        let spec = &workload::generate(&ds, &workload::WorkloadConfig::default())[0];
        let q = UotsQuery::new(spec.locations.clone(), spec.keywords.clone()).unwrap();
        let db_a = uots::db(&ds);
        let db_b = uots::db(&back);
        let ra = Expansion::default().run(&db_a, &q).unwrap();
        let rb = Expansion::default().run(&db_b, &q).unwrap();
        prop_assert_eq!(ra.ids(), rb.ids());
    }

    #[test]
    fn random_byte_flips_never_panic(
        seed in any::<u64>(),
        flip_at in proptest::collection::vec(0usize..10_000, 1..8),
        flip_to in any::<u8>(),
    ) {
        let cfg = DatasetConfig::small(5, seed % 100);
        let ds = Dataset::build(&cfg).expect("dataset builds");
        let mut bytes = persist::save(&ds, &cfg.tags, cfg.tag_seed).to_vec();
        for &pos in &flip_at {
            if pos < bytes.len() {
                bytes[pos] = flip_to;
            }
        }
        // must return Ok or Err — never panic, never hang
        let _ = persist::load(&bytes);
    }

    #[test]
    fn random_garbage_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = persist::load(&garbage);
    }

    /// A valid payload with *anything* appended must be rejected — trailing
    /// garbage means the file is not what the writer produced, and silently
    /// ignoring it would let a concatenation or torn copy masquerade as
    /// valid (and never panic while being rejected).
    #[test]
    fn appended_suffix_is_rejected_not_ignored(
        seed in any::<u64>(),
        suffix in proptest::collection::vec(any::<u8>(), 1..300),
    ) {
        let cfg = DatasetConfig::small(4, seed % 100);
        let ds = Dataset::build(&cfg).expect("dataset builds");
        let mut bytes = persist::save(&ds, &cfg.tags, cfg.tag_seed).to_vec();
        prop_assert!(persist::load(&bytes).is_ok(), "sanity: untouched payload loads");
        bytes.extend_from_slice(&suffix);
        prop_assert!(
            persist::load(&bytes).is_err(),
            "a payload with {} trailing bytes must not load",
            suffix.len()
        );
    }

    /// The same holds for checkpoints — though there the CRC trailer means
    /// an appended suffix is indistinguishable from any other corruption.
    #[test]
    fn checkpoint_suffix_is_rejected(
        seed in any::<u64>(),
        suffix in proptest::collection::vec(any::<u8>(), 1..100),
    ) {
        let cfg = DatasetConfig::small(4, seed % 100);
        let ds = Dataset::build(&cfg).expect("dataset builds");
        let ck = persist::Checkpoint {
            network: ds.network.clone(),
            vocab: ds.vocab.clone(),
            store: ds.store.clone(),
            live: uots::LiveSet::all_live(ds.store.len()),
            epoch: 1,
            lsn: 7,
        };
        let mut bytes = persist::save_checkpoint(&ck).to_vec();
        prop_assert!(persist::load_checkpoint(&bytes).is_ok(), "sanity: untouched checkpoint loads");
        bytes.extend_from_slice(&suffix);
        prop_assert!(persist::load_checkpoint(&bytes).is_err());
    }
}
