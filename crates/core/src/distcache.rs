//! Shared cross-query network-distance cache with landmark-pruned
//! admission.
//!
//! Every UOTS query expands the network from its query locations, and
//! concurrent queries over the same road network repeat the bulk of that
//! shortest-path work. [`DistanceCache`] memoizes, per expansion **source
//! vertex**, the finalized Dijkstra prefix — the settled vertices with
//! their exact `sd(o, v)` distances plus the live frontier — so a later
//! query expanding from the same source *replays* the prefix instead of
//! recomputing it and resumes live Dijkstra from where the cached run
//! stopped.
//!
//! ## Why finalized-only entries are safe
//!
//! A cache entry is a [`SourcePrefix`]: the exact settle sequence of a
//! single-source Dijkstra together with the frontier (tentative distances)
//! and the radius at the moment the snapshot was taken. By Dijkstra's
//! invariant this is a *complete, consistent* description of the
//! computation's state — settled distances are final, every tentative
//! frontier distance equals the best path through the settled set, and
//! absence of a vertex from both sets proves its distance is at least the
//! radius. Replaying a prefix and resuming therefore produces exactly the
//! distances a fresh run would; the search on top stays an exact
//! algorithm, which the differential harness (`tests/differential.rs`)
//! verifies end-to-end. Entries are only **published on clean query
//! completion** — a query interrupted by budget, deadline, or cancellation
//! never publishes (poison-on-cancel), so a torn snapshot can never be
//! observed by a later query.
//!
//! ## Sharding and eviction
//!
//! The cache is a fixed array of mutex-protected shards, indexed by a hash
//! of the source vertex; concurrent queries touching different sources
//! never contend. Capacity is a global budget of *entries* (settled +
//! frontier items); each shard owns an equal slice of it, so the global
//! bound holds by construction. Within a shard, eviction is LRU by a
//! global logical tick. Entries are `Arc`-shared: eviction drops the
//! shard's reference while live readers keep replaying their own — an
//! eviction can never corrupt an in-flight query.
//!
//! ## Landmark admission
//!
//! [`SearchContext`] optionally carries ALT [`Landmarks`]: the engine uses
//! the triangle-inequality lower bound on `d(o, τ)` as a first-class
//! admission filter — a candidate trajectory whose landmark bound already
//! proves it cannot beat the current top-k threshold skips its per-source
//! distance bookkeeping (the cache-backed expansion tracking) entirely,
//! counted in [`CacheStats::bound_prunes`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use uots_network::expansion::{NetworkExpansion, Settled};
use uots_network::landmarks::Landmarks;
use uots_network::{NodeId, RoadNetwork};
use uots_obs::{Counter, EventJournal, MetricsRegistry};

/// A finalized single-source Dijkstra prefix: everything needed to replay
/// and resume an expansion from `source`.
#[derive(Debug, Clone)]
pub struct SourcePrefix {
    source: NodeId,
    /// Settled vertices in settle order (nondecreasing distance); every
    /// distance is exact.
    settled: Vec<Settled>,
    /// Reached-but-unsettled vertices with tentative distances (see
    /// [`NetworkExpansion::frontier_snapshot`]).
    frontier: Vec<(NodeId, f64)>,
    /// Distance of the last settled vertex: lower bound on every vertex
    /// absent from `settled`.
    radius: f64,
    /// Whether the source's whole component was settled (then absence
    /// proves unreachability).
    exhausted: bool,
}

impl SourcePrefix {
    /// The expansion source this prefix belongs to.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The settled vertices, in settle order.
    pub fn settled(&self) -> &[Settled] {
        &self.settled
    }

    /// Last settled distance.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Whether the whole component was settled.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Entry cost against the cache capacity: settled + frontier items.
    pub fn cost(&self) -> usize {
        self.settled.len() + self.frontier.len()
    }
}

/// Point-in-time counter snapshot of a [`DistanceCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes that found a usable prefix.
    pub hits: u64,
    /// Probes that found nothing.
    pub misses: u64,
    /// Prefixes accepted into the cache.
    pub inserts: u64,
    /// Prefixes rejected by admission (not better than the resident entry,
    /// or larger than a whole shard).
    pub rejected: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Candidate trajectories pruned by the landmark admission bound
    /// before any cache/expansion bookkeeping.
    pub bound_prunes: u64,
    /// Publications skipped because the producing query was interrupted
    /// (poison-on-cancel).
    pub poisoned: u64,
}

impl CacheStats {
    /// Fraction of probes that hit, in `[0, 1]` (0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Optional [`MetricsRegistry`] counter handles, bound at construction.
#[derive(Debug, Clone)]
struct BoundCounters {
    hits: Counter,
    misses: Counter,
    inserts: Counter,
    rejected: Counter,
    evictions: Counter,
    bound_prunes: Counter,
    poisoned: Counter,
}

#[derive(Debug)]
struct Entry {
    prefix: Arc<SourcePrefix>,
    tick: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<NodeId, Entry>,
    /// Sum of entry costs currently resident in this shard.
    cost: usize,
}

/// Sharded, concurrent, bounded cross-query cache of per-source expansion
/// prefixes. See the module docs for the invariants.
#[derive(Debug)]
pub struct DistanceCache {
    shards: Box<[Mutex<Shard>]>,
    /// Per-shard entry budget; the global capacity is `shard_capacity ×
    /// shards.len()` rounded down from the requested capacity.
    shard_capacity: usize,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    rejected: AtomicU64,
    evictions: AtomicU64,
    bound_prunes: AtomicU64,
    poisoned: AtomicU64,
    bound: Option<BoundCounters>,
    journal: Option<EventJournal>,
}

/// Default capacity: one million settled/frontier entries (~16 MiB of
/// distances) — enough to hold full expansions of dozens of sources on a
/// city-scale network.
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 20;

const DEFAULT_SHARDS: usize = 16;

fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl DistanceCache {
    /// A cache bounded by `capacity` total entries (settled + frontier
    /// items across all shards), with the default shard count.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count. `shards` is clamped so every
    /// shard gets a non-zero slice of `capacity`; the effective global
    /// capacity is `capacity` rounded down to a multiple of the shard
    /// count (never exceeded).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, 256).min(capacity.max(1));
        let shard_capacity = capacity / shards;
        let shards: Vec<Mutex<Shard>> = (0..shards).map(|_| Mutex::new(Shard::default())).collect();
        DistanceCache {
            shards: shards.into_boxed_slice(),
            shard_capacity,
            capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bound_prunes: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            bound: None,
            journal: None,
        }
    }

    /// Attaches an operational [`EventJournal`]; cache clears and
    /// poison-on-cancel events are recorded there.
    pub fn set_journal(&mut self, journal: EventJournal) {
        self.journal = Some(journal);
    }

    /// Like [`new`](Self::new), additionally registering
    /// `uots_distcache_*_total` counters in `registry`; every cache event
    /// increments both the internal statistics and the registry handles.
    pub fn with_metrics(capacity: usize, registry: &MetricsRegistry) -> Self {
        let mut cache = Self::new(capacity);
        let c = |name: &str, help: &str| registry.counter(name, help);
        cache.bound = Some(BoundCounters {
            hits: c("uots_distcache_hits_total", "Distance-cache probe hits"),
            misses: c("uots_distcache_misses_total", "Distance-cache probe misses"),
            inserts: c(
                "uots_distcache_inserts_total",
                "Distance-cache prefixes accepted",
            ),
            rejected: c(
                "uots_distcache_rejected_total",
                "Distance-cache prefixes rejected by admission",
            ),
            evictions: c(
                "uots_distcache_evictions_total",
                "Distance-cache entries evicted",
            ),
            bound_prunes: c(
                "uots_distcache_bound_prunes_total",
                "Candidates pruned by the landmark admission bound",
            ),
            poisoned: c(
                "uots_distcache_poisoned_total",
                "Publications skipped because the query was interrupted",
            ),
        });
        cache
    }

    /// The configured global entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total entry cost currently resident across all shards. Always
    /// `<= capacity()`.
    pub fn resident_cost(&self) -> usize {
        self.shards.iter().map(|s| lock_ok(s).cost).sum()
    }

    /// Number of cached source prefixes.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_ok(s).map.len()).sum()
    }

    /// Whether no prefix is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn shard_of(&self, source: NodeId) -> &Mutex<Shard> {
        // Fibonacci hashing spreads consecutive vertex ids across shards.
        let h = (u64::from(source.0)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    /// Looks up the cached prefix for `source`, refreshing its LRU tick.
    pub fn probe(&self, source: NodeId) -> Option<Arc<SourcePrefix>> {
        let mut shard = lock_ok(self.shard_of(source));
        let hit = shard.map.get_mut(&source).map(|e| {
            e.tick = self.tick.fetch_add(1, Ordering::Relaxed);
            Arc::clone(&e.prefix)
        });
        drop(shard);
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(b) = &self.bound {
                b.hits.inc();
            }
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            if let Some(b) = &self.bound {
                b.misses.inc();
            }
        }
        hit
    }

    /// Publishes a finalized prefix. Admission keeps the *larger* of the
    /// resident and offered prefixes for a source, rejects prefixes that
    /// cannot fit a shard, and evicts LRU entries until the newcomer fits.
    /// Returns whether the prefix was accepted.
    pub fn publish(&self, prefix: SourcePrefix) -> bool {
        debug_assert!(
            prefix
                .settled
                .windows(2)
                .all(|w| w[0].dist <= w[1].dist + 1e-12),
            "settle order must be nondecreasing"
        );
        let cost = prefix.cost();
        if cost == 0 || cost > self.shard_capacity {
            self.note_rejected();
            return false;
        }
        let mutex = self.shard_of(prefix.source);
        let mut shard = lock_ok(mutex);
        if let Some(existing) = shard.map.get(&prefix.source) {
            if existing.prefix.settled.len() >= prefix.settled.len() {
                drop(shard);
                self.note_rejected();
                return false;
            }
            // the newcomer supersedes the resident entry
            let old = shard.map.remove(&prefix.source).expect("just observed");
            shard.cost -= old.prefix.cost();
        }
        let mut evicted = 0u64;
        while shard.cost + cost > self.shard_capacity {
            let lru = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(&k, _)| k)
                .expect("cost > 0 implies a resident entry");
            let old = shard.map.remove(&lru).expect("key just found");
            shard.cost -= old.prefix.cost();
            evicted += 1;
        }
        shard.cost += cost;
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        shard.map.insert(
            prefix.source,
            Entry {
                prefix: Arc::new(prefix),
                tick,
            },
        );
        drop(shard);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if let Some(b) = &self.bound {
            b.inserts.inc();
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            if let Some(b) = &self.bound {
                b.evictions.add(evicted);
            }
        }
        true
    }

    /// Drops every cached prefix (live readers keep their `Arc`s). Only a
    /// performance event, never a correctness one — see the mid-batch
    /// clear property test.
    pub fn clear(&self) {
        let mut dropped = 0usize;
        for s in self.shards.iter() {
            let mut shard = lock_ok(s);
            dropped += shard.map.len();
            shard.map.clear();
            shard.cost = 0;
        }
        if let Some(j) = &self.journal {
            j.info(
                "distcache",
                "cache_cleared",
                &[("dropped_prefixes", dropped.to_string())],
            );
        }
    }

    /// Counts one landmark-bound admission prune.
    #[inline]
    pub fn note_bound_prune(&self) {
        self.bound_prunes.fetch_add(1, Ordering::Relaxed);
        if let Some(b) = &self.bound {
            b.bound_prunes.inc();
        }
    }

    /// Counts one publication skipped because the query was interrupted.
    #[inline]
    pub fn note_poisoned(&self) {
        self.poisoned.fetch_add(1, Ordering::Relaxed);
        if let Some(b) = &self.bound {
            b.poisoned.inc();
        }
        if let Some(j) = &self.journal {
            j.warn("distcache", "publication_poisoned", &[]);
        }
    }

    fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        if let Some(b) = &self.bound {
            b.rejected.inc();
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bound_prunes: self.bound_prunes.load(Ordering::Relaxed),
            poisoned: self.poisoned.load(Ordering::Relaxed),
        }
    }
}

/// Cross-query context threaded through every algorithm: an optional
/// shared [`DistanceCache`] and optional ALT [`Landmarks`] for admission
/// pruning. `Default` is the empty context (no cache, no landmarks) —
/// exactly the pre-cache behavior.
#[derive(Debug, Clone, Default)]
pub struct SearchContext {
    cache: Option<Arc<DistanceCache>>,
    landmarks: Option<Arc<Landmarks>>,
}

impl SearchContext {
    /// The empty context: no cache, no landmarks.
    pub fn new() -> Self {
        Self::default()
    }

    /// A context sharing `cache`.
    pub fn with_cache(cache: Arc<DistanceCache>) -> Self {
        SearchContext {
            cache: Some(cache),
            landmarks: None,
        }
    }

    /// Convenience: a context with a fresh cache of `capacity` entries —
    /// unless the `UOTS_NO_CACHE` environment variable disables caching,
    /// in which case the empty context is returned.
    pub fn cached(capacity: usize) -> Self {
        if no_cache_env() {
            Self::new()
        } else {
            Self::with_cache(Arc::new(DistanceCache::new(capacity)))
        }
    }

    /// Adds ALT landmarks for admission pruning.
    pub fn with_landmarks(mut self, landmarks: Arc<Landmarks>) -> Self {
        self.landmarks = Some(landmarks);
        self
    }

    /// The shared cache, if any.
    pub fn cache(&self) -> Option<&Arc<DistanceCache>> {
        self.cache.as_ref()
    }

    /// The landmark tables, if any.
    pub fn landmarks(&self) -> Option<&Landmarks> {
        self.landmarks.as_deref()
    }

    /// Whether the context carries neither cache nor landmarks.
    pub fn is_empty(&self) -> bool {
        self.cache.is_none() && self.landmarks.is_none()
    }
}

/// Whether the `UOTS_NO_CACHE` environment variable requests cache-free
/// execution (any value except `0` counts). Used by the CLI and CI to run
/// the uncached path.
pub fn no_cache_env() -> bool {
    std::env::var_os("UOTS_NO_CACHE").is_some_and(|v| v != *"0")
}

/// A cache-aware expansion source: replays a cached prefix (if the cache
/// holds one for the source), then continues live Dijkstra, recording the
/// newly settled vertices so the *extended* prefix can be published back
/// on clean completion.
///
/// The interface mirrors [`NetworkExpansion`] where the engine consumes
/// it; during replay, `radius()` / `unsettled_lower_bound()` report the
/// **last replayed distance** (not the cached prefix's final radius):
/// vertices later in the prefix have not been delivered yet, so only the
/// replay-local radius is a sound lower bound for the consumer.
pub struct CachedSource<'a> {
    exp: NetworkExpansion<'a>,
    cache: Option<Arc<DistanceCache>>,
    base: Option<Arc<SourcePrefix>>,
    cursor: usize,
    replay_radius: f64,
    fresh: Vec<Settled>,
    finished: bool,
}

impl<'a> CachedSource<'a> {
    /// Allocates scratch for `net` and starts from `source`, probing
    /// `cache` for a prefix to replay.
    pub fn start(net: &'a RoadNetwork, source: NodeId, cache: Option<&Arc<DistanceCache>>) -> Self {
        let mut s = CachedSource {
            exp: NetworkExpansion::new(net),
            cache: cache.cloned(),
            base: None,
            cursor: 0,
            replay_radius: 0.0,
            fresh: Vec::new(),
            finished: false,
        };
        s.begin(source);
        s
    }

    /// Restarts from a new source, reusing the scratch buffers (for join
    /// workers that probe many trajectories). Does **not** publish the
    /// previous run — call [`publish`](Self::publish) first if it
    /// completed cleanly.
    pub fn restart(&mut self, source: NodeId) {
        self.begin(source);
    }

    fn begin(&mut self, source: NodeId) {
        self.cursor = 0;
        self.replay_radius = 0.0;
        self.fresh.clear();
        self.finished = false;
        self.base = self.cache.as_ref().and_then(|c| c.probe(source));
        match &self.base {
            Some(prefix) => {
                self.exp.resume(source, &prefix.settled, &prefix.frontier);
            }
            None => self.exp.start(source),
        }
    }

    /// The expansion source.
    pub fn source(&self) -> NodeId {
        self.exp.source()
    }

    /// Whether a cached prefix is still being replayed.
    #[inline]
    pub fn in_replay(&self) -> bool {
        self.base
            .as_ref()
            .is_some_and(|b| self.cursor < b.settled.len())
    }

    /// Whether this source started from a cache hit.
    pub fn was_hit(&self) -> bool {
        self.base.is_some()
    }

    /// Next settled vertex: replayed from the cached prefix while one is
    /// pending, then live Dijkstra.
    #[inline]
    pub fn next_settled(&mut self) -> Option<Settled> {
        if let Some(base) = &self.base {
            if self.cursor < base.settled.len() {
                let s = base.settled[self.cursor];
                self.cursor += 1;
                self.replay_radius = s.dist;
                return Some(s);
            }
        }
        let s = self.exp.next_settled();
        if let Some(s) = s {
            self.fresh.push(s);
        }
        s
    }

    /// Distance of the most recently delivered vertex — a valid lower
    /// bound on everything not yet delivered (see the type docs for the
    /// replay subtlety).
    #[inline]
    pub fn radius(&self) -> f64 {
        if self.in_replay() {
            self.replay_radius
        } else {
            self.exp.radius()
        }
    }

    /// Lower bound on the distance of any vertex not yet delivered.
    #[inline]
    pub fn unsettled_lower_bound(&self) -> f64 {
        if self.in_replay() {
            self.replay_radius
        } else {
            self.exp.unsettled_lower_bound()
        }
    }

    /// Whether no vertex remains to deliver.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        !self.in_replay() && self.exp.is_exhausted()
    }

    /// Number of vertices delivered so far.
    #[inline]
    pub fn settled_count(&self) -> usize {
        if self.in_replay() {
            self.cursor
        } else {
            self.exp.settled_count()
        }
    }

    /// Pending heap entries of the live expansion (the replay itself has
    /// no frontier cost).
    #[inline]
    pub fn frontier_len(&self) -> usize {
        self.exp.frontier_len()
    }

    /// Exact distance to `v` **after the source has been fully drained**
    /// (all vertices delivered). During replay this also reports vertices
    /// not yet delivered (they are pre-settled in the resumed scratch), so
    /// only drained consumers should call it.
    #[inline]
    pub fn settled_distance(&self, v: NodeId) -> Option<f64> {
        self.exp.settled_distance(v)
    }

    /// Publishes the extended prefix (cached base + fresh settles) back to
    /// the cache. Call **only on clean completion** — an interrupted query
    /// must call [`poison`](Self::poison) instead. No-op without a cache,
    /// when nothing new was settled, or when already published.
    pub fn publish(&mut self) {
        let Some(cache) = self.cache.clone() else {
            return;
        };
        if self.finished {
            return;
        }
        self.finished = true;
        if self.fresh.is_empty() && self.base.is_some() {
            return; // the resident prefix is at least as good
        }
        let mut settled = match &self.base {
            Some(b) => b.settled.clone(),
            None => Vec::with_capacity(self.fresh.len()),
        };
        settled.extend_from_slice(&self.fresh);
        if settled.is_empty() {
            return;
        }
        cache.publish(SourcePrefix {
            source: self.exp.source(),
            settled,
            frontier: self.exp.frontier_snapshot(),
            radius: self.exp.radius(),
            exhausted: self.exp.is_exhausted(),
        });
    }

    /// Marks the run interrupted: nothing is published and the skip is
    /// counted (poison-on-cancel).
    pub fn poison(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if let Some(cache) = &self.cache {
            if !self.fresh.is_empty() {
                cache.note_poisoned();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uots_network::generators::{grid_city, GridCityConfig};

    fn net() -> uots_network::RoadNetwork {
        grid_city(&GridCityConfig::tiny(6)).unwrap()
    }

    fn drain(src: &mut CachedSource<'_>) -> Vec<Settled> {
        std::iter::from_fn(|| src.next_settled()).collect()
    }

    #[test]
    fn miss_then_hit_replays_identically() {
        let net = net();
        let cache = Arc::new(DistanceCache::new(1 << 16));
        let mut first = CachedSource::start(&net, NodeId(0), Some(&cache));
        assert!(!first.was_hit());
        let a = drain(&mut first);
        first.publish();
        assert_eq!(cache.stats().inserts, 1);
        assert_eq!(cache.stats().misses, 1);

        let mut second = CachedSource::start(&net, NodeId(0), Some(&cache));
        assert!(second.was_hit());
        assert!(second.in_replay());
        let b = drain(&mut second);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.dist, y.dist);
        }
    }

    #[test]
    fn partial_prefix_resumes_live_and_republishes_extended() {
        let net = net();
        let cache = Arc::new(DistanceCache::new(1 << 16));
        let mut first = CachedSource::start(&net, NodeId(7), Some(&cache));
        for _ in 0..10 {
            first.next_settled().unwrap();
        }
        first.publish(); // 10 settled vertices cached

        let mut second = CachedSource::start(&net, NodeId(7), Some(&cache));
        let all = drain(&mut second);
        assert_eq!(all.len(), net.num_nodes());
        second.publish();
        // the extended (exhausted) prefix replaced the short one
        let p = cache.probe(NodeId(7)).unwrap();
        assert_eq!(p.settled().len(), net.num_nodes());
        assert!(p.is_exhausted());
    }

    #[test]
    fn replay_radius_is_sound_mid_replay() {
        let net = net();
        let cache = Arc::new(DistanceCache::new(1 << 16));
        let mut first = CachedSource::start(&net, NodeId(0), Some(&cache));
        drain(&mut first);
        first.publish();

        let mut second = CachedSource::start(&net, NodeId(0), Some(&cache));
        let mut last = 0.0;
        while let Some(s) = second.next_settled() {
            assert!(
                second.radius() <= s.dist + 1e-12,
                "radius may never exceed the just-delivered distance"
            );
            assert!(s.dist >= last - 1e-12, "nondecreasing delivery");
            last = s.dist;
            if second.in_replay() {
                assert!(!second.is_exhausted());
            }
        }
        assert!(second.is_exhausted());
    }

    #[test]
    fn poison_publishes_nothing() {
        let net = net();
        let cache = Arc::new(DistanceCache::new(1 << 16));
        let mut src = CachedSource::start(&net, NodeId(3), Some(&cache));
        for _ in 0..5 {
            src.next_settled().unwrap();
        }
        src.poison();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().poisoned, 1);
        // poisoning is final: a later publish on the same run is ignored
        src.publish();
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_and_eviction() {
        let cache = DistanceCache::with_shards(8, 1);
        let mk = |id: u32, n: usize| SourcePrefix {
            source: NodeId(id),
            settled: (0..n)
                .map(|i| Settled {
                    node: NodeId(i as u32),
                    dist: i as f64,
                })
                .collect(),
            frontier: vec![],
            radius: n as f64,
            exhausted: false,
        };
        assert!(cache.publish(mk(1, 4)));
        assert!(cache.publish(mk(2, 4)));
        assert_eq!(cache.len(), 2);
        // a third entry evicts the LRU (source 1: source 2 was inserted later)
        assert!(cache.publish(mk(3, 4)));
        assert_eq!(cache.len(), 2);
        assert!(cache.resident_cost() <= cache.capacity());
        assert!(cache.probe(NodeId(1)).is_none());
        assert!(cache.probe(NodeId(3)).is_some());
        // an entry larger than the whole cache is rejected outright
        assert!(!cache.publish(mk(4, 9)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn admission_keeps_the_larger_prefix() {
        let cache = DistanceCache::new(1 << 12);
        let mk = |n: usize| SourcePrefix {
            source: NodeId(9),
            settled: (0..n)
                .map(|i| Settled {
                    node: NodeId(i as u32),
                    dist: i as f64,
                })
                .collect(),
            frontier: vec![],
            radius: n as f64,
            exhausted: false,
        };
        assert!(cache.publish(mk(10)));
        assert!(!cache.publish(mk(5)), "smaller prefix must be rejected");
        assert_eq!(cache.probe(NodeId(9)).unwrap().settled().len(), 10);
        assert!(cache.publish(mk(20)), "larger prefix supersedes");
        assert_eq!(cache.probe(NodeId(9)).unwrap().settled().len(), 20);
    }

    #[test]
    fn clear_keeps_live_readers_valid() {
        let net = net();
        let cache = Arc::new(DistanceCache::new(1 << 16));
        let mut first = CachedSource::start(&net, NodeId(0), Some(&cache));
        drain(&mut first);
        first.publish();

        let mut second = CachedSource::start(&net, NodeId(0), Some(&cache));
        second.next_settled().unwrap();
        cache.clear(); // mid-replay clear
        assert!(cache.is_empty());
        let rest = drain(&mut second);
        assert_eq!(rest.len(), net.num_nodes() - 1, "replay unaffected");
    }

    #[test]
    fn env_gate_parsing() {
        // no_cache_env reads the live environment; just assert it does not
        // panic and returns a bool either way.
        let _ = no_cache_env();
        let ctx = SearchContext::new();
        assert!(ctx.is_empty());
        let ctx = SearchContext::with_cache(Arc::new(DistanceCache::new(64)));
        assert!(!ctx.is_empty());
        assert!(ctx.cache().is_some());
    }
}
