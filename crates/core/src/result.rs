//! Query results: ranked matches with per-channel similarity breakdowns.

use crate::budget::Completeness;
use crate::SearchMetrics;
use serde::{Deserialize, Serialize};
use uots_trajectory::TrajectoryId;

/// One recommended trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Match {
    /// The trajectory.
    pub id: TrajectoryId,
    /// Combined similarity `w_s·SimS + w_tx·SimT + w_tm·SimTm ∈ [0, 1]`.
    pub similarity: f64,
    /// Spatial channel value `SimS ∈ [0, 1]`.
    pub spatial: f64,
    /// Textual channel value `SimT ∈ [0, 1]`.
    pub textual: f64,
    /// Temporal channel value `SimTm ∈ [0, 1]` (0 when the channel is off).
    pub temporal: f64,
    /// Order-aware blended score set by
    /// [`rerank_by_order`](crate::order::rerank_by_order); `None` until a
    /// rerank runs. `similarity` always stays the pure channel combination
    /// — reranking must never make the reported similarity disagree with
    /// its components. Deserializing pre-rerank payloads without the field
    /// yields `None` (missing fields take their `Default`).
    pub order_blend: Option<f64>,
}

impl Match {
    /// The score ranking is based on: the order-aware blend after a
    /// rerank, the channel-combination similarity otherwise.
    #[inline]
    pub fn rank_score(&self) -> f64 {
        self.order_blend.unwrap_or(self.similarity)
    }

    /// Total order used everywhere: higher [`rank_score`](Self::rank_score)
    /// first, ties broken by ascending trajectory id (deterministic across
    /// algorithms).
    pub fn ranking_cmp(&self, other: &Match) -> std::cmp::Ordering {
        other
            .rank_score()
            .total_cmp(&self.rank_score())
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// The answer to one UOTS query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Up to `k` matches, best first.
    pub matches: Vec<Match>,
    /// Search-effort counters.
    pub metrics: SearchMetrics,
    /// Whether this answer is exact or a certified best effort (budget
    /// exhausted, deadline hit, or cancelled).
    pub completeness: Completeness,
}

impl QueryResult {
    /// The uninformative answer of a run interrupted before any work: no
    /// matches, `bound_gap = 1.0` (nothing certified).
    pub fn interrupted_empty() -> Self {
        let mut metrics = SearchMetrics::for_one_query();
        metrics.interrupted = 1;
        QueryResult {
            matches: vec![],
            metrics,
            completeness: Completeness::BestEffort { bound_gap: 1.0 },
        }
    }

    /// The best match, if any trajectory was found at all.
    pub fn best(&self) -> Option<&Match> {
        self.matches.first()
    }

    /// Convenience: the ranked trajectory ids.
    pub fn ids(&self) -> Vec<TrajectoryId> {
        self.matches.iter().map(|m| m.id).collect()
    }

    /// Asserts the ranking invariant (sorted by [`Match::ranking_cmp`]);
    /// used by tests and debug assertions.
    pub fn is_ranked(&self) -> bool {
        self.matches
            .windows(2)
            .all(|w| w[0].ranking_cmp(&w[1]) != std::cmp::Ordering::Greater)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(id: u32, sim: f64) -> Match {
        Match {
            id: TrajectoryId(id),
            similarity: sim,
            spatial: sim,
            textual: 0.0,
            temporal: 0.0,
            order_blend: None,
        }
    }

    #[test]
    fn ranking_prefers_higher_similarity_then_lower_id() {
        assert_eq!(m(0, 0.9).ranking_cmp(&m(1, 0.5)), std::cmp::Ordering::Less);
        assert_eq!(
            m(1, 0.5).ranking_cmp(&m(0, 0.9)),
            std::cmp::Ordering::Greater
        );
        assert_eq!(m(0, 0.5).ranking_cmp(&m(1, 0.5)), std::cmp::Ordering::Less);
        assert_eq!(m(3, 0.5).ranking_cmp(&m(3, 0.5)), std::cmp::Ordering::Equal);
    }

    #[test]
    fn result_helpers() {
        let r = QueryResult {
            matches: vec![m(2, 0.8), m(0, 0.8), m(1, 0.3)],
            metrics: SearchMetrics::for_one_query(),
            completeness: Completeness::Exact,
        };
        assert_eq!(r.best().unwrap().id, TrajectoryId(2));
        assert_eq!(
            r.ids(),
            vec![TrajectoryId(2), TrajectoryId(0), TrajectoryId(1)]
        );
        // 2 before 0 at equal similarity violates the tie-break order
        assert!(!r.is_ranked());
        let ok = QueryResult {
            matches: vec![m(0, 0.8), m(2, 0.8), m(1, 0.3)],
            metrics: SearchMetrics::for_one_query(),
            completeness: Completeness::Exact,
        };
        assert!(ok.is_ranked());
    }

    #[test]
    fn empty_result() {
        let r = QueryResult {
            matches: vec![],
            metrics: SearchMetrics::for_one_query(),
            completeness: Completeness::Exact,
        };
        assert!(r.best().is_none());
        assert!(r.is_ranked());
    }

    #[test]
    fn interrupted_empty_is_a_total_miss() {
        let r = QueryResult::interrupted_empty();
        assert!(r.matches.is_empty());
        assert!(!r.completeness.is_exact());
        assert_eq!(r.completeness.bound_gap(), 1.0);
        assert_eq!(r.metrics.interrupted, 1);
    }
}
