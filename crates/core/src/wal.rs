//! Checksummed, segment-rotated write-ahead log for the epoch ingest path.
//!
//! [`crate::EpochManager`] is purely in-memory: a crash loses every
//! mutation since process start. This module adds the durability layer
//! under it — every ingest/retire **batch** is encoded as one log record
//! and written (and optionally fsynced) *before* it is applied to the
//! manager, so the on-disk log is always a superset of the in-memory
//! state. Recovery replays the log's **durable prefix**: records are
//! consumed in LSN order until the first torn, truncated or
//! checksum-corrupt record, which (per standard WAL crash semantics)
//! marks the end of what durably hit the disk; everything after it is
//! discarded.
//!
//! ## On-disk format
//!
//! A log is a directory of segment files named `wal-<first_lsn>.seg`
//! (20-digit zero-padded, so lexicographic order == LSN order):
//!
//! ```text
//! segment  = header record*
//! header   = magic "UOTSWAL1" (8 B) + u64 first_lsn
//! record   = u32 payload_len + u32 crc + u64 lsn + payload
//! payload  = u32 count + count × mutation
//! mutation = 0x00 insert: u32 n, n × (u32 node, f64 time), u32 k, k × u32 kw
//!          | 0x01 retire: u32 id
//! ```
//!
//! All integers little-endian. The CRC32 (IEEE, reflected) covers the LSN
//! bytes plus the payload, so neither can be silently damaged. LSNs are
//! assigned per *batch*, start at 1, and are strictly sequential across
//! segment boundaries — a gap or repeat is treated as corruption.
//!
//! Writers rotate to a fresh segment once the current one exceeds
//! [`WalConfig::segment_bytes`]; completed segments are immutable, which
//! is what makes pruning after a checkpoint safe ([`prune_segments`]).
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy`] trades durability for throughput: `EveryBatch` fsyncs
//! each append (a crash loses nothing acknowledged), `Interval` bounds
//! the loss window to the configured duration, `Never` leaves flushing
//! to the OS (crash-consistent but not crash-durable: the checksums still
//! guarantee recovery never applies a half-written record).
//!
//! ## Failing storage and the fsyncgate rule
//!
//! All file operations go through a [`StorageBackend`], so faults can be
//! injected underneath the writer. The writer's contract under faults:
//!
//! * **A batch is never acknowledged unless its durability step
//!   succeeded.** `append` returns `Err` on any write or (policy-required)
//!   sync failure, and `next_lsn` does not advance — a retry reuses the
//!   same LSN, so the log and the in-memory state can never disagree
//!   about which batch an LSN names.
//! * **A failed fsync permanently poisons the segment.** POSIX lets the
//!   kernel drop dirty pages and clear the error after a failed fsync, so
//!   buffered bytes must never be re-trusted. The writer *seals* the
//!   segment — truncates it to the last known-durable boundary (the cut
//!   itself is synced) — and opens a fresh segment where the durable
//!   prefix left off. Records that were appended but not yet synced
//!   (`Interval`/`Never` policies) are re-written from memory into the
//!   fresh segment under their original LSNs, so nothing the caller was
//!   told `Ok` about silently vanishes from the log.
//! * **Sealing itself can fail.** The seal plan is then retained and
//!   retried at the start of the next `append`/`sync`; until it succeeds
//!   every call fails fast. [`WalWriter::pending_seal`] exposes the state.
//! * A torn write (partial record followed by an error) seals at the last
//!   record boundary instead: the prefix pages are intact, and the
//!   truncate-with-sync both cuts the garbage and makes the prefix
//!   durable.

use crate::epoch::Mutation;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uots_network::NodeId;
use uots_obs::{Counter, EventJournal, Gauge, Histogram, MetricsRegistry};
use uots_storage::{StdFs, StorageBackend, StorageFile};
use uots_text::{KeywordId, KeywordSet};
use uots_trajectory::{Sample, Trajectory, TrajectoryId};

const SEGMENT_MAGIC: &[u8; 8] = b"UOTSWAL1";
/// Segment header size: magic + first_lsn. A corruption offset below this
/// means the segment header itself is damaged (the whole file is
/// unusable); at or past it, the damage is a torn record tail.
pub const HEADER_LEN: u64 = 16;
const RECORD_HEADER_LEN: usize = 16; // len + crc + lsn
/// Upper bound on one record's payload; a decoded length beyond this is
/// corruption, not a real batch — it must not drive allocation.
const MAX_PAYLOAD: u32 = 1 << 30;

/// When the log writer forces data to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every appended batch: nothing acknowledged is ever
    /// lost, at the cost of one disk round-trip per batch.
    EveryBatch,
    /// Fsync at most once per interval: bounds the crash-loss window.
    Interval(Duration),
    /// Never fsync explicitly; the OS flushes on its own schedule.
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI form: `batch`, `off`, or `interval:<millis>`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "batch" => Ok(FsyncPolicy::EveryBatch),
            "off" => Ok(FsyncPolicy::Never),
            _ => {
                let ms = s
                    .strip_prefix("interval:")
                    .ok_or_else(|| {
                        format!("unknown fsync policy `{s}` (want batch | interval:<ms> | off)")
                    })?
                    .parse::<u64>()
                    .map_err(|_| format!("bad interval millis in `{s}`"))?;
                Ok(FsyncPolicy::Interval(Duration::from_millis(ms)))
            }
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::EveryBatch => write!(f, "batch"),
            FsyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            FsyncPolicy::Never => write!(f, "off"),
        }
    }
}

/// Writer-side configuration.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Rotate to a fresh segment once the current one exceeds this size.
    pub segment_bytes: u64,
    /// See [`FsyncPolicy`].
    pub fsync: FsyncPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 4 << 20,
            fsync: FsyncPolicy::EveryBatch,
        }
    }
}

/// Errors from the WAL writer and replay.
///
/// Note the asymmetry: *corruption in the log tail is not an error* for
/// [`replay`] — it terminates the durable prefix and is reported in
/// [`WalReplay::corruption`]. `Corrupt` is returned only where damage
/// makes the log unusable as a whole (e.g. a segment header of an
/// earlier, supposedly complete segment).
#[derive(Debug)]
pub enum WalError {
    /// File I/O failed.
    Io(std::io::Error),
    /// The log structure itself is damaged beyond prefix semantics.
    Corrupt(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt(m) => write!(f, "wal corrupt: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

struct WalMetrics {
    appends: Counter,
    bytes: Counter,
    fsyncs: Counter,
    fsync_failures: Counter,
    sealed_segments: Counter,
    rotations: Counter,
    last_lsn: Gauge,
    durable_lsn: Gauge,
    append_micros: Histogram,
}

impl WalMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        WalMetrics {
            appends: registry.counter("uots_wal_appends_total", "WAL batch records appended"),
            bytes: registry.counter("uots_wal_bytes_total", "WAL bytes written (records only)"),
            fsyncs: registry.counter("uots_wal_fsyncs_total", "WAL fsync calls issued"),
            fsync_failures: registry.counter(
                "uots_wal_fsync_failures_total",
                "WAL fsync calls that failed (each poisons its segment)",
            ),
            sealed_segments: registry.counter(
                "uots_wal_sealed_segments_total",
                "WAL segments sealed after a write/fsync failure",
            ),
            rotations: registry
                .counter("uots_wal_segment_rotations_total", "WAL segment rotations"),
            last_lsn: registry.gauge("uots_wal_last_lsn", "Highest LSN appended to the WAL"),
            durable_lsn: registry.gauge(
                "uots_wal_durable_lsn",
                "Highest LSN known durable on stable storage",
            ),
            append_micros: registry.histogram(
                "uots_wal_append_micros",
                "WAL append latency (encode + write + fsync), microseconds",
            ),
        }
    }
}

/// Append-side handle to a WAL directory. Opening scans the existing log
/// (stopping at the durable prefix, like recovery does) to find the next
/// LSN, then starts a *fresh* segment — completed segments are never
/// appended to, so a torn tail from a previous crash can never swallow
/// new records.
pub struct WalWriter {
    dir: PathBuf,
    config: WalConfig,
    backend: Arc<dyn StorageBackend>,
    file: Box<dyn StorageFile>,
    segment_path: PathBuf,
    segment_len: u64,
    /// LSN of the next batch to append. Advances only on success, so a
    /// failed append's retry reuses the same LSN.
    next_lsn: u64,
    /// Segment length up to which bytes are known durable.
    durable_len: u64,
    /// One past the highest LSN known durable.
    durable_next_lsn: u64,
    /// Records appended but not yet synced (`Interval`/`Never`), kept so
    /// a seal can re-write them into a fresh segment after fsync loss.
    unsynced: Vec<(u64, Vec<u8>)>,
    /// Set when a failure requires sealing but the seal itself has not
    /// succeeded yet; retried before any further write.
    pending_seal: Option<SealPlan>,
    /// A partially-created segment left behind by a failed rotation. It
    /// must be removed before any *later* segment is created: replay
    /// stops at its bad header, and a reopen would otherwise discard
    /// every segment after it — including acked, durable records.
    stray_segment: Option<PathBuf>,
    last_sync: Instant,
    metrics: Option<WalMetrics>,
    journal: Option<EventJournal>,
}

/// The deferred-seal state: truncate the poisoned segment at the durable
/// boundary, open a fresh segment, re-write the unsynced records.
struct SealPlan {
    truncate_at: u64,
    reopen_at: u64,
    rewrite: Vec<(u64, Vec<u8>)>,
}

impl WalWriter {
    /// Opens (creating if needed) the log directory for appending, on the
    /// production [`StdFs`] backend.
    pub fn open(dir: impl AsRef<Path>, config: WalConfig) -> Result<Self, WalError> {
        Self::open_inner(dir.as_ref(), config, Arc::new(StdFs), None)
    }

    /// [`open`](Self::open) plus `uots_wal_*` metrics registered in
    /// `registry`.
    pub fn open_with_metrics(
        dir: impl AsRef<Path>,
        config: WalConfig,
        registry: &MetricsRegistry,
    ) -> Result<Self, WalError> {
        Self::open_inner(
            dir.as_ref(),
            config,
            Arc::new(StdFs),
            Some(WalMetrics::register(registry)),
        )
    }

    /// [`open`](Self::open) on an explicit storage backend (fault
    /// injection goes through here).
    pub fn open_with_backend(
        dir: impl AsRef<Path>,
        config: WalConfig,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Self, WalError> {
        Self::open_inner(dir.as_ref(), config, backend, None)
    }

    /// [`open_with_backend`](Self::open_with_backend) plus metrics.
    pub fn open_with_backend_and_metrics(
        dir: impl AsRef<Path>,
        config: WalConfig,
        backend: Arc<dyn StorageBackend>,
        registry: &MetricsRegistry,
    ) -> Result<Self, WalError> {
        Self::open_inner(
            dir.as_ref(),
            config,
            backend,
            Some(WalMetrics::register(registry)),
        )
    }

    fn open_inner(
        dir: &Path,
        config: WalConfig,
        backend: Arc<dyn StorageBackend>,
        metrics: Option<WalMetrics>,
    ) -> Result<Self, WalError> {
        backend.create_dir_all(dir)?;
        let scan = replay_with(&*backend, dir, u64::MAX)?; // parse everything, keep nothing
        if let Some(c) = &scan.corruption {
            // Seal the durable prefix on disk: truncate the torn tail and
            // drop every later segment. Without this, records appended to
            // the new segment would sit *behind* the corruption and replay
            // (which stops at the first bad record) could never reach them.
            if c.offset >= HEADER_LEN {
                backend.truncate(&c.segment, c.offset)?;
            } else {
                backend.remove_file(&c.segment)?;
            }
            for seg in list_segments_with(&*backend, dir)? {
                if seg > c.segment {
                    backend.remove_file(&seg)?;
                }
            }
        }
        let next_lsn = scan.next_lsn;
        let (file, segment_path) = new_segment(&*backend, dir, next_lsn)?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            config,
            backend,
            file,
            segment_path,
            segment_len: HEADER_LEN,
            next_lsn,
            durable_len: HEADER_LEN,
            durable_next_lsn: next_lsn,
            unsynced: Vec::new(),
            pending_seal: None,
            stray_segment: None,
            last_sync: Instant::now(),
            metrics,
            journal: None,
        })
    }

    /// Attaches an operational [`EventJournal`]; rotation, sealing,
    /// stray-segment removal, and fsync failures are recorded there.
    pub fn set_journal(&mut self, journal: EventJournal) {
        self.journal = Some(journal);
    }

    /// The LSN the next appended batch will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The highest LSN known to be on stable storage (0 if none). Under
    /// `EveryBatch` this trails `next_lsn() - 1` only across a failure;
    /// under `Interval`/`Never` it lags by the unsynced window.
    pub fn durable_lsn(&self) -> u64 {
        self.durable_next_lsn.saturating_sub(1)
    }

    /// Whether a failed seal is still pending (the writer refuses appends
    /// until the seal succeeds on retry).
    pub fn pending_seal(&self) -> bool {
        self.pending_seal.is_some()
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current segment path and its length in bytes after the last append
    /// (record boundaries — the crash points the recovery tests cut at).
    pub fn position(&self) -> (PathBuf, u64) {
        (self.segment_path.clone(), self.segment_len)
    }

    /// Appends one mutation batch as a single record and returns its LSN.
    /// The record is written (and fsynced per policy) before this returns,
    /// so on success the caller may apply the batch to the in-memory
    /// manager knowing recovery will replay it. On failure `next_lsn` is
    /// unchanged — retrying appends the same batch under the same LSN —
    /// and the segment has been sealed at the last trustworthy boundary
    /// (see the module docs; if sealing itself failed it is retried here
    /// before anything else is written).
    pub fn append(&mut self, batch: &[Mutation]) -> Result<u64, WalError> {
        let started = Instant::now();
        self.heal()?;
        let lsn = self.next_lsn;
        let payload = encode_batch(batch);
        let mut record = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut crc_input = Vec::with_capacity(8 + payload.len());
        crc_input.extend_from_slice(&lsn.to_le_bytes());
        crc_input.extend_from_slice(&payload);
        record.extend_from_slice(&crc32(&crc_input).to_le_bytes());
        record.extend_from_slice(&crc_input);
        if let Err(e) = self.file.write_all(&record) {
            // Torn write: a prefix of the record may be on disk, followed
            // by nothing — but the pages before it are intact. Seal at the
            // last record boundary: the truncate cuts the garbage and its
            // sync makes the (previously unsynced) prefix durable.
            self.plan_seal(self.segment_len, lsn, Vec::new());
            let _ = self.heal(); // best effort now; retried on next call
            return Err(e.into());
        }
        self.segment_len += record.len() as u64;
        let sync_due = match self.config.fsync {
            FsyncPolicy::EveryBatch => true,
            FsyncPolicy::Interval(d) => self.last_sync.elapsed() >= d,
            FsyncPolicy::Never => false,
        };
        if sync_due {
            if let Err(e) = self.sync_file() {
                // Fsyncgate: every byte past durable_len may be gone and
                // must never be re-trusted. Seal at the durable boundary
                // and re-write the unsynced records (all acked under
                // Interval/Never) into a fresh segment. The current batch
                // is NOT among them: it was never acked, its LSN is
                // reused by the caller's retry.
                self.segment_len -= record.len() as u64; // logical un-append
                let rewrite = std::mem::take(&mut self.unsynced);
                self.plan_seal(self.durable_len, self.durable_next_lsn, rewrite);
                let _ = self.heal();
                return Err(e.into());
            }
            self.mark_durable_to(self.segment_len, lsn + 1);
        } else {
            self.unsynced.push((lsn, record.clone()));
        }
        self.next_lsn = lsn + 1;
        if self.segment_len >= self.config.segment_bytes {
            // The batch is already as durable as the policy promises; a
            // rotation failure must not reject it (a retry would append a
            // duplicate). Sealing machinery recovers on the next call.
            let _ = self.rotate();
        }
        if let Some(m) = &self.metrics {
            m.appends.inc();
            m.bytes.add(record.len() as u64);
            m.last_lsn.set(lsn as i64);
            m.append_micros.record(started.elapsed().as_micros() as u64);
        }
        Ok(lsn)
    }

    /// Forces everything appended so far to stable storage. On failure the
    /// segment is sealed (fsyncgate) with acked-but-unsynced records
    /// re-written to a fresh segment; see the module docs.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.heal()?;
        if self.durable_len == self.segment_len && self.durable_next_lsn == self.next_lsn {
            return Ok(()); // nothing new; don't risk a pointless fsync
        }
        if let Err(e) = self.sync_file() {
            let rewrite = std::mem::take(&mut self.unsynced);
            self.plan_seal(self.durable_len, self.durable_next_lsn, rewrite);
            let _ = self.heal();
            return Err(e.into());
        }
        self.mark_durable_to(self.segment_len, self.next_lsn);
        Ok(())
    }

    /// Raw fsync + bookkeeping; callers decide the failure semantics.
    fn sync_file(&mut self) -> std::io::Result<()> {
        match self.file.sync_data() {
            Ok(()) => {
                self.last_sync = Instant::now();
                if let Some(m) = &self.metrics {
                    m.fsyncs.inc();
                }
                Ok(())
            }
            Err(e) => {
                if let Some(m) = &self.metrics {
                    m.fsync_failures.inc();
                }
                if let Some(j) = &self.journal {
                    j.error(
                        "wal",
                        "fsync_failure",
                        &[
                            ("segment", self.segment_path.display().to_string()),
                            ("error", e.to_string()),
                        ],
                    );
                }
                Err(e)
            }
        }
    }

    fn mark_durable_to(&mut self, len: u64, next: u64) {
        self.durable_len = len;
        self.durable_next_lsn = next;
        self.unsynced.clear();
        if let Some(m) = &self.metrics {
            m.durable_lsn.set(next.saturating_sub(1) as i64);
        }
    }

    fn plan_seal(&mut self, truncate_at: u64, reopen_at: u64, rewrite: Vec<(u64, Vec<u8>)>) {
        debug_assert!(self.pending_seal.is_none(), "heal() runs before writes");
        self.pending_seal = Some(SealPlan {
            truncate_at,
            reopen_at,
            rewrite,
        });
    }

    /// Removes the stray segment a failed rotation left behind, if any.
    /// Must succeed before any later segment is created: replay stops at
    /// the stray's bad header, so segments behind it are unreachable and
    /// a reopen would delete them. Idempotent; a missing file counts as
    /// removed (the create itself may have been what failed).
    fn remove_stray(&mut self) -> Result<(), WalError> {
        let Some(path) = self.stray_segment.clone() else {
            return Ok(());
        };
        match self.backend.remove_file(&path) {
            Ok(()) => {
                self.stray_segment = None;
                if let Some(j) = &self.journal {
                    j.warn(
                        "wal",
                        "stray_segment_removed",
                        &[("segment", path.display().to_string())],
                    );
                }
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // the failed rotation never got as far as creating it
                self.stray_segment = None;
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Executes a pending seal, if any. Mutates `self` only after every
    /// step succeeded, so a failed heal can be retried from scratch (the
    /// truncate and the segment re-create are idempotent).
    fn heal(&mut self) -> Result<(), WalError> {
        let Some(plan) = self.pending_seal.take() else {
            return Ok(());
        };
        // the fresh segment below must not land behind a rotation stray
        if let Err(e) = self.remove_stray() {
            self.pending_seal = Some(plan);
            return Err(e);
        }
        let result = (|| -> Result<(Box<dyn StorageFile>, PathBuf, u64), WalError> {
            self.backend
                .truncate(&self.segment_path, plan.truncate_at)?;
            let (mut file, path) = new_segment(&*self.backend, &self.dir, plan.reopen_at)?;
            let mut len = HEADER_LEN;
            for (_, rec) in &plan.rewrite {
                file.write_all(rec)?;
                len += rec.len() as u64;
            }
            if !plan.rewrite.is_empty() {
                file.sync_data()?;
            }
            Ok((file, path, len))
        })();
        match result {
            Ok((file, path, len)) => {
                let sealed = std::mem::replace(&mut self.segment_path, path);
                self.file = file;
                self.segment_len = len;
                self.mark_durable_to(len, self.next_lsn);
                if let Some(m) = &self.metrics {
                    m.sealed_segments.inc();
                }
                if let Some(j) = &self.journal {
                    j.warn(
                        "wal",
                        "segment_sealed",
                        &[
                            ("segment", sealed.display().to_string()),
                            ("truncate_at", plan.truncate_at.to_string()),
                            ("reopen_lsn", plan.reopen_at.to_string()),
                            ("rewritten_records", plan.rewrite.len().to_string()),
                        ],
                    );
                }
                Ok(())
            }
            Err(e) => {
                self.pending_seal = Some(plan);
                Err(e)
            }
        }
    }

    fn rotate(&mut self) -> Result<(), WalError> {
        // seal the old segment: its contents must be durable before the
        // new one starts taking records, or pruning could discard the only
        // copy of a batch that never hit the disk
        self.sync()?;
        // a stray from an earlier failed rotation must be gone first, or
        // the segment created here would sit behind it, unreachable
        self.remove_stray()?;
        match new_segment(&*self.backend, &self.dir, self.next_lsn) {
            Ok((file, path)) => {
                self.file = file;
                self.segment_path = path;
                self.segment_len = HEADER_LEN;
                self.durable_len = HEADER_LEN;
                if let Some(m) = &self.metrics {
                    m.rotations.inc();
                }
                if let Some(j) = &self.journal {
                    j.info(
                        "wal",
                        "segment_rotated",
                        &[
                            ("segment", self.segment_path.display().to_string()),
                            ("first_lsn", self.next_lsn.to_string()),
                        ],
                    );
                }
                Ok(())
            }
            Err(e) => {
                // new_segment may have created the file before its header
                // write/sync failed; while it exists under a wal-*.seg
                // name, replay stops at its bad header. Remove it — now if
                // possible, else before the next segment is created.
                self.stray_segment = Some(segment_path(&self.dir, self.next_lsn));
                if let Some(j) = &self.journal {
                    j.warn(
                        "wal",
                        "rotation_failed",
                        &[
                            (
                                "stray",
                                segment_path(&self.dir, self.next_lsn).display().to_string(),
                            ),
                            ("error", e.to_string()),
                        ],
                    );
                }
                let _ = self.remove_stray(); // best effort; retried later
                Err(e)
            }
        }
    }
}

fn segment_path(dir: &Path, first_lsn: u64) -> PathBuf {
    dir.join(format!("wal-{first_lsn:020}.seg"))
}

fn new_segment(
    backend: &dyn StorageBackend,
    dir: &Path,
    first_lsn: u64,
) -> Result<(Box<dyn StorageFile>, PathBuf), WalError> {
    let path = segment_path(dir, first_lsn);
    let mut file = backend.create(&path)?;
    file.write_all(SEGMENT_MAGIC)?;
    file.write_all(&first_lsn.to_le_bytes())?;
    file.sync_data()?;
    Ok((file, path))
}

/// Lists the segment files of `dir` in LSN order.
pub fn list_segments(dir: &Path) -> Result<Vec<PathBuf>, WalError> {
    list_segments_with(&StdFs, dir)
}

/// [`list_segments`] through an explicit backend.
pub fn list_segments_with(
    backend: &dyn StorageBackend,
    dir: &Path,
) -> Result<Vec<PathBuf>, WalError> {
    let mut segs: Vec<PathBuf> = Vec::new();
    match backend.read_dir(dir) {
        Ok(entries) => {
            for p in entries {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if name.starts_with("wal-") && name.ends_with(".seg") {
                    segs.push(p);
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e.into()),
    }
    // zero-padded first LSNs make lexicographic order numeric order
    segs.sort();
    Ok(segs)
}

/// Where and why replay stopped before the physical end of the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corruption {
    /// Segment containing the first bad record.
    pub segment: PathBuf,
    /// Byte offset of that record within the segment.
    pub offset: u64,
    /// Human-readable cause (torn record, crc mismatch, bad lsn, …).
    pub reason: String,
}

/// Result of scanning a log directory.
#[derive(Debug)]
pub struct WalReplay {
    /// Replayable batches `(lsn, mutations)` with `lsn > after_lsn`, in
    /// LSN order.
    pub batches: Vec<(u64, Vec<Mutation>)>,
    /// One past the highest durable LSN (what a new writer continues at).
    pub next_lsn: u64,
    /// Set when the scan stopped at a damaged record; everything before
    /// it is the durable prefix, everything after was discarded.
    pub corruption: Option<Corruption>,
}

/// Scans the log directory and returns every durable batch with LSN
/// strictly greater than `after_lsn` (pass a checkpoint's high-water mark,
/// or 0 for everything).
///
/// Corruption mid-log terminates the scan — later records, even if they
/// checksum correctly, were written after something that never became
/// durable and must not be applied (the log is only meaningful as a
/// prefix). The cut point is reported in [`WalReplay::corruption`].
pub fn replay(dir: impl AsRef<Path>, after_lsn: u64) -> Result<WalReplay, WalError> {
    replay_with(&StdFs, dir.as_ref(), after_lsn)
}

/// [`replay`] through an explicit backend.
pub fn replay_with(
    backend: &dyn StorageBackend,
    dir: &Path,
    after_lsn: u64,
) -> Result<WalReplay, WalError> {
    let mut batches = Vec::new();
    let mut next_lsn: u64 = 1;
    let mut corruption = None;
    let mut expect_lsn: Option<u64> = None;
    'segments: for seg in list_segments_with(backend, dir)? {
        let raw = backend.read(&seg)?;
        if raw.len() < HEADER_LEN as usize || &raw[..8] != SEGMENT_MAGIC {
            corruption = Some(Corruption {
                segment: seg,
                offset: 0,
                reason: "bad or truncated segment header".into(),
            });
            break 'segments;
        }
        let first_lsn = u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes"));
        // the first segment may start anywhere (older ones get pruned);
        // later ones must continue exactly where the previous left off
        if let Some(expected) = expect_lsn {
            if first_lsn != expected {
                corruption = Some(Corruption {
                    segment: seg,
                    offset: 8,
                    reason: format!("segment claims first lsn {first_lsn}, expected {expected}"),
                });
                break 'segments;
            }
        }
        let mut pos = HEADER_LEN as usize;
        let mut lsn = first_lsn;
        while pos < raw.len() {
            match decode_record(&raw[pos..], lsn) {
                Ok((mutations, consumed)) => {
                    if lsn > after_lsn {
                        batches.push((lsn, mutations));
                    }
                    pos += consumed;
                    lsn += 1;
                }
                Err(reason) => {
                    corruption = Some(Corruption {
                        segment: seg,
                        offset: pos as u64,
                        reason,
                    });
                    next_lsn = lsn;
                    break 'segments;
                }
            }
        }
        next_lsn = lsn;
        expect_lsn = Some(lsn);
    }
    Ok(WalReplay {
        batches,
        next_lsn,
        corruption,
    })
}

/// Deletes segments made fully redundant by a checkpoint at `upto_lsn`: a
/// segment may go once the *next* segment's first LSN shows every record
/// in it is `<= upto_lsn`. The newest segment is always kept (it anchors
/// `next_lsn` for future writers). Returns the number of segments removed.
pub fn prune_segments(dir: impl AsRef<Path>, upto_lsn: u64) -> Result<usize, WalError> {
    prune_segments_with(&StdFs, dir.as_ref(), upto_lsn)
}

/// [`prune_segments`] through an explicit backend.
pub fn prune_segments_with(
    backend: &dyn StorageBackend,
    dir: &Path,
    upto_lsn: u64,
) -> Result<usize, WalError> {
    let segs = list_segments_with(backend, dir)?;
    let mut removed = 0;
    for pair in segs.windows(2) {
        let next_first = match read_first_lsn(backend, &pair[1]) {
            Some(l) => l,
            None => break, // damaged header: leave everything for recovery to report
        };
        if next_first != 0 && next_first - 1 <= upto_lsn {
            backend.remove_file(&pair[0])?;
            removed += 1;
        } else {
            break; // segments are ordered; nothing later can be prunable
        }
    }
    Ok(removed)
}

fn read_first_lsn(backend: &dyn StorageBackend, seg: &Path) -> Option<u64> {
    let raw = backend.read(seg).ok()?;
    if raw.len() < HEADER_LEN as usize || &raw[..8] != SEGMENT_MAGIC {
        return None;
    }
    Some(u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes")))
}

/// Decodes one record at the start of `buf`, expecting `expect_lsn`.
/// Returns the mutations and the bytes consumed, or the corruption reason.
fn decode_record(buf: &[u8], expect_lsn: u64) -> Result<(Vec<Mutation>, usize), String> {
    if buf.len() < RECORD_HEADER_LEN {
        return Err(format!(
            "torn record header: {} of {RECORD_HEADER_LEN} bytes",
            buf.len()
        ));
    }
    let payload_len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if payload_len > MAX_PAYLOAD {
        return Err(format!("implausible payload length {payload_len}"));
    }
    let stored_crc = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let total = RECORD_HEADER_LEN + payload_len as usize;
    if buf.len() < total {
        return Err(format!("torn record: {} of {total} bytes", buf.len()));
    }
    let crc_input = &buf[8..total]; // lsn bytes + payload
    let actual = crc32(crc_input);
    if actual != stored_crc {
        return Err(format!(
            "crc mismatch: stored {stored_crc:#010x}, computed {actual:#010x}"
        ));
    }
    let lsn = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    if lsn != expect_lsn {
        return Err(format!("lsn {lsn} out of sequence, expected {expect_lsn}"));
    }
    let mutations = decode_batch(&buf[16..total])?;
    Ok((mutations, total))
}

fn encode_batch(batch: &[Mutation]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + batch.len() * 32);
    out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for m in batch {
        match m {
            Mutation::Insert(t) => {
                out.push(0x00);
                out.extend_from_slice(&(t.samples().len() as u32).to_le_bytes());
                for s in t.samples() {
                    out.extend_from_slice(&s.node.0.to_le_bytes());
                    out.extend_from_slice(&s.time.to_le_bytes());
                }
                out.extend_from_slice(&(t.keywords().len() as u32).to_le_bytes());
                for k in t.keywords().iter() {
                    out.extend_from_slice(&k.0.to_le_bytes());
                }
            }
            Mutation::Retire(id) => {
                out.push(0x01);
                out.extend_from_slice(&id.0.to_le_bytes());
            }
        }
    }
    out
}

fn decode_batch(mut buf: &[u8]) -> Result<Vec<Mutation>, String> {
    let count = take_u32(&mut buf)? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let tag = take_u8(&mut buf)?;
        match tag {
            0x00 => {
                let ns = take_u32(&mut buf)? as usize;
                if buf.len() < ns * 12 {
                    return Err("batch truncated in samples".into());
                }
                let mut samples = Vec::with_capacity(ns);
                for _ in 0..ns {
                    let node = NodeId(take_u32(&mut buf)?);
                    let time = f64::from_le_bytes(take_array(&mut buf)?);
                    samples.push(Sample { node, time });
                }
                let nk = take_u32(&mut buf)? as usize;
                if buf.len() < nk * 4 {
                    return Err("batch truncated in keywords".into());
                }
                let mut kws = Vec::with_capacity(nk);
                for _ in 0..nk {
                    kws.push(KeywordId(take_u32(&mut buf)?));
                }
                let t = Trajectory::new(samples, KeywordSet::from_ids(kws))
                    .map_err(|e| format!("decoded trajectory invalid: {e}"))?;
                out.push(Mutation::Insert(t));
            }
            0x01 => out.push(Mutation::Retire(TrajectoryId(take_u32(&mut buf)?))),
            _ => return Err(format!("unknown mutation tag {tag:#04x}")),
        }
    }
    if !buf.is_empty() {
        return Err(format!("{} trailing bytes in batch payload", buf.len()));
    }
    Ok(out)
}

fn take_u8(buf: &mut &[u8]) -> Result<u8, String> {
    let (&b, rest) = buf.split_first().ok_or("batch truncated")?;
    *buf = rest;
    Ok(b)
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, String> {
    Ok(u32::from_le_bytes(take_array(buf)?))
}

fn take_array<const N: usize>(buf: &mut &[u8]) -> Result<[u8; N], String> {
    if buf.len() < N {
        return Err("batch truncated".into());
    }
    let (head, rest) = buf.split_at(N);
    *buf = rest;
    Ok(head.try_into().expect("split_at(N)"))
}

/// CRC32 (IEEE 802.3, reflected), nibble-table variant — the workspace
/// vendors no checksum crate, and record-sized inputs don't need the
/// byte-table's speed.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 16] = [
        0x0000_0000,
        0x1db7_1064,
        0x3b6e_20c8,
        0x26d9_30ac,
        0x76dc_4190,
        0x6b6b_51f4,
        0x4db2_6158,
        0x5005_713c,
        0xedb8_8320,
        0xf00f_9344,
        0xd6d6_a3e8,
        0xcb61_b38c,
        0x9b64_c2b0,
        0x86d3_d2d4,
        0xa00a_e278,
        0xbdbd_f21c,
    ];
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 4) ^ TABLE[((crc ^ b as u32) & 0xf) as usize];
        crc = (crc >> 4) ^ TABLE[((crc ^ (b as u32 >> 4)) & 0xf) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use uots_storage::fault::{Fault, FaultConfig, FaultFs, OpKind, ScriptedFault};
    use uots_trajectory::Sample;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("uots_wal_tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn traj(nodes: &[u32], kw: &[u32]) -> Trajectory {
        Trajectory::new(
            nodes
                .iter()
                .enumerate()
                .map(|(i, &v)| Sample {
                    node: NodeId(v),
                    time: 60.0 * i as f64,
                })
                .collect(),
            KeywordSet::from_ids(kw.iter().map(|&k| KeywordId(k))),
        )
        .unwrap()
    }

    fn batches() -> Vec<Vec<Mutation>> {
        vec![
            vec![
                Mutation::Insert(traj(&[0, 1, 2], &[1, 3])),
                Mutation::Insert(traj(&[5, 6], &[2])),
            ],
            vec![Mutation::Retire(TrajectoryId(0))],
            vec![
                Mutation::Insert(traj(&[7], &[])),
                Mutation::Retire(TrajectoryId(1)),
                Mutation::Insert(traj(&[8, 9, 10], &[4, 5, 6])),
            ],
        ]
    }

    fn mutations_eq(a: &Mutation, b: &Mutation) -> bool {
        match (a, b) {
            (Mutation::Insert(x), Mutation::Insert(y)) => x == y,
            (Mutation::Retire(x), Mutation::Retire(y)) => x == y,
            _ => false,
        }
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        assert_eq!(FsyncPolicy::parse("batch"), Ok(FsyncPolicy::EveryBatch));
        assert_eq!(FsyncPolicy::parse("off"), Ok(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("interval:250"),
            Ok(FsyncPolicy::Interval(Duration::from_millis(250)))
        );
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert!(FsyncPolicy::parse("interval:fast").is_err());
        assert_eq!(
            FsyncPolicy::parse("interval:250").unwrap().to_string(),
            "interval:250"
        );
        assert_eq!(FsyncPolicy::EveryBatch.to_string(), "batch");
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = tmpdir("round_trip");
        let mut w = WalWriter::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(w.next_lsn(), 1);
        for (i, b) in batches().iter().enumerate() {
            assert_eq!(w.append(b).unwrap(), i as u64 + 1);
        }
        let r = replay(&dir, 0).unwrap();
        assert!(r.corruption.is_none());
        assert_eq!(r.next_lsn, 4);
        assert_eq!(r.batches.len(), 3);
        for ((lsn, got), (i, want)) in r.batches.iter().zip(batches().iter().enumerate()) {
            assert_eq!(*lsn, i as u64 + 1);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want.iter()) {
                assert!(mutations_eq(g, w));
            }
        }
        // after_lsn filters the prefix out
        let r = replay(&dir, 2).unwrap();
        assert_eq!(r.batches.len(), 1);
        assert_eq!(r.batches[0].0, 3);
        // an empty directory replays to nothing
        let r = replay(tmpdir("empty"), 0).unwrap();
        assert!(r.batches.is_empty());
        assert_eq!(r.next_lsn, 1);
    }

    #[test]
    fn reopen_continues_the_lsn_sequence() {
        let dir = tmpdir("reopen");
        {
            let mut w = WalWriter::open(&dir, WalConfig::default()).unwrap();
            w.append(&batches()[0]).unwrap();
            w.append(&batches()[1]).unwrap();
        }
        let mut w = WalWriter::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(w.next_lsn(), 3);
        w.append(&batches()[2]).unwrap();
        let r = replay(&dir, 0).unwrap();
        assert!(r.corruption.is_none());
        assert_eq!(r.batches.len(), 3);
        assert_eq!(r.next_lsn, 4);
    }

    #[test]
    fn rotation_spreads_records_over_segments() {
        let dir = tmpdir("rotation");
        let cfg = WalConfig {
            segment_bytes: 64, // rotate after every record
            fsync: FsyncPolicy::Never,
        };
        let mut w = WalWriter::open(&dir, cfg).unwrap();
        for b in batches() {
            w.append(&b).unwrap();
        }
        drop(w);
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 3, "expected rotation, got {segs:?}");
        let r = replay(&dir, 0).unwrap();
        assert!(r.corruption.is_none());
        assert_eq!(r.batches.len(), 3);
    }

    #[test]
    fn torn_tail_ends_the_durable_prefix() {
        let dir = tmpdir("torn");
        let mut w = WalWriter::open(&dir, WalConfig::default()).unwrap();
        let mut boundaries = vec![w.position().1];
        for b in batches() {
            w.append(&b).unwrap();
            boundaries.push(w.position().1);
        }
        let (seg, full) = w.position();
        drop(w);
        let raw = fs::read(&seg).unwrap();
        assert_eq!(raw.len() as u64, full);
        // cut mid-record between every pair of boundaries
        for i in 1..boundaries.len() {
            for cut in [boundaries[i - 1] + 1, boundaries[i] - 1] {
                fs::write(&seg, &raw[..cut as usize]).unwrap();
                let r = replay(&dir, 0).unwrap();
                assert_eq!(r.batches.len(), i - 1, "cut at {cut}");
                assert_eq!(r.next_lsn, i as u64, "cut at {cut}");
                assert!(r.corruption.is_some(), "cut at {cut}");
            }
            // cutting exactly at a boundary keeps the full prefix, clean
            fs::write(&seg, &raw[..boundaries[i] as usize]).unwrap();
            let r = replay(&dir, 0).unwrap();
            assert_eq!(r.batches.len(), i);
            assert!(r.corruption.is_none());
        }
        fs::write(&seg, &raw).unwrap();
    }

    #[test]
    fn bit_flips_are_caught_and_end_the_prefix() {
        let dir = tmpdir("flip");
        let mut w = WalWriter::open(&dir, WalConfig::default()).unwrap();
        let mut boundaries = vec![w.position().1];
        for b in batches() {
            w.append(&b).unwrap();
            boundaries.push(w.position().1);
        }
        let (seg, _) = w.position();
        drop(w);
        let raw = fs::read(&seg).unwrap();
        // flip one bit inside record 2 (payload region): records 1 survives,
        // records 2 and 3 are discarded even though record 3 is intact
        let pos = boundaries[1] as usize + RECORD_HEADER_LEN + 2;
        let mut mutated = raw.clone();
        mutated[pos] ^= 0x08;
        fs::write(&seg, &mutated).unwrap();
        let r = replay(&dir, 0).unwrap();
        assert_eq!(r.batches.len(), 1, "only the prefix before the flip");
        assert_eq!(r.next_lsn, 2);
        let c = r.corruption.expect("flip must be reported");
        assert_eq!(c.offset, boundaries[1]);
        assert!(c.reason.contains("crc mismatch"), "{}", c.reason);
        // flipping the stored lsn is also caught (it's under the crc)
        let mut mutated = raw.clone();
        mutated[boundaries[0] as usize + 8] ^= 0x01;
        fs::write(&seg, &mutated).unwrap();
        let r = replay(&dir, 0).unwrap();
        assert!(r.batches.is_empty());
        assert!(r.corruption.is_some());
    }

    #[test]
    fn reopen_after_torn_tail_truncates_and_continues() {
        let dir = tmpdir("reopen_torn");
        let mut w = WalWriter::open(&dir, WalConfig::default()).unwrap();
        let mut boundaries = vec![w.position().1];
        for b in batches() {
            w.append(&b).unwrap();
            boundaries.push(w.position().1);
        }
        let (seg, _) = w.position();
        drop(w);
        // tear the third record mid-write
        let raw = fs::read(&seg).unwrap();
        fs::write(&seg, &raw[..boundaries[3] as usize - 3]).unwrap();
        // a new writer must seal the durable prefix (truncate the tear) and
        // continue at lsn 3; its appends must be reachable by replay
        let mut w = WalWriter::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(w.next_lsn(), 3);
        assert_eq!(w.append(&batches()[2]).unwrap(), 3);
        drop(w);
        let r = replay(&dir, 0).unwrap();
        assert!(r.corruption.is_none(), "{:?}", r.corruption);
        assert_eq!(r.batches.len(), 3);
        assert_eq!(r.batches[2].0, 3);
        assert_eq!(r.next_lsn, 4);
    }

    #[test]
    fn damaged_segment_header_stops_the_scan() {
        let dir = tmpdir("header");
        let cfg = WalConfig {
            segment_bytes: 64,
            fsync: FsyncPolicy::Never,
        };
        let mut w = WalWriter::open(&dir, cfg).unwrap();
        for b in batches() {
            w.append(&b).unwrap();
        }
        drop(w);
        let segs = list_segments(&dir).unwrap();
        let mut raw = fs::read(&segs[1]).unwrap();
        raw[0] ^= 0xff; // destroy the magic of the second segment
        fs::write(&segs[1], &raw).unwrap();
        let r = replay(&dir, 0).unwrap();
        assert_eq!(r.batches.len(), 1, "only the first segment's record");
        assert!(r.corruption.is_some());
    }

    #[test]
    fn prune_removes_only_fully_checkpointed_segments() {
        let dir = tmpdir("prune");
        let cfg = WalConfig {
            segment_bytes: 64,
            fsync: FsyncPolicy::Never,
        };
        let mut w = WalWriter::open(&dir, cfg).unwrap();
        for b in batches() {
            w.append(&b).unwrap();
        }
        drop(w);
        let before = list_segments(&dir).unwrap().len();
        assert_eq!(prune_segments(&dir, 0).unwrap(), 0, "nothing checkpointed");
        // checkpoint at lsn 2: segments holding only lsns <= 2 may go
        let removed = prune_segments(&dir, 2).unwrap();
        assert!(removed >= 1, "expected pruning below lsn 2");
        assert_eq!(list_segments(&dir).unwrap().len(), before - removed);
        let r = replay(&dir, 2).unwrap();
        assert!(r.corruption.is_none());
        assert_eq!(r.batches.len(), 1, "lsn 3 must survive pruning");
        assert_eq!(r.next_lsn, 4);
    }

    #[test]
    fn failed_sync_never_acks_seals_and_new_segment_is_replayable() {
        let dir = tmpdir("fsync_fail");
        // sync #0 = new-segment header sync, #1 = first append, #2 = the
        // victim: fails with fsyncgate page loss
        let fs = FaultFs::scripted(
            11,
            vec![ScriptedFault {
                op: OpKind::Sync,
                nth: 2,
                fault: Fault::FsyncLoss,
            }],
        );
        let mut w = WalWriter::open_with_backend(&dir, WalConfig::default(), fs).unwrap();
        assert_eq!(w.append(&batches()[0]).unwrap(), 1);
        let err = w.append(&batches()[1]).unwrap_err();
        assert!(matches!(err, WalError::Io(_)), "{err}");
        // never acked: the LSN was not consumed, durability didn't move
        assert_eq!(w.next_lsn(), 2);
        assert_eq!(w.durable_lsn(), 1);
        // the segment was sealed and a fresh one opened straight away
        assert!(!w.pending_seal());
        // the retry lands in the new segment under the same LSN
        assert_eq!(w.append(&batches()[1]).unwrap(), 2);
        assert_eq!(w.durable_lsn(), 2);
        drop(w);
        assert!(
            list_segments(&dir).unwrap().len() >= 2,
            "sealing must have opened a fresh segment"
        );
        let r = replay(&dir, 0).unwrap();
        assert!(r.corruption.is_none(), "{:?}", r.corruption);
        assert_eq!(r.batches.len(), 2);
        for ((lsn, got), (i, want)) in r.batches.iter().zip(batches().iter().enumerate()) {
            assert_eq!(*lsn, i as u64 + 1);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want.iter()) {
                assert!(mutations_eq(g, w));
            }
        }
    }

    #[test]
    fn failed_rotation_never_strands_a_partial_segment() {
        // A rotation whose new_segment fails partway (create succeeds,
        // header write fails) must not leave the partial wal-N file
        // behind: later segments would be created *behind* it, replay
        // would stop at its bad header, and a reopen would delete those
        // later segments — losing acked, durable records.
        let dir = tmpdir("stray_rotation");
        let cfg = WalConfig {
            segment_bytes: 64, // rotate after every record
            fsync: FsyncPolicy::EveryBatch,
        };
        // Writes: #0/#1 open's header, #2 record 1, #3/#4 rotation header,
        // #5 record 2, #6 = the victim: the magic write of the rotation
        // after record 2. Remove #0 is the immediate stray cleanup — fail
        // it too, so the stray must survive until the *next* rotation's
        // cleanup (Remove #1).
        let fs = FaultFs::scripted(
            41,
            vec![
                ScriptedFault {
                    op: OpKind::Write,
                    nth: 6,
                    fault: Fault::Permanent,
                },
                ScriptedFault {
                    op: OpKind::Remove,
                    nth: 0,
                    fault: Fault::Transient,
                },
            ],
        );
        let mut w = WalWriter::open_with_backend(&dir, cfg, fs).unwrap();
        // four appends of the large batch (its record tops segment_bytes,
        // so every append rotates); the rotation failure after lsn 2 must
        // stay invisible (the batch was already durable when it struck)
        for lsn in 1..=4 {
            assert_eq!(w.append(&batches()[0]).unwrap(), lsn);
        }
        assert_eq!(w.durable_lsn(), 4);
        drop(w);
        // the stray wal-3 file is gone, not stranded mid-sequence
        assert!(
            !segment_path(&dir, 3).exists(),
            "partial rotation segment must have been removed"
        );
        let r = replay(&dir, 0).unwrap();
        assert!(r.corruption.is_none(), "{:?}", r.corruption);
        assert_eq!(r.batches.len(), 4);
        assert_eq!(r.next_lsn, 5);
        // and a reopen (the step that deletes segments behind corruption)
        // still sees every acked batch
        let w = WalWriter::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(w.next_lsn(), 5, "acked lsn 4 must survive reopen");
    }

    #[test]
    fn torn_write_seals_at_record_boundary_and_retry_succeeds() {
        let dir = tmpdir("torn_write");
        // writes #0/#1 = segment header; #2 = first record; #3 = victim
        let fs = FaultFs::scripted(
            23,
            vec![ScriptedFault {
                op: OpKind::Write,
                nth: 3,
                fault: Fault::ShortWrite,
            }],
        );
        let mut w = WalWriter::open_with_backend(&dir, WalConfig::default(), fs).unwrap();
        assert_eq!(w.append(&batches()[0]).unwrap(), 1);
        assert!(w.append(&batches()[1]).is_err());
        assert_eq!(w.next_lsn(), 2, "failed append must not consume the LSN");
        assert!(!w.pending_seal());
        assert_eq!(w.append(&batches()[1]).unwrap(), 2);
        drop(w);
        // the partial record was cut; both batches replay cleanly
        let r = replay(&dir, 0).unwrap();
        assert!(r.corruption.is_none(), "{:?}", r.corruption);
        assert_eq!(r.batches.len(), 2);
        assert_eq!(r.next_lsn, 3);
    }

    #[test]
    fn acked_unsynced_records_survive_fsync_loss() {
        // Under Never, appends are acked without syncing. An explicit
        // sync that fails with page loss must not lose those acked
        // records: they are re-written into the fresh segment.
        let dir = tmpdir("rewrite");
        let cfg = WalConfig {
            segment_bytes: 4 << 20,
            fsync: FsyncPolicy::Never,
        };
        // sync #0 = header sync; #1 = the explicit sync() below
        let fs = FaultFs::scripted(
            31,
            vec![ScriptedFault {
                op: OpKind::Sync,
                nth: 1,
                fault: Fault::FsyncLoss,
            }],
        );
        let mut w = WalWriter::open_with_backend(&dir, cfg, fs).unwrap();
        assert_eq!(w.append(&batches()[0]).unwrap(), 1);
        assert_eq!(w.append(&batches()[1]).unwrap(), 2);
        assert_eq!(w.durable_lsn(), 0, "nothing synced yet");
        assert!(w.sync().is_err());
        // the seal re-wrote both acked records durably
        assert!(!w.pending_seal());
        assert_eq!(w.durable_lsn(), 2);
        assert_eq!(w.append(&batches()[2]).unwrap(), 3);
        w.sync().unwrap();
        drop(w);
        let r = replay(&dir, 0).unwrap();
        assert!(r.corruption.is_none(), "{:?}", r.corruption);
        assert_eq!(r.batches.len(), 3);
        assert_eq!(r.next_lsn, 4);
    }

    #[test]
    fn transient_faults_leave_writer_usable_and_log_clean() {
        let dir = tmpdir("transient");
        let fs = FaultFs::scripted(
            7,
            vec![
                ScriptedFault {
                    op: OpKind::Write,
                    nth: 2,
                    fault: Fault::Transient,
                },
                ScriptedFault {
                    op: OpKind::Sync,
                    nth: 3,
                    fault: Fault::Transient,
                },
            ],
        );
        let mut w = WalWriter::open_with_backend(&dir, WalConfig::default(), fs).unwrap();
        // both injected failures reject one call; immediate retry works
        let mut appended = 0u64;
        for b in batches() {
            loop {
                match w.append(&b) {
                    Ok(lsn) => {
                        appended += 1;
                        assert_eq!(lsn, appended);
                        break;
                    }
                    Err(WalError::Io(_)) => continue,
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
        }
        drop(w);
        let r = replay(&dir, 0).unwrap();
        assert!(r.corruption.is_none(), "{:?}", r.corruption);
        assert_eq!(r.batches.len(), 3);
    }

    #[test]
    fn writer_under_quiet_fault_backend_matches_stdfs() {
        let dir = tmpdir("quiet_backend");
        let fs = FaultFs::random(FaultConfig::quiet(1));
        let mut w = WalWriter::open_with_backend(&dir, WalConfig::default(), fs).unwrap();
        for b in batches() {
            w.append(&b).unwrap();
        }
        drop(w);
        let r = replay(&dir, 0).unwrap();
        assert!(r.corruption.is_none());
        assert_eq!(r.batches.len(), 3);
    }
}
