//! The expansion search engine — the paper's two-phase trajectory search,
//! specialized to the UOTS (top-k) setting.
//!
//! For one query the engine drives a set of *query sources*: one incremental
//! network expansion per intended place ([`uots_network::expansion`]) and,
//! when the temporal channel is active, one timestamp expansion per
//! preferred time ([`uots_index::TimeExpansion`]). Sources advance one
//! settle/scan step at a time under a pluggable [`Scheduler`].
//!
//! ## Scan states and bounds
//!
//! Every trajectory touched by any source gets a scan state holding, per
//! source, the *exact* distance once scanned (Dijkstra settles nearest
//! first, so the first sighting realizes `d(o_i, τ)`) and otherwise the
//! source's current radius as a lower bound. From these the engine derives
//! a per-trajectory **similarity upper bound**; the textual channel is
//! evaluated exactly on first sight (it is set algebra, cheap), which only
//! tightens the paper's bound.
//!
//! A trajectory scanned by *all* live sources is **fully scanned**: its
//! exact similarity is known and offered to the top-k collector. A source
//! that exhausts its component makes the remaining distances exactly `∞`
//! (contribution `e^(−∞) = 0`), so exhaustion *finalizes* rather than
//! blocks.
//!
//! ## Termination
//!
//! The search stops when the k-th best exact similarity is at least
//!
//! * the **unscanned bound** — the best similarity any never-touched
//!   trajectory could achieve (all radii as distance lower bounds, textual
//!   ≤ 1), and
//! * every partly-scanned trajectory's upper bound, tracked in a lazy
//!   max-heap (bounds only decrease as radii grow, so stale heap entries
//!   are conservative and are refreshed or discarded on pop).
//!
//! Both conditions together guarantee the returned top-k equals the
//! exhaustive answer — property-tested against the brute-force oracle.

use crate::budget::{Completeness, Gate, RunControl};
use crate::distcache::{CachedSource, SearchContext};
use crate::keywords::TextualEval;
use crate::query::UotsQuery;
use crate::result::{Match, QueryResult};
use crate::scheduling::Scheduler;
use crate::similarity;
use crate::topk::TopK;
use crate::{CoreError, Database, SearchMetrics};
use std::collections::BinaryHeap;
use uots_index::TimeExpansion;
use uots_network::landmarks::Landmarks;
use uots_network::TotalF64;
use uots_obs::{Phase, Recorder, TailSampler};
use uots_trajectory::TrajectoryId;

/// Dense struct-of-arrays scan-state table.
///
/// The legacy representation was a `HashMap<TrajectoryId, TrajState>`
/// with two `Vec` allocations per touched trajectory; on the hot path
/// (one posting-list walk per settled vertex, each posting a map probe
/// plus a bound recomputation) the hashing and pointer chasing dominate.
/// Here trajectory ids index a direct `slot` array (one `u32` per store
/// row, `0` = never seen) and all per-trajectory state lives in flat
/// arrays chunked by slot — distances for slot `s` occupy
/// `sdists[s·m .. s·m+m]`. Slots are assigned in first-sighting order,
/// which also gives the exhaustion sweeps a deterministic iteration
/// order (the `HashMap` iterated arbitrarily; exact results never
/// depended on it, and best-effort outputs are now reproducible).
struct ScanTable {
    /// `tid.index()` → slot + 1; `0` means never seen.
    slot: Vec<u32>,
    /// slot → trajectory id, in first-sighting order.
    tids: Vec<TrajectoryId>,
    /// Exact `d(o_i, τ)` once scanned (`NAN` before), chunked by `m`.
    sdists: Vec<f64>,
    /// Exact `min |t_j − t|` once scanned, chunked by `qt`.
    tdists: Vec<f64>,
    /// Spatial sources that have not yet determined their distance.
    s_remaining: Vec<u32>,
    /// Temporal sources that have not yet determined their gap.
    t_remaining: Vec<u32>,
    /// Exact textual similarity (computed on first sight).
    textual: Vec<f64>,
    /// Finalized: exact similarity computed and offered to the top-k.
    done: Vec<bool>,
    /// Spatial sources per trajectory.
    m: usize,
    /// Temporal sources per trajectory.
    qt: usize,
}

impl ScanTable {
    fn new(store_len: usize, m: usize, qt: usize) -> Self {
        ScanTable {
            slot: vec![0; store_len],
            tids: Vec::new(),
            sdists: Vec::new(),
            tdists: Vec::new(),
            s_remaining: Vec::new(),
            t_remaining: Vec::new(),
            textual: Vec::new(),
            done: Vec::new(),
            m,
            qt,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.tids.len()
    }

    #[inline]
    fn slot_of(&self, tid: TrajectoryId) -> Option<usize> {
        match self.slot[tid.index()] {
            0 => None,
            s => Some(s as usize - 1),
        }
    }

    #[inline]
    fn contains(&self, tid: TrajectoryId) -> bool {
        self.slot[tid.index()] != 0
    }

    #[inline]
    fn sdists(&self, slot: usize) -> &[f64] {
        &self.sdists[slot * self.m..slot * self.m + self.m]
    }

    #[inline]
    fn tdists(&self, slot: usize) -> &[f64] {
        &self.tdists[slot * self.qt..slot * self.qt + self.qt]
    }

    #[inline]
    fn fully_scanned(&self, slot: usize) -> bool {
        self.s_remaining[slot] == 0 && self.t_remaining[slot] == 0
    }
}

/// Lazy max-heap entry over partly-scanned upper bounds.
#[derive(PartialEq)]
struct BoundEntry {
    ub: TotalF64,
    tid: TrajectoryId,
}

impl Eq for BoundEntry {}

impl PartialOrd for BoundEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BoundEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ub
            .cmp(&other.ub)
            .then_with(|| other.tid.cmp(&self.tid))
    }
}

/// What the search collects: the best `k` matches, or every match reaching
/// a fixed similarity threshold.
enum Collector {
    TopK(TopK),
    Threshold { theta: f64, matches: Vec<Match> },
}

impl Collector {
    fn offer(&mut self, m: Match) {
        match self {
            Collector::TopK(t) => {
                t.offer(m);
            }
            Collector::Threshold { theta, matches } => {
                if m.similarity >= *theta {
                    matches.push(m);
                }
            }
        }
    }

    /// The similarity every still-unseen trajectory must beat to matter:
    /// the k-th best so far (top-k mode; `-∞` until `k` found) or the fixed
    /// threshold.
    fn pruning_threshold(&self) -> f64 {
        match self {
            Collector::TopK(t) => t.threshold(),
            Collector::Threshold { theta, .. } => *theta,
        }
    }

    fn into_sorted(self) -> Vec<Match> {
        match self {
            Collector::TopK(t) => t.into_sorted(),
            Collector::Threshold { mut matches, .. } => {
                matches.sort_by(Match::ranking_cmp);
                matches
            }
        }
    }

    /// Whether a zero interrupt gap proves exactness: it does once the
    /// pruning threshold is real (top-k full, or any fixed θ). With an
    /// unfilled top-k even a zero-bound unseen trajectory still belongs in
    /// the answer, so the interrupted result must stay best-effort.
    fn zero_gap_is_exact(&self) -> bool {
        match self {
            Collector::TopK(t) => t.threshold() != f64::NEG_INFINITY,
            Collector::Threshold { .. } => true,
        }
    }
}

/// Runs the expansion search for `query` over `db` under `scheduler`.
///
/// This is the engine shared by [`crate::algorithms::Expansion`] (heuristic
/// scheduling — the paper's algorithm) and its ablations (round-robin /
/// min-radius scheduling).
///
/// # Errors
///
/// Propagates [`Database::validate`] failures.
pub fn expansion_search(
    db: &Database<'_>,
    query: &UotsQuery,
    scheduler: Scheduler,
) -> Result<QueryResult, CoreError> {
    expansion_search_with(db, query, scheduler, &RunControl::unbounded())
}

/// [`expansion_search`] under explicit run control: a cancellation token
/// and/or an external deadline, combined with the query's own
/// [`crate::ExecutionBudget`]. Interruption is not an error — the current
/// top-k comes back tagged [`Completeness::BestEffort`] with a certified
/// bound gap. A run cancelled before its first step returns the empty
/// best-effort answer (`bound_gap = 1.0`).
///
/// # Errors
///
/// Propagates [`Database::validate`] failures.
pub fn expansion_search_with(
    db: &Database<'_>,
    query: &UotsQuery,
    scheduler: Scheduler,
    ctl: &RunControl,
) -> Result<QueryResult, CoreError> {
    expansion_search_recorded(db, query, scheduler, ctl, &mut Recorder::disabled())
}

/// [`expansion_search_with`] attributing phase time to `rec` (use one
/// recorder per query; the accumulated breakdown is published into the
/// result's `metrics.phases`). With [`Recorder::disabled`] this *is*
/// `expansion_search_with` — each phase mark costs one branch.
///
/// # Errors
///
/// Propagates [`Database::validate`] failures.
pub fn expansion_search_recorded(
    db: &Database<'_>,
    query: &UotsQuery,
    scheduler: Scheduler,
    ctl: &RunControl,
    rec: &mut Recorder,
) -> Result<QueryResult, CoreError> {
    expansion_search_ctx(db, query, scheduler, ctl, rec, &SearchContext::default())
}

/// [`expansion_search_recorded`] under a [`SearchContext`]: an optional
/// shared cross-query [`crate::DistanceCache`] (per-source expansion
/// prefixes are replayed on a hit and published back on clean completion)
/// and optional ALT landmarks used as an admission filter. With the empty
/// context this *is* `expansion_search_recorded` — the cached and
/// uncached paths return identical results (see `tests/differential.rs`);
/// only the work differs.
///
/// # Errors
///
/// Propagates [`Database::validate`] failures.
pub fn expansion_search_ctx(
    db: &Database<'_>,
    query: &UotsQuery,
    scheduler: Scheduler,
    ctl: &RunControl,
    rec: &mut Recorder,
    ctx: &SearchContext,
) -> Result<QueryResult, CoreError> {
    db.validate(query)?;
    if ctl.is_cancelled() || ctl.deadline_passed() {
        return Ok(QueryResult::interrupted_empty());
    }
    let start = std::time::Instant::now();
    let mut gate = Gate::new(&query.options().budget, ctl);
    let collector = Collector::TopK(TopK::new(query.options().k));
    let mut engine = Engine::new(db, query, scheduler, collector, rec, ctx);
    let interrupt = engine.run(&mut gate);
    engine.settle_cache(interrupt.is_none());
    let mut result = engine.into_result(interrupt);
    rec.leave();
    result.metrics.phases = rec.phases_snapshot();
    result.metrics.runtime = start.elapsed();
    Ok(result)
}

/// [`expansion_search_ctx`] feeding a [`TailSampler`]: the query runs
/// under a tracing recorder when the sampler keeps traces (see
/// [`TailSampler::with_tracing`]) and its latency/outcome are observed
/// either way, so slow, best-effort, and errored queries leave full
/// exemplars while the fast majority costs only a histogram update.
///
/// # Errors
///
/// Propagates [`Database::validate`] failures.
pub fn expansion_search_sampled(
    db: &Database<'_>,
    query: &UotsQuery,
    scheduler: Scheduler,
    ctl: &RunControl,
    ctx: &SearchContext,
    sampler: &TailSampler,
) -> Result<QueryResult, CoreError> {
    let mut rec = match sampler.trace_spans() {
        Some(cap) => Recorder::tracing("expansion", cap),
        None => Recorder::disabled(),
    };
    let result = expansion_search_ctx(db, query, scheduler, ctl, &mut rec, ctx);
    let trace = rec.finish().and_then(|report| report.trace);
    let (latency_us, best_effort, errored) = match &result {
        Ok(r) => (
            u64::try_from(r.metrics.runtime.as_micros()).unwrap_or(u64::MAX),
            !r.completeness.is_exact(),
            false,
        ),
        Err(_) => (0, false, true),
    };
    sampler.observe(&query.summary(), latency_us, best_effort, errored, trace);
    result
}

/// Convenience: [`expansion_search`] sharing the caller's [`SearchContext`]
/// (typically one cache across a query stream), unbounded and unrecorded.
///
/// # Errors
///
/// Propagates [`Database::validate`] failures.
pub fn expansion_search_with_cache(
    db: &Database<'_>,
    query: &UotsQuery,
    scheduler: Scheduler,
    ctx: &SearchContext,
) -> Result<QueryResult, CoreError> {
    expansion_search_ctx(
        db,
        query,
        scheduler,
        &RunControl::unbounded(),
        &mut Recorder::disabled(),
        ctx,
    )
}

/// Threshold (range) variant of the expansion search: returns **every**
/// trajectory whose similarity reaches `theta ∈ (0, 1]`, ranked best first.
/// The query's `k` is ignored. This is the UOTS-side analogue of the join's
/// per-probe search and useful on its own (alerting, candidate
/// materialization).
///
/// # Errors
///
/// Propagates [`Database::validate`] failures and rejects `theta` outside
/// `(0, 1]`.
pub fn threshold_search(
    db: &Database<'_>,
    query: &UotsQuery,
    theta: f64,
    scheduler: Scheduler,
) -> Result<QueryResult, CoreError> {
    threshold_search_with(db, query, theta, scheduler, &RunControl::unbounded())
}

/// [`threshold_search`] under explicit run control; see
/// [`expansion_search_with`]. An interrupted threshold search returns the
/// qualifying matches found so far; its `bound_gap` certifies how far
/// above `θ` a missed trajectory could score.
///
/// # Errors
///
/// Propagates [`Database::validate`] failures and rejects `theta` outside
/// `(0, 1]`.
pub fn threshold_search_with(
    db: &Database<'_>,
    query: &UotsQuery,
    theta: f64,
    scheduler: Scheduler,
    ctl: &RunControl,
) -> Result<QueryResult, CoreError> {
    threshold_search_recorded(db, query, theta, scheduler, ctl, &mut Recorder::disabled())
}

/// [`threshold_search_with`] attributing phase time to `rec`; see
/// [`expansion_search_recorded`] for the recorder contract.
///
/// # Errors
///
/// Propagates [`Database::validate`] failures and rejects `theta` outside
/// `(0, 1]`.
pub fn threshold_search_recorded(
    db: &Database<'_>,
    query: &UotsQuery,
    theta: f64,
    scheduler: Scheduler,
    ctl: &RunControl,
    rec: &mut Recorder,
) -> Result<QueryResult, CoreError> {
    threshold_search_ctx(
        db,
        query,
        theta,
        scheduler,
        ctl,
        rec,
        &SearchContext::default(),
    )
}

/// [`threshold_search_recorded`] under a [`SearchContext`]; see
/// [`expansion_search_ctx`] for the cache contract.
///
/// # Errors
///
/// Propagates [`Database::validate`] failures and rejects `theta` outside
/// `(0, 1]`.
pub fn threshold_search_ctx(
    db: &Database<'_>,
    query: &UotsQuery,
    theta: f64,
    scheduler: Scheduler,
    ctl: &RunControl,
    rec: &mut Recorder,
    ctx: &SearchContext,
) -> Result<QueryResult, CoreError> {
    if !(theta > 0.0 && theta <= 1.0) {
        return Err(CoreError::BadParameter(format!(
            "theta must be in (0, 1], got {theta}"
        )));
    }
    db.validate(query)?;
    if ctl.is_cancelled() || ctl.deadline_passed() {
        return Ok(QueryResult::interrupted_empty());
    }
    let start = std::time::Instant::now();
    let mut gate = Gate::new(&query.options().budget, ctl);
    let collector = Collector::Threshold {
        theta,
        matches: Vec::new(),
    };
    let mut engine = Engine::new(db, query, scheduler, collector, rec, ctx);
    let interrupt = engine.run(&mut gate);
    engine.settle_cache(interrupt.is_none());
    let mut result = engine.into_result(interrupt);
    rec.leave();
    result.metrics.phases = rec.phases_snapshot();
    result.metrics.runtime = start.elapsed();
    Ok(result)
}

struct Engine<'a, 'q, 'r> {
    db: &'a Database<'a>,
    query: &'q UotsQuery,
    scheduler: Scheduler,
    spatial: Vec<CachedSource<'a>>,
    /// Cross-query context: shared distance cache + landmark admission.
    ctx: &'q SearchContext,
    temporal: Vec<TimeExpansion<'a, TrajectoryId>>,
    states: ScanTable,
    /// Cached per-source unsettled lower bounds (`s_lb`/`t_lb`) and their
    /// decay exponentials. A radius moves only inside [`Engine::step`], so
    /// refreshing the touched source there (and all of them once at
    /// construction) keeps every bound computation exact while `ub_of` —
    /// run once per posting on the hot path — avoids recomputing `exp`
    /// for its unscanned entries. The cached exponential is bit-identical
    /// to recomputing it at use: same input bits, same deterministic
    /// `exp`.
    s_lb: Vec<f64>,
    s_lb_exp: Vec<f64>,
    t_lb: Vec<f64>,
    t_lb_exp: Vec<f64>,
    /// Textual scorer: dense bitset/galloping path when the database has
    /// a layout attached, legacy merge walk otherwise (bit-identical).
    textual_eval: TextualEval<'a>,
    collector: Collector,
    bound_heap: BinaryHeap<BoundEntry>,
    metrics: SearchMetrics,
    /// Scheduling state.
    current_source: usize,
    rr_cursor: usize,
    steps_since_sweep: usize,
    labels: Vec<f64>,
    /// Set when the loop ended by exhaustion rather than by the bound test;
    /// triggers the unvisited sweep (disconnected networks, k > |P|).
    exhausted_end: bool,
    /// Per-source flag: the exhaustion transition has been processed (the
    /// pending distances of every touched trajectory set to `∞`). Indexed
    /// like the scheduler (spatial sources, then temporal).
    source_swept: Vec<bool>,
    /// Trajectories sharing ≥ 1 query keyword, ranked by exact textual
    /// similarity (descending). The textual upper bound for *unseen*
    /// trajectories is the similarity of the best-ranked entry not yet
    /// touched by any expansion: every other unseen trajectory shares no
    /// keyword and scores 0. As the search visits the strong textual
    /// matches, the bound decays — this is what lets the textual domain
    /// prune (the paper prunes in both of its domains).
    text_rank: Vec<(f64, TrajectoryId)>,
    /// Cursor into `text_rank`: entries before it are already visited.
    text_ptr: usize,
    /// `true` when `text_rank` is usable; otherwise the trivial bound 1
    /// applies (no keyword index, or an empty query keyword set whose
    /// perfect matches — untagged trajectories — the index cannot list).
    text_rank_usable: bool,
    /// Phase-time sink. One branch per mark when disabled.
    rec: &'r mut Recorder,
}

impl<'a, 'q, 'r> Engine<'a, 'q, 'r> {
    fn new(
        db: &'a Database<'a>,
        query: &'q UotsQuery,
        scheduler: Scheduler,
        collector: Collector,
        rec: &'r mut Recorder,
        ctx: &'q SearchContext,
    ) -> Self {
        let spatial: Vec<CachedSource<'a>> = query
            .locations()
            .iter()
            .map(|&v| CachedSource::start(db.network, v, ctx.cache()))
            .collect();
        let temporal: Vec<TimeExpansion<'a, TrajectoryId>> =
            if query.options().weights.uses_temporal() {
                let idx = db
                    .timestamp_index
                    .expect("validated: temporal channel has its index");
                query.times().iter().map(|&t| idx.expand_from(t)).collect()
            } else {
                Vec::new()
            };
        let num_sources = spatial.len() + temporal.len();
        let textual_eval = TextualEval::new(
            query.options().text_measure,
            query.keywords(),
            db.layout.map(|l| &l.keywords),
        );
        rec.enter(Phase::TextFilter);
        let (text_rank, text_rank_usable) = match (query.keywords().is_empty(), db.keyword_index) {
            (false, Some(kidx)) => {
                let mut rank: Vec<(f64, TrajectoryId)> = kidx
                    .union_of(query.keywords().iter())
                    .into_iter()
                    .map(|tid| (textual_eval.eval(tid, db.store.get(tid)), tid))
                    .collect();
                rank.sort_by(|a, b| b.0.total_cmp(&a.0));
                (rank, true)
            }
            _ => (Vec::new(), false),
        };
        rec.leave();
        let (m, qt) = (spatial.len(), temporal.len());
        let mut engine = Engine {
            db,
            query,
            // enforce scheduler invariants (e.g. sweep period ≥ 1) once on
            // entry; serde-built schedulers are already clamped, this
            // catches directly constructed ones
            scheduler: scheduler.normalized(),
            spatial,
            ctx,
            temporal,
            states: ScanTable::new(db.store.len(), m, qt),
            // NaN sentinels: the first refresh always writes (a real lower
            // bound is never NaN), filling the exponentials
            s_lb: vec![f64::NAN; m],
            s_lb_exp: vec![f64::NAN; m],
            t_lb: vec![f64::NAN; qt],
            t_lb_exp: vec![f64::NAN; qt],
            textual_eval,
            collector,
            bound_heap: BinaryHeap::new(),
            metrics: SearchMetrics::for_one_query(),
            current_source: 0,
            rr_cursor: 0,
            steps_since_sweep: usize::MAX, // force a sweep on the first pick
            labels: vec![0.0; num_sources],
            exhausted_end: false,
            source_swept: vec![false; num_sources],
            text_rank,
            text_ptr: 0,
            text_rank_usable,
            rec,
        };
        for i in 0..engine.spatial.len() {
            engine.refresh_spatial_lb(i);
        }
        for j in 0..engine.temporal.len() {
            engine.refresh_temporal_lb(j);
        }
        engine
    }

    /// Current upper bound on the textual similarity of any never-touched
    /// trajectory; advances the rank cursor past already-visited entries.
    fn unscanned_text_bound(&mut self) -> f64 {
        if !self.text_rank_usable {
            return 1.0;
        }
        while let Some(&(sim, tid)) = self.text_rank.get(self.text_ptr) {
            if self.states.contains(tid) {
                self.text_ptr += 1;
            } else {
                return sim;
            }
        }
        0.0
    }

    #[inline]
    fn num_spatial(&self) -> usize {
        self.spatial.len()
    }

    #[inline]
    fn num_sources(&self) -> usize {
        self.spatial.len() + self.temporal.len()
    }

    fn source_live(&self, s: usize) -> bool {
        if s < self.num_spatial() {
            !self.spatial[s].is_exhausted()
        } else {
            !self.temporal[s - self.num_spatial()].is_exhausted()
        }
    }

    /// Normalized radius of a source (dimensionless: km radii divided by the
    /// spatial decay, seconds radii by the temporal decay), for cross-domain
    /// comparison by the min-radius scheduler.
    fn normalized_radius(&self, s: usize) -> f64 {
        let o = self.query.options();
        if s < self.num_spatial() {
            self.spatial[s].radius() / o.decay_km
        } else {
            let t = &self.temporal[s - self.num_spatial()];
            if t.is_exhausted() {
                f64::INFINITY
            } else {
                t.radius() / o.decay_s
            }
        }
    }

    /// Refreshes the cached lower bound (and its decay exponential) of
    /// spatial source `i`: the current radius, or `∞` once exhausted.
    /// Must run after every event that can move the radius — see the
    /// field docs on [`Engine::s_lb`].
    #[inline]
    fn refresh_spatial_lb(&mut self, i: usize) {
        let lb = self.spatial[i].unsettled_lower_bound();
        if lb != self.s_lb[i] {
            self.s_lb[i] = lb;
            self.s_lb_exp[i] = (-lb / self.query.options().decay_km).exp();
        }
    }

    #[inline]
    fn refresh_temporal_lb(&mut self, j: usize) {
        let t = &self.temporal[j];
        let lb = if t.is_exhausted() {
            f64::INFINITY
        } else {
            t.radius()
        };
        if lb != self.t_lb[j] {
            self.t_lb[j] = lb;
            self.t_lb_exp[j] = (-lb / self.query.options().decay_s).exp();
        }
    }

    /// Upper bound on the similarity of a partly-scanned trajectory.
    /// Scanned entries compute their exponential fresh; unscanned entries
    /// use the cached per-source value — same accumulation order and same
    /// bits as evaluating every term in place.
    fn ub_of(&self, slot: usize) -> f64 {
        let o = self.query.options();
        let sd = self.states.sdists(slot);
        let mut acc = 0.0;
        for (i, &d) in sd.iter().enumerate() {
            acc += if d.is_nan() {
                self.s_lb_exp[i]
            } else {
                (-d / o.decay_km).exp()
            };
        }
        let spatial_ub = acc / sd.len() as f64;
        let temporal_ub = if self.temporal.is_empty() {
            0.0
        } else {
            let mut acc = 0.0;
            for (j, &dt) in self.states.tdists(slot).iter().enumerate() {
                acc += if dt.is_nan() {
                    self.t_lb_exp[j]
                } else {
                    (-dt / o.decay_s).exp()
                };
            }
            acc / self.temporal.len() as f64
        };
        let w = o.weights;
        w.spatial * spatial_ub + w.textual * self.states.textual[slot] + w.temporal * temporal_ub
    }

    /// Upper bound on the similarity of any never-touched trajectory.
    fn ub_unscanned(&mut self) -> f64 {
        let o = self.query.options();
        let spatial_ub = self.s_lb_exp.iter().sum::<f64>() / self.s_lb_exp.len() as f64;
        let temporal_ub = if self.temporal.is_empty() {
            0.0
        } else {
            self.t_lb_exp.iter().sum::<f64>() / self.t_lb_exp.len() as f64
        };
        let w = o.weights;
        let text_ub = self.unscanned_text_bound();
        w.spatial * spatial_ub + w.textual * text_ub + w.temporal * temporal_ub
    }

    /// Drives the search to termination, exhaustion, or interruption.
    /// Returns `Some(bound_gap)` when `gate` tripped first — the certified
    /// slack of the best-effort answer — and `None` for exact ends.
    fn run(&mut self, gate: &mut Gate) -> Option<f64> {
        loop {
            // gate check, source scheduling, termination test, and the
            // interrupt-gap certificate are all heap/bookkeeping work;
            // consecutive marks of the same phase coalesce into one span
            self.rec.enter(Phase::HeapMaintenance);
            if gate.should_stop(
                self.metrics.visited_trajectories,
                self.metrics.settled_vertices + self.metrics.scanned_timestamps,
            ) {
                return Some(self.interrupt_gap());
            }
            // A source can exhaust without ever delivering a final `None`
            // settle: the heap may empty on the very pop that finished the
            // component (no stale entries behind it), and a replayed cache
            // prefix can resume onto an already-empty frontier. Detect the
            // transition here so touched-but-pending trajectories still get
            // their exact `∞` distances and finalize.
            self.sweep_exhausted();
            let Some(src) = self.pick_source() else {
                // all sources exhausted
                self.exhausted_end = true;
                break;
            };
            let replaying = src < self.num_spatial() && self.spatial[src].in_replay();
            self.rec.enter(if replaying {
                Phase::CacheReplay
            } else {
                Phase::NetworkExpansion
            });
            self.step(src);
            self.rec.enter(Phase::HeapMaintenance);
            self.sweep_exhausted();
            if self.terminated() {
                return None;
            }
        }
        if self.exhausted_end {
            return self.sweep_unvisited(gate);
        }
        None
    }

    /// Certified slack at the moment of interruption: how much similarity
    /// any unreported trajectory could have above the pruning threshold.
    ///
    /// Sound because (a) `ub_unscanned` bounds every never-touched
    /// trajectory, (b) the heap's stale top bound over-estimates every
    /// live partly-scanned trajectory (bounds only decrease as radii
    /// grow), and (c) entries popped earlier were already `≤` a k-th best
    /// that only increases.
    fn interrupt_gap(&mut self) -> f64 {
        let base = self.collector.pruning_threshold().max(0.0);
        let mut ub = self.ub_unscanned();
        while let Some(entry) = self.bound_heap.peek() {
            let (tid, stale_ub) = (entry.tid, entry.ub.0);
            match self.states.slot_of(tid) {
                Some(slot) if !self.states.done[slot] => {
                    ub = ub.max(stale_ub);
                    break;
                }
                _ => {
                    self.bound_heap.pop(); // finalized: entry is obsolete
                }
            }
        }
        (ub - base).clamp(0.0, 1.0)
    }

    /// One settle/scan step on source `src`.
    fn step(&mut self, src: usize) {
        if src < self.num_spatial() {
            // a `None` here means exhaustion: sweep_exhausted finalizes
            // the pending states, nothing to do at the settle site
            let settled = self.spatial[src].next_settled();
            // the settle (or the final `None`) moved this source's radius:
            // refresh its cached bound before any `ub_of` below reads it
            self.refresh_spatial_lb(src);
            if let Some(settled) = settled {
                self.metrics.settled_vertices += 1;
                // the posting slice borrows the 'a-lived index, not
                // `self`, so no copy is needed on this hot path
                let tids: &'a [TrajectoryId] = self.db.vertex_index.values_at(settled.node);
                for &tid in tids {
                    self.record_spatial(tid, src, settled.dist);
                }
            }
        } else {
            let j = src - self.num_spatial();
            let scanned = self.temporal[j].next_scanned();
            self.refresh_temporal_lb(j);
            if let Some(scanned) = scanned {
                self.metrics.scanned_timestamps += 1;
                self.record_temporal(scanned.value, j, scanned.dt);
            }
        }
        let frontier: usize = self.spatial.iter().map(CachedSource::frontier_len).sum();
        self.metrics.peak_frontier = self.metrics.peak_frontier.max(frontier);
    }

    /// Appends a fresh scan-state row for `tid` and returns its slot.
    fn insert_state(&mut self, tid: TrajectoryId) -> usize {
        self.metrics.visited_trajectories += 1;
        let slot = self.states.tids.len();
        self.states.slot[tid.index()] = slot as u32 + 1;
        self.states.tids.push(tid);
        let mut s_remaining = 0u32;
        for i in 0..self.states.m {
            if self.spatial[i].is_exhausted() {
                // exact: unreachable from this source
                self.states.sdists.push(f64::INFINITY);
            } else {
                s_remaining += 1;
                self.states.sdists.push(f64::NAN);
            }
        }
        let mut t_remaining = 0u32;
        for j in 0..self.states.qt {
            if self.temporal[j].is_exhausted() {
                self.states.tdists.push(f64::INFINITY);
            } else {
                t_remaining += 1;
                self.states.tdists.push(f64::NAN);
            }
        }
        self.states.s_remaining.push(s_remaining);
        self.states.t_remaining.push(t_remaining);
        let textual = self.textual_eval.eval(tid, self.db.store.get(tid));
        self.states.textual.push(textual);
        self.states.done.push(false);
        slot
    }

    fn record_spatial(&mut self, tid: TrajectoryId, i: usize, dist: f64) {
        let (slot, created) = match self.states.slot_of(tid) {
            Some(slot) => (slot, false),
            None => {
                let slot = self.insert_state(tid);
                if self.try_landmark_prune(slot, tid) {
                    return;
                }
                (slot, true)
            }
        };
        if self.states.done[slot] {
            return;
        }
        let idx = slot * self.states.m + i;
        if self.states.sdists[idx].is_nan() {
            self.states.sdists[idx] = dist;
            self.states.s_remaining[slot] -= 1;
        } else if created && self.states.sdists[idx] == f64::INFINITY {
            // The settle that delivered this sighting is the one that
            // exhausted source `i`, so insert_state already marked the
            // source "unreachable" — overwrite with the exact distance we
            // are holding. (Without this, the distance is lost and, worse,
            // a state born fully-scanned is never finalized.)
            self.states.sdists[idx] = dist;
        } else {
            return; // a farther revisit of the same source
        }
        self.after_update(slot, tid);
    }

    fn record_temporal(&mut self, tid: TrajectoryId, j: usize, dt: f64) {
        let (slot, created) = match self.states.slot_of(tid) {
            Some(slot) => (slot, false),
            None => {
                let slot = self.insert_state(tid);
                if self.try_landmark_prune(slot, tid) {
                    return;
                }
                (slot, true)
            }
        };
        if self.states.done[slot] {
            return;
        }
        let idx = slot * self.states.qt + j;
        if self.states.tdists[idx].is_nan() {
            self.states.tdists[idx] = dt;
            self.states.t_remaining[slot] -= 1;
        } else if created && self.states.tdists[idx] == f64::INFINITY {
            // see record_spatial: same exhaustion-moment correction
            self.states.tdists[idx] = dt;
        } else {
            return;
        }
        self.after_update(slot, tid);
    }

    /// Landmark admission, applied once at a trajectory's first sighting:
    /// when the ALT-tightened similarity upper bound already proves the
    /// trajectory cannot reach the pruning threshold, retire it on the
    /// spot — no bound-heap entry, no further per-source bookkeeping, no
    /// exact evaluation. Exact under ties: the prune fires only when
    /// `ub < kth` *strictly*, so a retired trajectory satisfies
    /// `sim ≤ ub < kth`, and `kth` only increases — it can never enter the
    /// answer, not even via the id tie-break.
    fn try_landmark_prune(&mut self, slot: usize, tid: TrajectoryId) -> bool {
        let Some(lm) = self.ctx.landmarks() else {
            return false;
        };
        let kth = self.collector.pruning_threshold();
        if kth <= 0.0 {
            return false; // no threshold to prune against yet
        }
        let ub = self.alt_ub_of(slot, tid, lm);
        if ub < kth {
            self.states.done[slot] = true;
            if let Some(cache) = self.ctx.cache() {
                cache.note_bound_prune();
            }
            true
        } else {
            false
        }
    }

    /// Like [`ub_of`](Self::ub_of), additionally tightening every unknown
    /// spatial distance with the ALT landmark lower bound on `d(o_i, τ)` —
    /// the minimum of the per-vertex bounds over the trajectory's samples,
    /// since the realized distance is exactly that minimum of exact
    /// distances.
    fn alt_ub_of(&self, slot: usize, tid: TrajectoryId, lm: &Landmarks) -> f64 {
        let o = self.query.options();
        let m = self.num_spatial();
        let traj = self.db.store.get(tid);
        let sd = self.states.sdists(slot);
        let mut acc = 0.0;
        for (i, &sdi) in sd.iter().enumerate() {
            let d = if sdi.is_nan() {
                let mut alt = f64::INFINITY;
                for v in traj.nodes() {
                    alt = alt.min(lm.lower_bound(self.spatial[i].source(), v));
                }
                if !alt.is_finite() {
                    alt = 0.0; // unreachable here: trajectories are non-empty
                }
                self.s_lb[i].max(alt)
            } else {
                sdi
            };
            acc += (-d / o.decay_km).exp();
        }
        let spatial_ub = acc / m as f64;
        let temporal_ub = if self.temporal.is_empty() {
            0.0
        } else {
            let mut acc = 0.0;
            for (j, &dt) in self.states.tdists(slot).iter().enumerate() {
                acc += if dt.is_nan() {
                    self.t_lb_exp[j]
                } else {
                    (-dt / o.decay_s).exp()
                };
            }
            acc / self.temporal.len() as f64
        };
        let w = o.weights;
        w.spatial * spatial_ub + w.textual * self.states.textual[slot] + w.temporal * temporal_ub
    }

    /// Publishes every spatial source's (possibly extended) prefix to the
    /// shared cache on clean completion, or poisons them all after an
    /// interruption — a budget-tripped or cancelled run must never publish
    /// state a later query would replay as finalized.
    fn settle_cache(&mut self, clean: bool) {
        for s in &mut self.spatial {
            if clean {
                s.publish();
            } else {
                s.poison();
            }
        }
    }

    /// Finalizes or re-bounds a trajectory after a scan-state update.
    fn after_update(&mut self, slot: usize, tid: TrajectoryId) {
        if self.states.fully_scanned(slot) {
            // every call site is inside a network/temporal settle step, so
            // restore that attribution after the refine detour
            self.rec.enter(Phase::CandidateRefine);
            self.finalize(slot, tid);
            self.rec.enter(Phase::NetworkExpansion);
        } else {
            let ub = self.ub_of(slot);
            self.metrics.heap_pushes += 1;
            self.bound_heap.push(BoundEntry {
                ub: TotalF64(ub),
                tid,
            });
        }
    }

    /// Computes the exact similarity of a fully-scanned trajectory and
    /// offers it to the top-k.
    fn finalize(&mut self, slot: usize, tid: TrajectoryId) {
        let o = self.query.options();
        let sdists = self.states.sdists(slot);
        let tdists = self.states.tdists(slot);
        debug_assert!(sdists.iter().all(|d| !d.is_nan()));
        let spatial = similarity::spatial_component(sdists, o.decay_km);
        let temporal = if tdists.is_empty() {
            0.0
        } else {
            similarity::temporal_component(tdists, o.decay_s)
        };
        let textual = self.states.textual[slot];
        self.states.done[slot] = true;
        self.metrics.candidates += 1;
        self.metrics.heap_pushes += 1; // top-k (or threshold) offer
        self.collector.offer(Match {
            id: tid,
            similarity: similarity::combine(self.query, spatial, textual, temporal),
            spatial,
            textual,
            temporal,
            order_blend: None,
        });
    }

    /// Processes every source whose exhaustion transition has not been
    /// handled yet. Called at the top of the search loop and after each
    /// step, because exhaustion is observable *between* settles (empty
    /// heap, empty resumed frontier) — waiting for a `None` settle event
    /// would miss sources that never deliver one.
    fn sweep_exhausted(&mut self) {
        for i in 0..self.num_spatial() {
            if !self.source_swept[i] && self.spatial[i].is_exhausted() {
                self.source_swept[i] = true;
                self.on_spatial_exhausted(i);
            }
        }
        for j in 0..self.temporal.len() {
            let s = self.num_spatial() + j;
            if !self.source_swept[s] && self.temporal[j].is_exhausted() {
                self.source_swept[s] = true;
                self.on_temporal_exhausted(j);
            }
        }
    }

    /// A spatial source exhausted its component: every trajectory it never
    /// scanned is exactly unreachable from it.
    fn on_spatial_exhausted(&mut self, i: usize) {
        // slot order = first-sighting order: a deterministic walk (the
        // legacy HashMap iterated arbitrarily; exact answers never
        // depended on the order, best-effort ones are now reproducible).
        // Nothing below creates states or touches another slot's
        // distances, so iterating in place is safe.
        let m = self.states.m;
        for slot in 0..self.states.len() {
            if self.states.done[slot] || !self.states.sdists[slot * m + i].is_nan() {
                continue;
            }
            self.states.sdists[slot * m + i] = f64::INFINITY;
            self.states.s_remaining[slot] -= 1;
            self.after_update(slot, self.states.tids[slot]);
        }
    }

    fn on_temporal_exhausted(&mut self, j: usize) {
        let qt = self.states.qt;
        for slot in 0..self.states.len() {
            if self.states.done[slot] || !self.states.tdists[slot * qt + j].is_nan() {
                continue;
            }
            self.states.tdists[slot * qt + j] = f64::INFINITY;
            self.states.t_remaining[slot] -= 1;
            self.after_update(slot, self.states.tids[slot]);
        }
    }

    /// Degenerate end (disconnected network or k > |P|): evaluate every
    /// never-touched trajectory exactly. All sources are exhausted here, so
    /// spatial distances are exactly `∞`; textual and temporal channels are
    /// evaluated directly.
    fn sweep_unvisited(&mut self, gate: &mut Gate) -> Option<f64> {
        self.rec.enter(Phase::CandidateRefine);
        let o = self.query.options();
        let ids: Vec<TrajectoryId> = self
            .db
            .store
            .ids()
            .filter(|tid| self.db.is_live(*tid) && !self.states.contains(*tid))
            .collect();
        for tid in ids {
            if gate.should_stop(
                self.metrics.visited_trajectories,
                self.metrics.settled_vertices + self.metrics.scanned_timestamps,
            ) {
                // every source is exhausted, so a missed trajectory's
                // spatial contribution is exactly 0; its textual score is
                // bounded by the rank of the best unseen entry and its
                // temporal score trivially by 1
                let base = self.collector.pruning_threshold().max(0.0);
                let w = o.weights;
                let text_ub = self.unscanned_text_bound();
                let tm_ub = if w.uses_temporal() { 1.0 } else { 0.0 };
                return Some((w.textual * text_ub + w.temporal * tm_ub - base).clamp(0.0, 1.0));
            }
            let traj = self.db.store.get(tid);
            self.metrics.visited_trajectories += 1;
            self.metrics.candidates += 1;
            let textual = self.textual_eval.eval(tid, traj);
            let temporal = if self.query.times().is_empty() {
                0.0
            } else {
                similarity::temporal_component(
                    &similarity::temporal_gaps(self.query.times(), traj),
                    o.decay_s,
                )
            };
            self.metrics.heap_pushes += 1;
            self.collector.offer(Match {
                id: tid,
                similarity: similarity::combine(self.query, 0.0, textual, temporal),
                spatial: 0.0,
                textual,
                temporal,
                order_blend: None,
            });
        }
        None
    }

    /// Checks the two-part termination condition, cleaning the bound heap
    /// lazily.
    fn terminated(&mut self) -> bool {
        let kth = self.collector.pruning_threshold();
        if kth == f64::NEG_INFINITY {
            return false;
        }
        // both guards are deliberately *strict*: a trajectory whose bound
        // ties the k-th similarity could still realize exactly `kth` and
        // displace the incumbent on the id tie-break, so only `ub < kth`
        // proves it irrelevant. Termination is still guaranteed — when the
        // bounds never drop strictly below `kth` (exact-tie plateaus) the
        // loop ends by source exhaustion and the unvisited sweep instead.
        if self.ub_unscanned() >= kth {
            return false;
        }
        while let Some(entry) = self.bound_heap.peek() {
            let tid = entry.tid;
            match self.states.slot_of(tid) {
                Some(slot) if !self.states.done[slot] => {
                    let cur = self.ub_of(slot);
                    if cur >= kth {
                        return false;
                    }
                    // permanently prunable: bounds only decrease, kth only
                    // increases
                    self.bound_heap.pop();
                }
                _ => {
                    self.bound_heap.pop(); // finalized: entry is obsolete
                }
            }
        }
        true
    }

    /// Picks the next source per the scheduling strategy; `None` when all
    /// sources are exhausted. Every arm is `Option`-native: exhaustion is
    /// detected by the selection itself, never by a separate guard, so a
    /// source going dead between sweeps ends the expansion cleanly instead
    /// of panicking.
    fn pick_source(&mut self) -> Option<usize> {
        let n = self.num_sources();
        let pick = match self.scheduler {
            Scheduler::RoundRobin => {
                // Lazy scan of one full rotation starting at the cursor;
                // safe when n == 0 (empty range) or nothing is live (None).
                let s = (0..n)
                    .map(|off| (self.rr_cursor + off) % n.max(1))
                    .find(|&s| self.source_live(s))?;
                self.rr_cursor = s + 1;
                s
            }
            Scheduler::MinRadius => (0..n).filter(|&s| self.source_live(s)).min_by(|&a, &b| {
                self.normalized_radius(a)
                    .total_cmp(&self.normalized_radius(b))
            })?,
            Scheduler::Heuristic { recompute_every } => {
                if self.steps_since_sweep >= recompute_every.max(1) {
                    self.sweep_labels();
                    self.steps_since_sweep = 0;
                    self.current_source =
                        (0..n).filter(|&s| self.source_live(s)).max_by(|&a, &b| {
                            self.labels[a].total_cmp(&self.labels[b]).then_with(|| {
                                // tie-break: less-advanced source first
                                self.normalized_radius(b)
                                    .total_cmp(&self.normalized_radius(a))
                            })
                        })?;
                } else if !self.source_live(self.current_source) {
                    self.current_source = (0..n).find(|&s| self.source_live(s))?;
                }
                self.steps_since_sweep += 1;
                self.current_source
            }
        };
        Some(pick)
    }

    /// Recomputes the heuristic priority labels:
    /// `label(s) = Σ over partly-scanned τ not scanned by s of ub(τ)`.
    fn sweep_labels(&mut self) {
        let n = self.num_sources();
        let m = self.num_spatial();
        let kth = self.collector.pruning_threshold();
        let mut labels = vec![0.0f64; n];
        for slot in 0..self.states.len() {
            if self.states.done[slot] {
                continue;
            }
            let ub = self.ub_of(slot);
            if ub <= kth {
                continue; // already prunable: converting it has no value
            }
            for (i, d) in self.states.sdists(slot).iter().enumerate() {
                if d.is_nan() {
                    labels[i] += ub;
                }
            }
            for (j, d) in self.states.tdists(slot).iter().enumerate() {
                if d.is_nan() {
                    labels[m + j] += ub;
                }
            }
        }
        self.labels = labels;
    }

    /// Consumes the engine; `interrupt` is [`Engine::run`]'s return value.
    /// A gap of zero certifies the answer exact even when the gate tripped
    /// — provided the collector's threshold is real (see
    /// [`Collector::zero_gap_is_exact`]): at that point the normal
    /// termination test would have fired on the same state.
    fn into_result(self, interrupt: Option<f64>) -> QueryResult {
        let completeness = match interrupt {
            Some(gap) if gap <= 0.0 && self.collector.zero_gap_is_exact() => Completeness::Exact,
            Some(gap) => Completeness::BestEffort {
                bound_gap: gap.clamp(0.0, 1.0),
            },
            None => Completeness::Exact,
        };
        let mut metrics = self.metrics;
        if !completeness.is_exact() {
            metrics.interrupted = 1;
        }
        QueryResult {
            matches: self.collector.into_sorted(),
            metrics,
            completeness,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{QueryOptions, Weights};
    use uots_network::generators::{grid_city, GridCityConfig};
    use uots_network::{NetworkBuilder, NodeId, Point};
    use uots_text::{KeywordId, KeywordSet};
    use uots_trajectory::{Sample, Trajectory, TrajectoryStore};

    fn kws(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    fn traj(nodes: &[u32], t0: f64, tags: &[u32]) -> Trajectory {
        Trajectory::new(
            nodes
                .iter()
                .enumerate()
                .map(|(i, &v)| Sample {
                    node: NodeId(v),
                    time: t0 + 60.0 * i as f64,
                })
                .collect(),
            kws(tags),
        )
        .unwrap()
    }

    /// 6×6 lattice with three trajectories at different distances from the
    /// query corner.
    fn fixture() -> (uots_network::RoadNetwork, TrajectoryStore) {
        let net = grid_city(&GridCityConfig::tiny(6)).unwrap();
        let mut store = TrajectoryStore::new();
        store.push(traj(&[0, 1, 2], 1_000.0, &[1, 2])); // near v0
        store.push(traj(&[14, 15, 16], 2_000.0, &[2, 3])); // middle
        store.push(traj(&[33, 34, 35], 40_000.0, &[9])); // far corner
        (net, store)
    }

    fn run(
        net: &uots_network::RoadNetwork,
        store: &TrajectoryStore,
        q: &UotsQuery,
        s: Scheduler,
    ) -> QueryResult {
        let vidx = store.build_vertex_index(net.num_nodes());
        let tidx = store.build_timestamp_index();
        let db = Database::new(net, store, &vidx).with_timestamp_index(&tidx);
        expansion_search(&db, q, s).unwrap()
    }

    #[test]
    fn finds_the_obvious_best_trajectory() {
        let (net, store) = fixture();
        let q = UotsQuery::new(vec![NodeId(0), NodeId(1)], kws(&[1, 2])).unwrap();
        for s in [
            Scheduler::RoundRobin,
            Scheduler::MinRadius,
            Scheduler::heuristic(),
        ] {
            let r = run(&net, &store, &q, s);
            assert_eq!(r.matches.len(), 1, "{s:?}");
            assert_eq!(r.matches[0].id, TrajectoryId(0), "{s:?}");
            assert!(r.is_ranked());
        }
    }

    #[test]
    fn top_k_larger_than_dataset_returns_everything() {
        let (net, store) = fixture();
        let q = UotsQuery::new(vec![NodeId(0)], kws(&[1]))
            .unwrap()
            .reoptioned(QueryOptions {
                k: 10,
                ..Default::default()
            })
            .unwrap();
        let r = run(&net, &store, &q, Scheduler::heuristic());
        assert_eq!(r.matches.len(), 3);
        assert!(r.is_ranked());
    }

    #[test]
    fn early_termination_prunes_far_trajectories() {
        let (net, store) = fixture();
        // spatial-only query right on trajectory 0: expansion should stop
        // before visiting the far corner trajectory
        let q = UotsQuery::new(vec![NodeId(0), NodeId(2)], kws(&[1, 2])).unwrap();
        let r = run(&net, &store, &q, Scheduler::heuristic());
        assert_eq!(r.matches[0].id, TrajectoryId(0));
        // the search must not have settled the whole network
        assert!(
            r.metrics.settled_vertices < 2 * net.num_nodes(),
            "settled {} vertices",
            r.metrics.settled_vertices
        );
    }

    #[test]
    fn textual_weight_shifts_the_winner() {
        let (net, store) = fixture();
        // trajectory 1 matches the keywords {2,3} perfectly but is farther;
        // with λ small (textual dominates) it must win
        let q = UotsQuery::with_options(
            vec![NodeId(0)],
            kws(&[2, 3]),
            vec![],
            QueryOptions {
                weights: Weights::lambda(0.05).unwrap(),
                ..Default::default()
            },
        )
        .unwrap();
        let r = run(&net, &store, &q, Scheduler::heuristic());
        assert_eq!(r.matches[0].id, TrajectoryId(1));

        let q = q
            .reoptioned(QueryOptions {
                weights: Weights::lambda(0.95).unwrap(),
                ..Default::default()
            })
            .unwrap();
        let r = run(&net, &store, &q, Scheduler::heuristic());
        assert_eq!(r.matches[0].id, TrajectoryId(0));
    }

    #[test]
    fn temporal_channel_prefers_synchronous_trajectories() {
        let (net, store) = fixture();
        // all three trajectories are spatially indistinct under a huge decay,
        // but only trajectory 2 travels around 40_000 s
        let q = UotsQuery::with_options(
            vec![NodeId(0)],
            KeywordSet::empty(),
            vec![40_060.0],
            QueryOptions {
                weights: Weights::new(0.0, 0.0, 1.0).unwrap(),
                ..Default::default()
            },
        )
        .unwrap();
        let r = run(&net, &store, &q, Scheduler::heuristic());
        assert_eq!(r.matches[0].id, TrajectoryId(2));
        assert!(r.matches[0].temporal > 0.9);
    }

    #[test]
    fn all_schedulers_agree_on_results() {
        let (net, store) = fixture();
        let q = UotsQuery::new(vec![NodeId(7), NodeId(22)], kws(&[2]))
            .unwrap()
            .reoptioned(QueryOptions {
                k: 3,
                ..Default::default()
            })
            .unwrap();
        let a = run(&net, &store, &q, Scheduler::RoundRobin);
        let b = run(&net, &store, &q, Scheduler::MinRadius);
        let c = run(&net, &store, &q, Scheduler::heuristic());
        assert_eq!(a.ids(), b.ids());
        assert_eq!(b.ids(), c.ids());
        for (x, y) in a.matches.iter().zip(c.matches.iter()) {
            assert!((x.similarity - y.similarity).abs() < 1e-12);
        }
    }

    #[test]
    fn disconnected_network_still_answers_exactly() {
        // two components; query in component A, best textual match lives in
        // component B and must be found via the unvisited sweep
        let mut b = NetworkBuilder::new();
        let a0 = b.add_node(Point::new(0.0, 0.0));
        let a1 = b.add_node(Point::new(1.0, 0.0));
        let b0 = b.add_node(Point::new(100.0, 100.0));
        let b1 = b.add_node(Point::new(101.0, 100.0));
        b.add_edge(a0, a1, None).unwrap();
        b.add_edge(b0, b1, None).unwrap();
        let net = b.build().unwrap();
        let mut store = TrajectoryStore::new();
        store.push(traj(&[0, 1], 0.0, &[5])); // component A, wrong tags
        store.push(traj(&[2, 3], 0.0, &[1, 2])); // component B, right tags
        let q = UotsQuery::with_options(
            vec![NodeId(0)],
            kws(&[1, 2]),
            vec![],
            QueryOptions {
                weights: Weights::lambda(0.1).unwrap(),
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let r = run(&net, &store, &q, Scheduler::heuristic());
        assert_eq!(r.matches.len(), 2);
        // textual dominates: the cross-component trajectory wins
        assert_eq!(r.matches[0].id, TrajectoryId(1));
        assert_eq!(r.matches[0].spatial, 0.0);
        assert!((r.matches[0].textual - 1.0).abs() < 1e-12);
    }

    /// Three isolated components, query sources confined to two tiny ones:
    /// every Dijkstra exhausts its component long before the collector is
    /// satisfied, so each scheduler must survive total source exhaustion
    /// (regression for the `.expect("at least one live source")` panics in
    /// `pick_source`) and still answer exactly via the unvisited sweep.
    fn exhaustion_fixture() -> (uots_network::RoadNetwork, TrajectoryStore) {
        let mut b = NetworkBuilder::new();
        // component A: nodes 0-1, component B: nodes 2-3, component C: 4-5
        let a0 = b.add_node(Point::new(0.0, 0.0));
        let a1 = b.add_node(Point::new(1.0, 0.0));
        let b0 = b.add_node(Point::new(50.0, 0.0));
        let b1 = b.add_node(Point::new(51.0, 0.0));
        let c0 = b.add_node(Point::new(100.0, 100.0));
        let c1 = b.add_node(Point::new(101.0, 100.0));
        b.add_edge(a0, a1, None).unwrap();
        b.add_edge(b0, b1, None).unwrap();
        b.add_edge(c0, c1, None).unwrap();
        let net = b.build().unwrap();
        let mut store = TrajectoryStore::new();
        store.push(traj(&[0, 1], 0.0, &[5])); // component A
        store.push(traj(&[4, 5], 0.0, &[1, 2])); // component C: unreachable
        store.push(traj(&[4, 5], 100.0, &[2])); // component C: unreachable
        (net, store)
    }

    #[test]
    fn full_source_exhaustion_terminates_cleanly_under_every_scheduler() {
        let (net, store) = exhaustion_fixture();
        let q = UotsQuery::new(vec![NodeId(0), NodeId(2)], kws(&[1, 2]))
            .unwrap()
            .reoptioned(QueryOptions {
                k: 3,
                ..Default::default()
            })
            .unwrap();
        let vidx = store.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &store, &vidx);
        let oracle =
            crate::algorithms::Algorithm::run(&crate::algorithms::BruteForce, &db, &q).unwrap();
        for s in [
            Scheduler::RoundRobin,
            Scheduler::MinRadius,
            Scheduler::heuristic(),
            // recompute_every = 1 forces the max_by re-selection on every
            // step, including the step where the last source dies
            Scheduler::Heuristic { recompute_every: 1 },
        ] {
            let r = run(&net, &store, &q, s);
            assert_eq!(r.ids(), oracle.ids(), "{s:?}");
            assert!(r.is_ranked(), "{s:?}");
            for (x, y) in r.matches.iter().zip(oracle.matches.iter()) {
                assert!((x.similarity - y.similarity).abs() < 1e-12, "{s:?}");
            }
        }
    }

    #[test]
    fn exhaustion_with_temporal_channel_and_threshold_search() {
        // same fixture, but exercise the threshold driver and a temporal
        // query, both of which share pick_source
        let (net, store) = exhaustion_fixture();
        let vidx = store.build_vertex_index(net.num_nodes());
        let tidx = store.build_timestamp_index();
        let db = Database::new(&net, &store, &vidx).with_timestamp_index(&tidx);
        let q = UotsQuery::with_options(
            vec![NodeId(0), NodeId(2)],
            kws(&[2]),
            vec![60.0],
            QueryOptions {
                weights: Weights::new(0.2, 0.4, 0.4).unwrap(),
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        for s in [
            Scheduler::RoundRobin,
            Scheduler::MinRadius,
            Scheduler::Heuristic { recompute_every: 1 },
        ] {
            let r = expansion_search(&db, &q, s).unwrap();
            assert_eq!(r.matches.len(), 3, "{s:?}");
            let t = threshold_search(&db, &q, 0.01, s).unwrap();
            assert!(t.is_ranked(), "{s:?}");
        }
    }

    #[test]
    fn threshold_search_returns_exactly_the_qualifying_set() {
        let (net, store) = fixture();
        let vidx = store.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &store, &vidx);
        let q = UotsQuery::new(vec![NodeId(0), NodeId(7)], kws(&[1, 2])).unwrap();
        // oracle: brute force with a huge k, filtered
        let all = {
            let q_all = q
                .reoptioned(QueryOptions {
                    k: 100,
                    ..Default::default()
                })
                .unwrap();
            crate::algorithms::Algorithm::run(&crate::algorithms::BruteForce, &db, &q_all).unwrap()
        };
        for theta in [0.2, 0.5, 0.8] {
            let got = threshold_search(&db, &q, theta, Scheduler::heuristic()).unwrap();
            let expect: Vec<TrajectoryId> = all
                .matches
                .iter()
                .filter(|m| m.similarity >= theta)
                .map(|m| m.id)
                .collect();
            assert_eq!(got.ids(), expect, "θ={theta}");
            assert!(got.is_ranked());
            for m in &got.matches {
                assert!(m.similarity >= theta);
            }
        }
    }

    #[test]
    fn threshold_search_validates_theta() {
        let (net, store) = fixture();
        let vidx = store.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &store, &vidx);
        let q = UotsQuery::new(vec![NodeId(0)], kws(&[])).unwrap();
        assert!(threshold_search(&db, &q, 0.0, Scheduler::heuristic()).is_err());
        assert!(threshold_search(&db, &q, 1.5, Scheduler::heuristic()).is_err());
    }

    #[test]
    fn high_threshold_terminates_quickly_with_empty_result() {
        let (net, store) = fixture();
        let vidx = store.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &store, &vidx);
        // locations far from every trajectory, near-1 threshold: nothing
        // qualifies, and the fixed threshold prunes from the first step
        let q = UotsQuery::with_options(
            vec![NodeId(30)],
            kws(&[]),
            vec![],
            QueryOptions {
                weights: Weights::lambda(1.0).unwrap(),
                ..Default::default()
            },
        )
        .unwrap();
        let r = threshold_search(&db, &q, 0.999, Scheduler::heuristic()).unwrap();
        assert!(r.matches.is_empty());
        assert!(
            r.metrics.settled_vertices < net.num_nodes(),
            "threshold pruning should stop the expansion early"
        );
    }

    #[test]
    fn metrics_are_populated() {
        let (net, store) = fixture();
        let q = UotsQuery::new(vec![NodeId(0)], kws(&[1])).unwrap();
        let r = run(&net, &store, &q, Scheduler::heuristic());
        assert_eq!(r.metrics.queries, 1);
        assert!(r.metrics.settled_vertices > 0);
        assert!(r.metrics.visited_trajectories >= r.metrics.candidates);
        assert!(r.metrics.candidates >= r.matches.len());
        assert!(r.metrics.heap_pushes >= r.metrics.candidates);
        assert!(r.metrics.peak_frontier > 0);
        // uninstrumented runs must not fabricate a phase breakdown
        assert!(r.metrics.phases.is_zero());
    }

    #[test]
    fn recorded_run_attributes_time_to_phases() {
        let (net, store) = fixture();
        let vidx = store.build_vertex_index(net.num_nodes());
        let tidx = store.build_timestamp_index();
        let db = Database::new(&net, &store, &vidx).with_timestamp_index(&tidx);
        let q = UotsQuery::new(vec![NodeId(0), NodeId(7)], kws(&[1, 2])).unwrap();
        let plain = expansion_search(&db, &q, Scheduler::heuristic()).unwrap();
        let mut rec = Recorder::phases_only("engine-test");
        let r = expansion_search_recorded(
            &db,
            &q,
            Scheduler::heuristic(),
            &RunControl::unbounded(),
            &mut rec,
        )
        .unwrap();
        assert_eq!(r.ids(), plain.ids());
        assert!(!r.metrics.phases.is_zero());
        assert!(r.metrics.phases.nanos(Phase::NetworkExpansion) > 0);
        assert!(r.metrics.phases.nanos(Phase::HeapMaintenance) > 0);
        // the snapshot is taken before `runtime` is stamped, so the phase
        // total can never exceed the reported wall clock
        assert!(r.metrics.phases.total() <= r.metrics.runtime);
        // instrumentation must not change the work done
        assert_eq!(r.metrics.heap_pushes, plain.metrics.heap_pushes);
        assert_eq!(r.metrics.peak_frontier, plain.metrics.peak_frontier);
        assert_eq!(r.metrics.settled_vertices, plain.metrics.settled_vertices);
    }
}
