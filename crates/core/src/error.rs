//! Error type for the query engine.

/// Errors produced by query construction and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A query parameter failed validation.
    BadParameter(String),
    /// A query location is not a vertex of the database's network.
    UnknownLocation(uots_network::NodeId),
    /// The algorithm requires an index the database was not given (e.g. the
    /// temporal channel without a timestamp index).
    MissingIndex(&'static str),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::BadParameter(msg) => write!(f, "bad query parameter: {msg}"),
            CoreError::UnknownLocation(v) => {
                write!(f, "query location {v} is not in the network")
            }
            CoreError::MissingIndex(which) => {
                write!(f, "database is missing the required {which} index")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use uots_network::NodeId;

    #[test]
    fn display_is_informative() {
        assert!(CoreError::BadParameter("k".into()).to_string().contains("k"));
        assert!(CoreError::UnknownLocation(NodeId(4))
            .to_string()
            .contains("v4"));
        assert!(CoreError::MissingIndex("timestamp")
            .to_string()
            .contains("timestamp"));
    }
}
