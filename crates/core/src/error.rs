//! Error type for the query engine.

/// Errors produced by query construction and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A query parameter failed validation.
    BadParameter(String),
    /// A query location is not a vertex of the database's network.
    UnknownLocation(uots_network::NodeId),
    /// The algorithm requires an index the database was not given (e.g. the
    /// temporal channel without a timestamp index).
    MissingIndex(&'static str),
    /// A query's worker panicked during batch execution; the payload is the
    /// panic message. Only the panicking query is affected — under
    /// [`crate::parallel::BatchPolicy::Partial`] the rest of the batch
    /// still returns.
    QueryPanicked(String),
    /// A batch exceeded the executor's admission bound and was rejected
    /// before any query ran.
    Overloaded {
        /// Queries submitted in the batch.
        submitted: usize,
        /// The executor's admission capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::BadParameter(msg) => write!(f, "bad query parameter: {msg}"),
            CoreError::UnknownLocation(v) => {
                write!(f, "query location {v} is not in the network")
            }
            CoreError::MissingIndex(which) => {
                write!(f, "database is missing the required {which} index")
            }
            CoreError::QueryPanicked(msg) => {
                write!(f, "query worker panicked: {msg}")
            }
            CoreError::Overloaded {
                submitted,
                capacity,
            } => {
                write!(
                    f,
                    "batch of {submitted} queries exceeds the admission capacity of {capacity}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use uots_network::NodeId;

    #[test]
    fn display_is_informative() {
        assert!(CoreError::BadParameter("k".into())
            .to_string()
            .contains("k"));
        assert!(CoreError::UnknownLocation(NodeId(4))
            .to_string()
            .contains("v4"));
        assert!(CoreError::MissingIndex("timestamp")
            .to_string()
            .contains("timestamp"));
        assert!(CoreError::QueryPanicked("boom".into())
            .to_string()
            .contains("boom"));
        let over = CoreError::Overloaded {
            submitted: 10,
            capacity: 4,
        }
        .to_string();
        assert!(over.contains("10") && over.contains("4"));
    }
}
