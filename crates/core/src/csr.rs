//! Flat CSR adjacency and batched multi-source Dijkstra expansion.
//!
//! [`CsrGraph`] is a struct-of-arrays compressed-sparse-row adjacency:
//! `u32` vertex ids, one `offsets` array (length `n + 1`) delimiting each
//! vertex's slice of the parallel `targets`/`weights` arrays. Compared to
//! traversing [`RoadNetwork`](uots_network::RoadNetwork) through its
//! `NodeId` API, the flat layout keeps the Dijkstra inner loop on two
//! contiguous arrays with no bounds-indirection, and — unlike
//! `NetworkBuilder` — the raw-edge constructor accepts self-loops and
//! parallel (multi-)edges, which the round-trip property tests exercise.
//!
//! [`MultiSourceExpansion`] batches the `m` query sources of a UOTS query
//! into **one** Dijkstra drain sharing a single binary heap and a single
//! pass over the adjacency, with per-source distance/settled rows. Each
//! source's relaxation sequence is exactly the one its independent
//! single-source run would perform (per-source state is disjoint; only
//! the frontier is shared), so the resulting distances are bit-identical
//! to `m` separate runs — the regression tests in
//! `tests/layout_proptests.rs` assert this, including on disconnected
//! graphs where some sources exhaust early.

use std::collections::BinaryHeap;
use uots_network::{NodeId, RoadNetwork, TotalF64};

/// Why a graph cannot be laid out as a `u32`-indexed CSR.
///
/// The CSR layout stores vertex ids and row offsets as `u32`, so a graph
/// with more than `u32::MAX` vertices or adjacency entries does not fit.
/// Before this check existed, construction silently truncated the counts
/// through `as u32` casts (a wrapped `offsets` array corrupts *every* row
/// after the wrap point); now the checked constructors refuse instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrError {
    /// More vertices than `u32` ids can address.
    TooManyNodes {
        /// Requested vertex count.
        nodes: usize,
    },
    /// More adjacency entries (2·|E| − self-loops) than a `u32` row
    /// offset can delimit.
    TooManyEntries {
        /// Required adjacency entry count.
        entries: u64,
    },
    /// An edge endpoint is not a vertex (`endpoint >= num_nodes`).
    EndpointOutOfRange {
        /// The offending endpoint id.
        endpoint: u32,
        /// The declared vertex count.
        nodes: usize,
    },
}

impl std::fmt::Display for CsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrError::TooManyNodes { nodes } => {
                write!(f, "{nodes} vertices exceed the u32 CSR id space")
            }
            CsrError::TooManyEntries { entries } => write!(
                f,
                "{entries} adjacency entries exceed the u32 CSR offset space"
            ),
            CsrError::EndpointOutOfRange { endpoint, nodes } => {
                write!(f, "edge endpoint {endpoint} >= num_nodes {nodes}")
            }
        }
    }
}

impl std::error::Error for CsrError {}

/// Largest vertex/entry count a `u32`-indexed CSR can represent.
const MAX_U32_EXTENT: u64 = u32::MAX as u64;

/// Validates that `nodes` vertices and `entries` adjacency entries fit the
/// `u32` CSR layout. Factored out of the constructors so the boundary
/// arithmetic is unit-testable without allocating a 4-billion-entry graph.
fn check_extents(nodes: usize, entries: u64) -> Result<(), CsrError> {
    // Vertex ids are u32 and `offsets` has `nodes + 1` rows, so both the
    // ids and the row count must stay within u32.
    if nodes as u64 > MAX_U32_EXTENT {
        return Err(CsrError::TooManyNodes { nodes });
    }
    if entries > MAX_U32_EXTENT {
        return Err(CsrError::TooManyEntries { entries });
    }
    Ok(())
}

/// Struct-of-arrays CSR adjacency over `u32` vertex ids (see module docs).
///
/// Undirected: every edge `{a, b}` with `a != b` contributes one entry to
/// both endpoint rows; a self-loop contributes a single entry to its
/// vertex's row.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// Row delimiters, length `num_nodes + 1`.
    offsets: Vec<u32>,
    /// Neighbor vertex ids, length `offsets[n]`.
    targets: Vec<u32>,
    /// Edge weights parallel to `targets`.
    weights: Vec<f64>,
}

impl CsrGraph {
    /// Builds the CSR layout from a [`RoadNetwork`], preserving its
    /// adjacency order row by row.
    ///
    /// # Panics
    ///
    /// Panics if the network exceeds the `u32` CSR extents (see
    /// [`CsrGraph::try_from_network`] for the checked variant).
    pub fn from_network(net: &RoadNetwork) -> Self {
        Self::try_from_network(net).expect("network fits the u32 CSR layout")
    }

    /// Checked [`CsrGraph::from_network`]: validates that the vertex and
    /// adjacency-entry counts fit the `u32` layout before building,
    /// instead of silently truncating them through `as u32` casts.
    ///
    /// # Errors
    ///
    /// [`CsrError::TooManyNodes`] / [`CsrError::TooManyEntries`] when the
    /// network does not fit.
    pub fn try_from_network(net: &RoadNetwork) -> Result<Self, CsrError> {
        let n = net.num_nodes();
        // Entry count before any allocation: every undirected edge
        // contributes one entry per endpoint row.
        let entries = (0..n)
            .map(|v| net.neighbors(NodeId(v as u32)).count() as u64)
            .sum();
        check_extents(n, entries)?;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(entries as usize);
        let mut weights = Vec::with_capacity(entries as usize);
        offsets.push(0u32);
        for v in 0..n {
            for (u, w) in net.neighbors(NodeId(v as u32)) {
                targets.push(u.0);
                weights.push(w);
            }
            offsets.push(targets.len() as u32);
        }
        Ok(CsrGraph {
            offsets,
            targets,
            weights,
        })
    }

    /// Builds the CSR layout from a raw undirected edge list.
    ///
    /// Unlike `NetworkBuilder`, this accepts self-loops (one row entry)
    /// and parallel edges (one row entry per endpoint per copy), and
    /// keeps isolated vertices (any `v < num_nodes` with no edges gets an
    /// empty row). Entries within a row appear in input-edge order.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= num_nodes` or the graph exceeds the
    /// `u32` CSR extents (see [`CsrGraph::try_from_edges`] for the
    /// checked variant).
    pub fn from_edges(num_nodes: usize, edges: &[(u32, u32, f64)]) -> Self {
        Self::try_from_edges(num_nodes, edges).expect("edge list fits the u32 CSR layout")
    }

    /// Checked [`CsrGraph::from_edges`]: validates endpoints and that the
    /// vertex/entry counts fit the `u32` layout. The entry count is
    /// accumulated in `u64` — the old unchecked path summed row degrees in
    /// `u32`, which wraps silently in release builds on a graph with more
    /// than `u32::MAX` adjacency entries and corrupts every row offset
    /// after the wrap point.
    ///
    /// # Errors
    ///
    /// [`CsrError::EndpointOutOfRange`] for a bad endpoint,
    /// [`CsrError::TooManyNodes`] / [`CsrError::TooManyEntries`] when the
    /// graph does not fit.
    pub fn try_from_edges(num_nodes: usize, edges: &[(u32, u32, f64)]) -> Result<Self, CsrError> {
        if num_nodes as u64 > MAX_U32_EXTENT {
            return Err(CsrError::TooManyNodes { nodes: num_nodes });
        }
        let mut entries = 0u64;
        for &(a, b, _) in edges {
            for e in [a, b] {
                if (e as usize) >= num_nodes {
                    return Err(CsrError::EndpointOutOfRange {
                        endpoint: e,
                        nodes: num_nodes,
                    });
                }
            }
            entries += if a == b { 1 } else { 2 };
        }
        check_extents(num_nodes, entries)?;
        let mut degree = vec![0u32; num_nodes];
        for &(a, b, _) in edges {
            degree[a as usize] += 1;
            if a != b {
                degree[b as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        let mut acc = 0u32;
        offsets.push(0u32);
        for &d in &degree {
            // cannot wrap: Σ degree == entries, validated ≤ u32::MAX above
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..num_nodes].to_vec();
        let mut targets = vec![0u32; acc as usize];
        let mut weights = vec![0.0f64; acc as usize];
        for &(a, b, w) in edges {
            let ca = cursor[a as usize] as usize;
            targets[ca] = b;
            weights[ca] = w;
            cursor[a as usize] += 1;
            if a != b {
                let cb = cursor[b as usize] as usize;
                targets[cb] = a;
                weights[cb] = w;
                cursor[b as usize] += 1;
            }
        }
        Ok(CsrGraph {
            offsets,
            targets,
            weights,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of adjacency entries (2·|E| minus one per self-loop).
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.targets.len()
    }

    /// Degree of vertex `v` (self-loops count once).
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// The neighbors of `v` with edge weights, in row order.
    #[inline]
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Recovers the undirected edge multiset: one `(min, max, w)` tuple
    /// per input edge (self-loops as `(v, v, w)`), in unspecified order.
    /// Used by the round-trip property tests.
    pub fn edge_list(&self) -> Vec<(u32, u32, f64)> {
        let mut edges = Vec::with_capacity(self.targets.len() / 2);
        for v in 0..self.num_nodes() as u32 {
            for (u, w) in self.neighbors(v) {
                if u >= v {
                    edges.push((v, u, w));
                }
            }
        }
        edges
    }
}

/// A vertex settled by a [`MultiSourceExpansion`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsSettled {
    /// Index of the source (position in the `sources` slice) that
    /// settled the vertex.
    pub source: usize,
    /// The settled vertex.
    pub node: u32,
    /// Exact network distance from `sources[source]`.
    pub dist: f64,
}

/// Min-heap entry keyed `(dist, source, node)` — deterministic across
/// runs; `BinaryHeap` is a max-heap so the ordering is reversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MsEntry {
    dist: TotalF64,
    source: u32,
    node: u32,
}

impl PartialOrd for MsEntry {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MsEntry {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .dist
            .cmp(&self.dist)
            .then_with(|| other.source.cmp(&self.source))
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Batched Dijkstra from `m` sources over a shared frontier.
///
/// Distance and settled state are flat `m × n` rows (source-major), so
/// the whole batch makes one pass over the heap instead of `m`
/// independent passes; per-source results are bit-identical to `m`
/// single-source runs (see module docs).
pub struct MultiSourceExpansion<'a> {
    graph: &'a CsrGraph,
    sources: Vec<u32>,
    /// `m × n` tentative distances, source-major.
    dist: Vec<f64>,
    /// `m × n` settled flags, source-major.
    settled: Vec<bool>,
    heap: BinaryHeap<MsEntry>,
    reached: Vec<usize>,
}

impl<'a> MultiSourceExpansion<'a> {
    /// Starts a batched expansion from `sources` (indices into `graph`).
    ///
    /// # Panics
    ///
    /// Panics if a source is not a vertex of the graph.
    pub fn new(graph: &'a CsrGraph, sources: &[u32]) -> Self {
        let n = graph.num_nodes();
        let m = sources.len();
        let mut dist = vec![f64::INFINITY; m * n];
        let mut heap = BinaryHeap::with_capacity(m);
        for (si, &s) in sources.iter().enumerate() {
            assert!((s as usize) < n, "source {s} not in graph");
            dist[si * n + s as usize] = 0.0;
            heap.push(MsEntry {
                dist: TotalF64(0.0),
                source: si as u32,
                node: s,
            });
        }
        MultiSourceExpansion {
            graph,
            sources: sources.to_vec(),
            dist,
            settled: vec![false; m * n],
            heap,
            reached: vec![0; m],
        }
    }

    /// Convenience: start and drain to exhaustion in one call.
    pub fn run(graph: &'a CsrGraph, sources: &[u32]) -> Self {
        let mut ms = Self::new(graph, sources);
        ms.run_to_exhaustion();
        ms
    }

    /// Settles and returns the globally next-nearest `(source, vertex)`
    /// pair, or `None` once every source is exhausted.
    pub fn next_settled(&mut self) -> Option<MsSettled> {
        let n = self.graph.num_nodes();
        while let Some(MsEntry { dist, source, node }) = self.heap.pop() {
            let si = source as usize;
            let row = si * n;
            if self.settled[row + node as usize] {
                continue; // stale heap entry
            }
            self.settled[row + node as usize] = true;
            self.reached[si] += 1;
            let d = dist.0;
            for (u, w) in self.graph.neighbors(node) {
                let nd = d + w;
                let slot = row + u as usize;
                if nd < self.dist[slot] && !self.settled[slot] {
                    self.dist[slot] = nd;
                    self.heap.push(MsEntry {
                        dist: TotalF64(nd),
                        source,
                        node: u,
                    });
                }
            }
            return Some(MsSettled {
                source: si,
                node,
                dist: d,
            });
        }
        None
    }

    /// Drains the expansion until every source has settled its entire
    /// reachable component.
    pub fn run_to_exhaustion(&mut self) {
        while self.next_settled().is_some() {}
    }

    /// Number of sources in the batch.
    #[inline]
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// The source vertex at batch index `si`.
    #[inline]
    pub fn source(&self, si: usize) -> u32 {
        self.sources[si]
    }

    /// Exact distance from source `si` to `node`, or `None` if the
    /// vertex has not been settled (unreachable, once drained).
    #[inline]
    pub fn distance(&self, si: usize, node: u32) -> Option<f64> {
        let slot = si * self.graph.num_nodes() + node as usize;
        self.settled[slot].then(|| self.dist[slot])
    }

    /// Number of vertices source `si` has settled so far.
    #[inline]
    pub fn reached_count(&self, si: usize) -> usize {
        self.reached[si]
    }

    /// Total settled events across all sources so far.
    #[inline]
    pub fn total_settled(&self) -> usize {
        self.reached.iter().sum()
    }

    /// Whether the whole batch is exhausted (shared frontier empty).
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uots_network::generators::{self, GridCityConfig};

    #[test]
    fn from_network_mirrors_adjacency() {
        let net = generators::grid_city(&GridCityConfig::tiny(5)).unwrap();
        let g = CsrGraph::from_network(&net);
        assert_eq!(g.num_nodes(), net.num_nodes());
        for v in 0..net.num_nodes() as u32 {
            let ours: Vec<(u32, f64)> = g.neighbors(v).collect();
            let theirs: Vec<(u32, f64)> = net.neighbors(NodeId(v)).map(|(u, w)| (u.0, w)).collect();
            assert_eq!(ours, theirs, "row {v}");
        }
    }

    #[test]
    fn from_edges_handles_self_loops_and_multi_edges() {
        // 0-1 (twice, different weights), 1-1 self-loop, vertex 3 isolated
        let edges = [(0, 1, 1.0), (1, 0, 2.0), (1, 1, 5.0)];
        let g = CsrGraph::from_edges(4, &edges);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3); // two parallel edges + one self-loop entry
        assert_eq!(g.degree(3), 0);
        let mut recovered = g.edge_list();
        recovered.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(recovered, vec![(0, 1, 1.0), (0, 1, 2.0), (1, 1, 5.0)]);
    }

    #[test]
    fn multi_source_matches_single_source_bitwise() {
        let net = generators::grid_city(&GridCityConfig::tiny(6)).unwrap();
        let g = CsrGraph::from_network(&net);
        let sources = [0u32, 17, 35];
        let batch = MultiSourceExpansion::run(&g, &sources);
        for (si, &s) in sources.iter().enumerate() {
            let solo = MultiSourceExpansion::run(&g, &[s]);
            for v in 0..g.num_nodes() as u32 {
                let a = batch.distance(si, v);
                let b = solo.distance(0, v);
                match (a, b) {
                    (Some(x), Some(y)) => assert_eq!(x.to_bits(), y.to_bits(), "v{v} s{s}"),
                    (None, None) => {}
                    other => panic!("settled mismatch at v{v} s{s}: {other:?}"),
                }
            }
        }
    }

    /// Regression for the silent-truncation bug: the extent check must
    /// reject exactly the counts the `u32` layout cannot hold, at the
    /// boundary, without allocating boundary-sized graphs.
    #[test]
    fn extent_check_rejects_overflow_at_the_u32_boundary() {
        let max = u32::MAX as u64;
        // at the boundary: fits
        assert_eq!(check_extents(max as usize, 0), Ok(()));
        assert_eq!(check_extents(0, max), Ok(()));
        assert_eq!(check_extents(max as usize, max), Ok(()));
        // one past: typed errors, never a wrapped offset
        assert_eq!(
            check_extents(max as usize + 1, 0),
            Err(CsrError::TooManyNodes {
                nodes: max as usize + 1
            })
        );
        assert_eq!(
            check_extents(0, max + 1),
            Err(CsrError::TooManyEntries { entries: max + 1 })
        );
    }

    #[test]
    fn try_from_edges_reports_bad_endpoints_as_errors() {
        let err = CsrGraph::try_from_edges(3, &[(0, 7, 1.0)]).unwrap_err();
        assert_eq!(
            err,
            CsrError::EndpointOutOfRange {
                endpoint: 7,
                nodes: 3
            }
        );
        assert!(err.to_string().contains("7"));
        // the panicking wrapper still panics (documented behavior)
        assert!(std::panic::catch_unwind(|| CsrGraph::from_edges(3, &[(0, 7, 1.0)])).is_err());
    }

    #[test]
    fn checked_constructors_agree_with_the_legacy_ones() {
        let net = generators::grid_city(&GridCityConfig::tiny(4)).unwrap();
        let a = CsrGraph::from_network(&net);
        let b = CsrGraph::try_from_network(&net).unwrap();
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.edge_list(), b.edge_list());

        let edges = [(0, 1, 1.0), (1, 0, 2.0), (1, 1, 5.0)];
        let c = CsrGraph::try_from_edges(4, &edges).unwrap();
        assert_eq!(c.edge_list(), CsrGraph::from_edges(4, &edges).edge_list());
    }

    #[test]
    fn disconnected_sources_exhaust_cleanly() {
        // two components: {0,1} and {2}
        let g = CsrGraph::from_edges(3, &[(0, 1, 1.0)]);
        let ms = MultiSourceExpansion::run(&g, &[0, 2]);
        assert!(ms.is_exhausted());
        assert_eq!(ms.reached_count(0), 2);
        assert_eq!(ms.reached_count(1), 1);
        assert_eq!(ms.distance(0, 2), None);
        assert_eq!(ms.distance(1, 0), None);
        assert_eq!(ms.distance(1, 2), Some(0.0));
    }
}
