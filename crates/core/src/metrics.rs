//! Search metrics: the quantities the paper's evaluation reports.
//!
//! The paper family's two standard metrics are **CPU time** and the
//! **number of visited trajectories** (a proxy for data accesses); the
//! pruning-effectiveness tables additionally report candidate and pruning
//! ratios. [`SearchMetrics`] collects all of them per query, and
//! [`SearchMetrics::merge`] aggregates across a workload.

use serde::{Deserialize, Serialize};
use std::time::Duration;
use uots_obs::PhaseNanos;

/// Counters collected while answering one query (or aggregated over many).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchMetrics {
    /// Number of queries merged into this record (1 for a single query).
    pub queries: usize,
    /// Distinct trajectories touched by the search (scanned at least once,
    /// or exactly evaluated by a filter-and-refine baseline).
    pub visited_trajectories: usize,
    /// Vertices settled by network expansions (plus, for baselines, the
    /// vertices settled by their full Dijkstra passes).
    pub settled_vertices: usize,
    /// Timestamps scanned by temporal expansions (extension channel).
    pub scanned_timestamps: usize,
    /// Trajectories that became candidates (fully scanned / exactly
    /// evaluated).
    pub candidates: usize,
    /// Queries that ended best-effort (budget exhausted, deadline hit, or
    /// cancelled) instead of proving exactness.
    pub interrupted: usize,
    /// Entries pushed into the search's priority heaps: the engine's
    /// per-trajectory bound heap plus top-k offers (the baselines' only
    /// heap). Together with `peak_frontier` this makes expansion memory
    /// behavior visible alongside `settled_vertices`.
    pub heap_pushes: usize,
    /// Largest total Dijkstra frontier (pending heap entries summed over
    /// all spatial sources) observed at any step. Merging takes the max —
    /// queries do not run on the same frontier, so the aggregate reports
    /// the worst single query.
    pub peak_frontier: usize,
    /// Wall-clock time attributed to each search phase. All-zero unless the
    /// query ran under an enabled `uots_obs::Recorder` (telemetry is opt-in;
    /// the disabled recorder costs one branch per phase mark). Additive
    /// under [`SearchMetrics::merge`], like `runtime`.
    pub phases: PhaseNanos,
    /// Wall-clock time spent answering.
    pub runtime: Duration,
}

impl SearchMetrics {
    /// A zeroed record for one query.
    pub fn for_one_query() -> Self {
        SearchMetrics {
            queries: 1,
            ..Default::default()
        }
    }

    /// Candidate ratio: candidates / total trajectories in the database
    /// (averaged per query when merged). Zero for an empty database.
    ///
    /// Averaging semantics under [`SearchMetrics::merge`]: `candidates`
    /// accumulates and `queries` counts the merged records, so the ratio of
    /// a merged record is the **mean of the per-query ratios** (every query
    /// is weighted equally, each against the same `total_trajectories`
    /// denominator) — not the ratio of some pooled candidate set. This
    /// matches how the paper's tables average pruning power over a
    /// workload. It assumes all merged queries ran against the same
    /// database size; do not merge metrics across databases of different
    /// sizes and then read this ratio.
    pub fn candidate_ratio(&self, total_trajectories: usize) -> f64 {
        if total_trajectories == 0 || self.queries == 0 {
            return 0.0;
        }
        self.candidates as f64 / (total_trajectories * self.queries) as f64
    }

    /// Pruning ratio: `1 − candidate ratio`.
    pub fn pruning_ratio(&self, total_trajectories: usize) -> f64 {
        1.0 - self.candidate_ratio(total_trajectories)
    }

    /// Visited-trajectory count averaged per query.
    pub fn visited_per_query(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.visited_trajectories as f64 / self.queries as f64
    }

    /// Runtime averaged per query. Divides in `f64`, so aggregates of more
    /// than `u32::MAX` queries do not truncate the divisor (the old
    /// `runtime / queries as u32` silently wrapped there).
    pub fn runtime_per_query(&self) -> Duration {
        if self.queries == 0 {
            return Duration::ZERO;
        }
        self.runtime.div_f64(self.queries as f64)
    }

    /// Accumulates another record into this one. Counters and durations
    /// (including the per-phase breakdown) add; `peak_frontier` takes the
    /// max. See [`SearchMetrics::candidate_ratio`] for what the accumulated
    /// `candidates` means ratio-wise.
    pub fn merge(&mut self, other: &SearchMetrics) {
        self.queries += other.queries;
        self.visited_trajectories += other.visited_trajectories;
        self.settled_vertices += other.settled_vertices;
        self.scanned_timestamps += other.scanned_timestamps;
        self.candidates += other.candidates;
        self.interrupted += other.interrupted;
        self.heap_pushes += other.heap_pushes;
        self.peak_frontier = self.peak_frontier.max(other.peak_frontier);
        self.phases.merge(&other.phases);
        self.runtime += other.runtime;
    }

    /// Merges an iterator of records into one aggregate.
    pub fn aggregate<'a>(records: impl IntoIterator<Item = &'a SearchMetrics>) -> Self {
        let mut out = SearchMetrics::default();
        for r in records {
            out.merge(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_on_single_query() {
        let m = SearchMetrics {
            queries: 1,
            candidates: 25,
            ..Default::default()
        };
        assert!((m.candidate_ratio(100) - 0.25).abs() < 1e-12);
        assert!((m.pruning_ratio(100) - 0.75).abs() < 1e-12);
        assert_eq!(m.candidate_ratio(0), 0.0);
    }

    #[test]
    fn merge_accumulates_everything() {
        use uots_obs::Phase;
        let mut pa = PhaseNanos::ZERO;
        pa.add(Phase::NetworkExpansion, 500);
        let mut pb = PhaseNanos::ZERO;
        pb.add(Phase::NetworkExpansion, 100);
        pb.add(Phase::CandidateRefine, 40);
        let mut a = SearchMetrics {
            queries: 1,
            visited_trajectories: 10,
            settled_vertices: 100,
            scanned_timestamps: 5,
            candidates: 3,
            interrupted: 1,
            heap_pushes: 12,
            peak_frontier: 40,
            phases: pa,
            runtime: Duration::from_millis(20),
        };
        let b = SearchMetrics {
            queries: 1,
            visited_trajectories: 30,
            settled_vertices: 50,
            scanned_timestamps: 0,
            candidates: 7,
            interrupted: 0,
            heap_pushes: 8,
            peak_frontier: 25,
            phases: pb,
            runtime: Duration::from_millis(10),
        };
        a.merge(&b);
        assert_eq!(a.queries, 2);
        assert_eq!(a.visited_trajectories, 40);
        assert_eq!(a.settled_vertices, 150);
        assert_eq!(a.candidates, 10);
        assert_eq!(a.interrupted, 1);
        assert_eq!(a.heap_pushes, 20);
        // peak is a max, not a sum: two queries never share a frontier
        assert_eq!(a.peak_frontier, 40);
        assert_eq!(a.phases.nanos(Phase::NetworkExpansion), 600);
        assert_eq!(a.phases.nanos(Phase::CandidateRefine), 40);
        assert_eq!(a.runtime, Duration::from_millis(30));
        assert!((a.visited_per_query() - 20.0).abs() < 1e-12);
        assert_eq!(a.runtime_per_query(), Duration::from_millis(15));
        // per-query candidate ratio: 10 candidates over 2 × 100
        assert!((a.candidate_ratio(100) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn runtime_per_query_survives_huge_query_counts() {
        // u32-truncating division would wrap `queries` to 0 here and panic
        // (or return garbage); div_f64 must stay finite and sane
        let m = SearchMetrics {
            queries: u32::MAX as usize + 2,
            runtime: Duration::from_secs(u32::MAX as u64 + 2),
            ..Default::default()
        };
        let per = m.runtime_per_query();
        assert!((per.as_secs_f64() - 1.0).abs() < 1e-6, "got {per:?}");
    }

    #[test]
    fn aggregate_of_empty_is_zero() {
        let agg = SearchMetrics::aggregate([]);
        assert_eq!(agg.queries, 0);
        assert_eq!(agg.visited_per_query(), 0.0);
        assert_eq!(agg.runtime_per_query(), Duration::ZERO);
    }
}
