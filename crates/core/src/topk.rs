//! Bounded top-k collector.
//!
//! Keeps the `k` best [`Match`]es seen so far and exposes the **threshold**
//! — the k-th best similarity — that the search compares against its global
//! upper bound to decide termination. Ties are broken by ascending
//! trajectory id, the same total order used everywhere
//! ([`Match::ranking_cmp`]), so every algorithm produces identical rankings.

use crate::result::Match;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Wrapper making the *worst* retained match sit on top of the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct WorstFirst(Match);

impl Eq for WorstFirst {}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse the ranking order so the worst
        // (lowest-ranked) match is on top and gets evicted first.
        self.0.ranking_cmp(&other.0)
    }
}

/// A bounded collector of the `k` best matches.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<WorstFirst>,
}

impl TopK {
    /// Creates a collector for `k ≥ 1` results.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers a match; returns `true` when it was retained.
    pub fn offer(&mut self, m: Match) -> bool {
        if self.heap.len() < self.k {
            self.heap.push(WorstFirst(m));
            return true;
        }
        let worst = self.heap.peek().expect("heap is full");
        if m.ranking_cmp(&worst.0) == Ordering::Less {
            self.heap.pop();
            self.heap.push(WorstFirst(m));
            true
        } else {
            false
        }
    }

    /// Number of matches currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no match has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The termination threshold: the k-th best similarity, or `-∞` while
    /// fewer than `k` matches are held. A search may stop once its global
    /// upper bound on unseen trajectories drops to (or below) this value.
    pub fn threshold(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::NEG_INFINITY
        } else {
            self.heap.peek().expect("non-empty").0.similarity
        }
    }

    /// Extracts the matches, best first.
    pub fn into_sorted(self) -> Vec<Match> {
        let mut v: Vec<Match> = self.heap.into_iter().map(|w| w.0).collect();
        v.sort_by(Match::ranking_cmp);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uots_trajectory::TrajectoryId;

    fn m(id: u32, sim: f64) -> Match {
        Match {
            id: TrajectoryId(id),
            similarity: sim,
            spatial: 0.0,
            textual: 0.0,
            temporal: 0.0,
            order_blend: None,
        }
    }

    #[test]
    fn keeps_k_best() {
        let mut t = TopK::new(3);
        for (id, s) in [(0, 0.1), (1, 0.9), (2, 0.5), (3, 0.7), (4, 0.3)] {
            t.offer(m(id, s));
        }
        let out = t.into_sorted();
        let ids: Vec<u32> = out.iter().map(|x| x.id.0).collect();
        assert_eq!(ids, vec![1, 3, 2]);
    }

    #[test]
    fn threshold_tracks_kth_best() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f64::NEG_INFINITY);
        t.offer(m(0, 0.4));
        assert_eq!(t.threshold(), f64::NEG_INFINITY); // only 1 of 2
        t.offer(m(1, 0.8));
        assert_eq!(t.threshold(), 0.4);
        t.offer(m(2, 0.6));
        assert_eq!(t.threshold(), 0.6);
        t.offer(m(3, 0.1)); // rejected
        assert_eq!(t.threshold(), 0.6);
    }

    #[test]
    fn offer_reports_retention() {
        let mut t = TopK::new(1);
        assert!(t.offer(m(0, 0.5)));
        assert!(!t.offer(m(1, 0.4)));
        assert!(t.offer(m(2, 0.6)));
        assert_eq!(t.into_sorted()[0].id, TrajectoryId(2));
    }

    #[test]
    fn ties_break_by_ascending_id() {
        let mut t = TopK::new(2);
        t.offer(m(5, 0.5));
        t.offer(m(1, 0.5));
        t.offer(m(3, 0.5)); // same sim as worst (id 5) but lower id: replaces it
        let ids: Vec<u32> = t.into_sorted().iter().map(|x| x.id.0).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn fewer_offers_than_k() {
        let mut t = TopK::new(10);
        t.offer(m(0, 0.2));
        t.offer(m(1, 0.9));
        let out = t.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].id, TrajectoryId(1));
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        TopK::new(0);
    }
}
