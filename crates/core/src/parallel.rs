//! Parallel batch query execution, hardened for production use.
//!
//! UOTS trajectory searches are independent of each other — the property the
//! paper exploits for parallelism ("the search processes of different
//! trajectories are independent, enabling parallel processing", with a merge
//! cost uncorrelated to the thread count; in the *search* setting there is
//! nothing to merge at all). This module fans a batch of queries over a
//! rayon thread pool and preserves input order in the output.
//!
//! The hardened entry point is [`run_batch_with`]:
//!
//! - **Panic isolation** — a query whose worker panics is reported as
//!   [`CoreError::QueryPanicked`] for that slot; the other queries in the
//!   batch still complete (under [`BatchPolicy::Partial`]).
//! - **Batch deadlines** — [`BatchOptions::deadline`] folds a per-batch
//!   wall-clock limit into each query's [`RunControl`], so in-flight
//!   queries cancel cooperatively and return certified best-effort results
//!   instead of running away.
//! - **Bounded admission** — [`BatchOptions::max_batch`] rejects oversized
//!   batches up front with [`CoreError::Overloaded`] rather than queueing
//!   unbounded work.

use crate::algorithms::Algorithm;
use crate::budget::{CancellationToken, RunControl};
use crate::{CoreError, Database, QueryResult, SearchMetrics, UotsQuery};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// How a batch reacts to a failing query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// The first error (by input order) fails the whole batch.
    #[default]
    FailFast,
    /// Every query gets a slot; failures are reported per slot and do not
    /// affect their neighbours.
    Partial,
}

/// Knobs for [`run_batch_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOptions {
    /// Failure handling across the batch.
    pub policy: BatchPolicy,
    /// Wall-clock limit for the whole batch; queries still in flight when
    /// it expires are cancelled cooperatively and return best-effort
    /// results (they do **not** error).
    pub deadline: Option<Duration>,
    /// Admission bound: batches larger than this are rejected with
    /// [`CoreError::Overloaded`] before any work starts.
    pub max_batch: Option<usize>,
    /// Worker threads (0 and 1 both mean sequential-through-the-pool).
    pub threads: usize,
}

impl BatchOptions {
    /// Fail-fast execution on `threads` workers, no deadline, no admission
    /// bound — the behaviour of the plain [`run_batch`].
    pub fn fail_fast(threads: usize) -> Self {
        BatchOptions {
            policy: BatchPolicy::FailFast,
            threads,
            ..Default::default()
        }
    }

    /// Partial execution on `threads` workers.
    pub fn partial(threads: usize) -> Self {
        BatchOptions {
            policy: BatchPolicy::Partial,
            threads,
            ..Default::default()
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn run_isolated<A: Algorithm + ?Sized>(
    db: &Database<'_>,
    algorithm: &A,
    query: &UotsQuery,
    ctl: &RunControl,
) -> Result<QueryResult, CoreError> {
    catch_unwind(AssertUnwindSafe(|| algorithm.run_with(db, query, ctl)))
        .unwrap_or_else(|payload| Err(CoreError::QueryPanicked(panic_message(payload))))
}

/// Runs `queries` over `db` with `algorithm` under the given batch options
/// and a shared cancellation token, returning per-query outcomes in input
/// order.
///
/// Cancelling `token` mid-batch makes in-flight and not-yet-started queries
/// return empty best-effort results; it is cloned into every query's
/// [`RunControl`] together with the batch deadline (if any).
///
/// # Errors
///
/// Batch-level errors (the outer `Result`): pool construction failure,
/// [`CoreError::Overloaded`] from the admission bound, and — under
/// [`BatchPolicy::FailFast`] — the first per-query error by input order.
/// Under [`BatchPolicy::Partial`], per-query errors (including
/// [`CoreError::QueryPanicked`]) stay in their slot of the inner `Vec`.
pub fn run_batch_with<A: Algorithm + Sync>(
    db: &Database<'_>,
    algorithm: &A,
    queries: &[UotsQuery],
    opts: &BatchOptions,
    token: &CancellationToken,
) -> Result<Vec<Result<QueryResult, CoreError>>, CoreError> {
    if let Some(cap) = opts.max_batch {
        if queries.len() > cap {
            return Err(CoreError::Overloaded {
                submitted: queries.len(),
                capacity: cap,
            });
        }
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(opts.threads.max(1))
        .build()
        .map_err(|e| CoreError::BadParameter(format!("thread pool: {e}")))?;
    let mut ctl = RunControl::with_token(token.clone());
    if let Some(d) = opts.deadline {
        ctl = ctl.with_deadline(Instant::now() + d);
    }
    let results: Vec<Result<QueryResult, CoreError>> = pool.install(|| {
        queries
            .par_iter()
            .map(|q| run_isolated(db, algorithm, q, &ctl))
            .collect()
    });
    if opts.policy == BatchPolicy::FailFast {
        if let Some(err) = results.iter().find_map(|r| r.as_ref().err()) {
            return Err(err.clone());
        }
    }
    Ok(results)
}

/// Runs `queries` over `db` with `algorithm` on a dedicated pool of
/// `threads` workers, returning per-query results in input order.
///
/// `threads = 1` degenerates to sequential execution (still through the
/// pool, so scheduling overhead is measured honestly in the thread-scaling
/// experiment).
///
/// # Errors
///
/// Returns the first query error encountered (by input order) — including
/// [`CoreError::QueryPanicked`] if a worker panics. Pool construction
/// failures are reported as [`CoreError::BadParameter`].
pub fn run_batch<A: Algorithm + Sync>(
    db: &Database<'_>,
    algorithm: &A,
    queries: &[UotsQuery],
    threads: usize,
) -> Result<Vec<QueryResult>, CoreError> {
    run_batch_with(
        db,
        algorithm,
        queries,
        &BatchOptions::fail_fast(threads),
        &CancellationToken::new(),
    )?
    .into_iter()
    .collect()
}

/// Alternative executor on crossbeam scoped threads with a shared atomic
/// work cursor (no rayon): demonstrates that the per-query searches need
/// no coordination beyond handing out indices. Produces exactly the same
/// results as [`run_batch`]; useful as a dependency-light baseline and for
/// measuring scheduler overhead differences.
///
/// # Errors
///
/// Returns the first query error encountered (by input order). A panicking
/// query is caught inside its worker and surfaced as
/// [`CoreError::QueryPanicked`]; it cannot take the other workers down.
pub fn run_batch_crossbeam<A: Algorithm + Sync>(
    db: &Database<'_>,
    algorithm: &A,
    queries: &[UotsQuery],
    threads: usize,
) -> Result<Vec<QueryResult>, CoreError> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let threads = threads.max(1).min(queries.len().max(1));
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<QueryResult, CoreError>>> = Vec::new();
    slots.resize_with(queries.len(), || None);
    let ctl = RunControl::unbounded();

    // Collect per-thread (index, result) pairs and scatter afterwards —
    // simpler than sharing &mut slots across threads.
    let gathered: Vec<Vec<(usize, Result<QueryResult, CoreError>)>> =
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cursor = &cursor;
                    let ctl = &ctl;
                    scope.spawn(move |_| {
                        let mut mine = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= queries.len() {
                                break;
                            }
                            mine.push((i, run_isolated(db, algorithm, &queries[i], ctl)));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|payload| {
                        // run_isolated catches query panics, so reaching
                        // this means the worker loop itself died; report
                        // it rather than poisoning the whole process.
                        vec![(
                            usize::MAX,
                            Err(CoreError::QueryPanicked(panic_message(payload))),
                        )]
                    })
                })
                .collect()
        })
        .map_err(|payload| CoreError::QueryPanicked(panic_message(payload)))?;

    let mut stray: Option<CoreError> = None;
    for per_thread in gathered {
        for (i, r) in per_thread {
            if i == usize::MAX {
                stray = Some(r.expect_err("sentinel slot always carries an error"));
            } else {
                slots[i] = Some(r);
            }
        }
    }
    if let Some(err) = stray {
        return Err(err);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every query index was dispatched"))
        .collect()
}

/// Convenience: runs a batch and aggregates the per-query metrics.
///
/// # Errors
///
/// Same as [`run_batch`].
pub fn run_batch_aggregated<A: Algorithm + Sync>(
    db: &Database<'_>,
    algorithm: &A,
    queries: &[UotsQuery],
    threads: usize,
) -> Result<(Vec<QueryResult>, SearchMetrics), CoreError> {
    let results = run_batch(db, algorithm, queries, threads)?;
    let agg = SearchMetrics::aggregate(results.iter().map(|r| &r.metrics));
    Ok((results, agg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Expansion;
    use crate::testing::{FaultyAlgorithm, SlowAlgorithm};
    use uots_datagen::{workload, Dataset, DatasetConfig};

    fn setup() -> (Dataset, Vec<UotsQuery>) {
        let ds = Dataset::build(&DatasetConfig::small(80, 31)).unwrap();
        let specs = workload::generate(
            &ds,
            &workload::WorkloadConfig {
                num_queries: 12,
                ..Default::default()
            },
        );
        let queries = specs
            .into_iter()
            .map(|s| UotsQuery::new(s.locations, s.keywords).unwrap())
            .collect();
        (ds, queries)
    }

    #[test]
    fn parallel_results_match_sequential() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
            .with_keyword_index(&ds.keyword_index);
        let algo = Expansion::default();
        let seq = run_batch(&db, &algo, &queries, 1).unwrap();
        let par = run_batch(&db, &algo, &queries, 4).unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.ids(), b.ids());
            assert_eq!(
                a.metrics.visited_trajectories,
                b.metrics.visited_trajectories
            );
        }
    }

    #[test]
    fn crossbeam_executor_matches_rayon() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
            .with_keyword_index(&ds.keyword_index);
        let algo = Expansion::default();
        let rayon_results = run_batch(&db, &algo, &queries, 3).unwrap();
        let crossbeam_results = run_batch_crossbeam(&db, &algo, &queries, 3).unwrap();
        assert_eq!(rayon_results.len(), crossbeam_results.len());
        for (a, b) in rayon_results.iter().zip(crossbeam_results.iter()) {
            assert_eq!(a.ids(), b.ids());
            assert_eq!(
                a.metrics.visited_trajectories,
                b.metrics.visited_trajectories
            );
        }
    }

    #[test]
    fn crossbeam_executor_handles_more_threads_than_queries() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let algo = Expansion::default();
        let one = &queries[..1];
        let r = run_batch_crossbeam(&db, &algo, one, 16).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn aggregation_sums_per_query_metrics() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let algo = Expansion::default();
        let (results, agg) = run_batch_aggregated(&db, &algo, &queries, 2).unwrap();
        assert_eq!(agg.queries, queries.len());
        let manual: usize = results.iter().map(|r| r.metrics.visited_trajectories).sum();
        assert_eq!(agg.visited_trajectories, manual);
    }

    #[test]
    fn errors_propagate() {
        let (ds, _) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let bad = UotsQuery::new(
            vec![uots_network::NodeId(1_000_000)],
            uots_text::KeywordSet::empty(),
        )
        .unwrap();
        let err = run_batch(&db, &Expansion::default(), &[bad], 2);
        assert!(err.is_err());
    }

    #[test]
    fn partial_policy_isolates_a_panicking_query() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let algo = FaultyAlgorithm::new(Expansion::default(), 0, "injected fault");
        let out = run_batch_with(
            &db,
            &algo,
            &queries,
            &BatchOptions::partial(1),
            &CancellationToken::new(),
        )
        .unwrap();
        assert_eq!(out.len(), queries.len());
        // threads=1 makes call order deterministic: exactly slot 0 panicked
        assert!(matches!(out[0], Err(CoreError::QueryPanicked(_))));
        for (i, r) in out.iter().enumerate().skip(1) {
            assert!(r.is_ok(), "slot {i} must survive the panic in slot 0");
        }
    }

    #[test]
    fn fail_fast_policy_surfaces_the_panic_as_an_error() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let algo = FaultyAlgorithm::new(Expansion::default(), 0, "injected fault");
        let err = run_batch_with(
            &db,
            &algo,
            &queries,
            &BatchOptions::fail_fast(1),
            &CancellationToken::new(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::QueryPanicked(ref m) if m.contains("injected")));
    }

    #[test]
    fn crossbeam_executor_survives_a_panicking_query() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let algo = FaultyAlgorithm::new(Expansion::default(), 2, "boom");
        let err = run_batch_crossbeam(&db, &algo, &queries, 3).unwrap_err();
        assert!(matches!(err, CoreError::QueryPanicked(ref m) if m.contains("boom")));
        // every query was still dispatched despite the panic
        assert_eq!(algo.calls(), queries.len());
    }

    #[test]
    fn admission_bound_rejects_oversized_batches() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let opts = BatchOptions {
            max_batch: Some(4),
            ..BatchOptions::partial(2)
        };
        let err = run_batch_with(
            &db,
            &Expansion::default(),
            &queries,
            &opts,
            &CancellationToken::new(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CoreError::Overloaded {
                submitted: 12,
                capacity: 4
            }
        ));
    }

    #[test]
    fn batch_deadline_cancels_in_flight_queries() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let algo = SlowAlgorithm::new(Expansion::default(), Duration::from_secs(3600));
        let opts = BatchOptions {
            deadline: Some(Duration::from_millis(20)),
            ..BatchOptions::partial(2)
        };
        let out = run_batch_with(&db, &algo, &queries, &opts, &CancellationToken::new()).unwrap();
        assert_eq!(out.len(), queries.len());
        for r in &out {
            let r = r.as_ref().unwrap();
            assert!(!r.completeness.is_exact(), "deadline must interrupt");
        }
    }

    #[test]
    fn shared_token_cancels_the_whole_batch() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let token = CancellationToken::new();
        token.cancel();
        let out = run_batch_with(
            &db,
            &Expansion::default(),
            &queries,
            &BatchOptions::partial(2),
            &token,
        )
        .unwrap();
        for r in &out {
            let r = r.as_ref().unwrap();
            assert!(!r.completeness.is_exact());
            assert!(r.matches.is_empty());
        }
    }
}
