//! Parallel batch query execution, hardened for production use.
//!
//! UOTS trajectory searches are independent of each other — the property the
//! paper exploits for parallelism ("the search processes of different
//! trajectories are independent, enabling parallel processing", with a merge
//! cost uncorrelated to the thread count; in the *search* setting there is
//! nothing to merge at all). This module fans a batch of queries over a
//! rayon thread pool and preserves input order in the output.
//!
//! The hardened entry point is [`run_batch_with`]:
//!
//! - **Panic isolation** — a query whose worker panics is reported as
//!   [`CoreError::QueryPanicked`] for that slot; the other queries in the
//!   batch still complete (under [`BatchPolicy::Partial`]).
//! - **Batch deadlines** — [`BatchOptions::deadline`] folds a per-batch
//!   wall-clock limit into each query's [`RunControl`], so in-flight
//!   queries cancel cooperatively and return certified best-effort results
//!   instead of running away.
//! - **Bounded admission** — [`BatchOptions::max_batch`] rejects oversized
//!   batches up front with [`CoreError::Overloaded`] rather than queueing
//!   unbounded work.

use crate::algorithms::Algorithm;
use crate::budget::{CancellationToken, RunControl};
use crate::distcache::SearchContext;
use crate::epoch::{EpochManager, EpochSnapshot};
use crate::{CoreError, Database, QueryResult, SearchMetrics, UotsQuery};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uots_obs::{Counter, Gauge, Histogram, MetricsRegistry, Recorder, TailSampler};

/// How a batch reacts to a failing query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// The first error (by input order) fails the whole batch.
    #[default]
    FailFast,
    /// Every query gets a slot; failures are reported per slot and do not
    /// affect their neighbours.
    Partial,
}

/// Knobs for [`run_batch_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOptions {
    /// Failure handling across the batch.
    pub policy: BatchPolicy,
    /// Wall-clock limit for the whole batch; queries still in flight when
    /// it expires are cancelled cooperatively and return best-effort
    /// results (they do **not** error).
    pub deadline: Option<Duration>,
    /// Admission bound: batches larger than this are rejected with
    /// [`CoreError::Overloaded`] before any work starts.
    pub max_batch: Option<usize>,
    /// Worker threads (0 and 1 both mean sequential-through-the-pool).
    pub threads: usize,
}

impl BatchOptions {
    /// Fail-fast execution on `threads` workers, no deadline, no admission
    /// bound — the behaviour of the plain [`run_batch`].
    pub fn fail_fast(threads: usize) -> Self {
        BatchOptions {
            policy: BatchPolicy::FailFast,
            threads,
            ..Default::default()
        }
    }

    /// Partial execution on `threads` workers.
    pub fn partial(threads: usize) -> Self {
        BatchOptions {
            policy: BatchPolicy::Partial,
            threads,
            ..Default::default()
        }
    }
}

/// Telemetry hooks for batch execution, backed by a shared
/// [`MetricsRegistry`].
///
/// Construct one per registry and pass it to [`run_batch_observed`] /
/// [`run_batch_crossbeam_observed`]. The observer registers:
///
/// - `uots_batch_pending_queries` (gauge) — admitted queries a worker has
///   not picked up yet (the queue depth);
/// - `uots_batch_inflight_queries` (gauge) — queries currently executing;
/// - `uots_batch_queries_total{outcome=…}` (counters) — finished queries by
///   outcome (`completed`, `interrupted`, `failed`, `panicked`);
/// - `uots_batch_rejected_total` (counter) — batches refused by the
///   admission bound before any work started;
/// - `uots_query_latency_us` (histogram) — per-query wall-clock latency;
/// - `uots_query_phase_duration_ns{phase=…}` (histograms) — per-phase time,
///   recorded from the per-query [`Recorder`] the observed runner enables.
///
/// All handles are atomics/mutexes shared with the registry, so gauges stay
/// correct even when queries panic (the panicking worker is isolated and
/// its in-flight decrement still runs in the caller).
pub struct BatchObserver {
    registry: MetricsRegistry,
    pending: Gauge,
    inflight: Gauge,
    completed: Counter,
    interrupted: Counter,
    failed: Counter,
    panicked: Counter,
    rejected: Counter,
    latency_us: Histogram,
    sampler: Option<TailSampler>,
}

impl BatchObserver {
    /// Registers the batch metric families in `registry` (idempotent: a
    /// second observer on the same registry shares the same underlying
    /// metrics).
    pub fn new(registry: &MetricsRegistry) -> Self {
        let outcome = |o: &str| {
            registry.counter_with(
                "uots_batch_queries_total",
                "Finished batch queries by outcome",
                &[("outcome", o)],
            )
        };
        BatchObserver {
            registry: registry.clone(),
            pending: registry.gauge(
                "uots_batch_pending_queries",
                "Admitted queries not yet picked up by a worker",
            ),
            inflight: registry.gauge("uots_batch_inflight_queries", "Queries currently executing"),
            completed: outcome("completed"),
            interrupted: outcome("interrupted"),
            failed: outcome("failed"),
            panicked: outcome("panicked"),
            rejected: registry.counter(
                "uots_batch_rejected_total",
                "Batches refused by the admission bound",
            ),
            latency_us: registry.histogram(
                "uots_query_latency_us",
                "Per-query wall-clock latency in microseconds",
            ),
            sampler: None,
        }
    }

    /// Attaches a [`TailSampler`]: every observed query feeds its latency
    /// and outcome into the sampler, and — when the sampler was built with
    /// tracing ([`TailSampler::with_tracing`]) — runs under a tracing
    /// recorder so slow/best-effort/errored queries keep full
    /// [`QueryTrace`](uots_obs::QueryTrace) exemplars.
    pub fn with_sampler(mut self, sampler: TailSampler) -> Self {
        self.sampler = Some(sampler);
        self
    }

    /// The attached tail sampler, if any.
    pub fn sampler(&self) -> Option<&TailSampler> {
        self.sampler.as_ref()
    }

    /// The registry this observer records into.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    fn on_admitted(&self, n: usize) {
        self.pending.add(i64::try_from(n).unwrap_or(i64::MAX));
    }

    fn on_start(&self) {
        self.pending.dec();
        self.inflight.inc();
    }

    fn on_finish(&self, result: &Result<QueryResult, CoreError>, elapsed: Duration) {
        self.inflight.dec();
        self.latency_us
            .record(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
        match result {
            Ok(r) => {
                if r.completeness.is_exact() {
                    self.completed.inc();
                } else {
                    self.interrupted.inc();
                }
                self.registry.observe_phases(
                    "uots_query_phase_duration_ns",
                    "Per-query time attributed to each search phase (ns)",
                    &r.metrics.phases,
                );
            }
            Err(CoreError::QueryPanicked(_)) => self.panicked.inc(),
            Err(_) => self.failed.inc(),
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn run_isolated<A: Algorithm + ?Sized>(
    db: &Database<'_>,
    algorithm: &A,
    query: &UotsQuery,
    ctl: &RunControl,
    ctx: &SearchContext,
) -> Result<QueryResult, CoreError> {
    catch_unwind(AssertUnwindSafe(|| {
        let mut rec = Recorder::disabled();
        algorithm.run_ctx(db, query, ctl, &mut rec, ctx)
    }))
    .unwrap_or_else(|payload| Err(CoreError::QueryPanicked(panic_message(payload))))
}

/// [`run_isolated`], optionally reporting to an observer. Observed queries
/// run under a phases-only [`Recorder`] so their `metrics.phases` breakdown
/// is populated; unobserved queries keep the zero-cost disabled recorder.
/// When the observer carries a tracing [`TailSampler`], queries run under a
/// tracing recorder instead and the finished trace is offered to the
/// sampler (kept only for slow/best-effort/errored queries).
fn run_observed<A: Algorithm + ?Sized>(
    db: &Database<'_>,
    algorithm: &A,
    query: &UotsQuery,
    ctl: &RunControl,
    obs: Option<&BatchObserver>,
    ctx: &SearchContext,
) -> Result<QueryResult, CoreError> {
    let Some(obs) = obs else {
        return run_isolated(db, algorithm, query, ctl, ctx);
    };
    let trace_spans = obs.sampler.as_ref().and_then(|s| s.trace_spans());
    obs.on_start();
    let start = Instant::now();
    let (result, trace) = catch_unwind(AssertUnwindSafe(|| {
        let mut rec = match trace_spans {
            Some(cap) => Recorder::tracing(algorithm.name(), cap),
            None => Recorder::phases_only(algorithm.name()),
        };
        let result = algorithm.run_ctx(db, query, ctl, &mut rec, ctx);
        let trace = rec.finish().and_then(|report| report.trace);
        (result, trace)
    }))
    .unwrap_or_else(|payload| (Err(CoreError::QueryPanicked(panic_message(payload))), None));
    let elapsed = start.elapsed();
    obs.on_finish(&result, elapsed);
    if let Some(sampler) = &obs.sampler {
        let latency_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let (best_effort, errored) = match &result {
            Ok(r) => (!r.completeness.is_exact(), false),
            Err(_) => (false, true),
        };
        sampler.observe(&query.summary(), latency_us, best_effort, errored, trace);
    }
    result
}

/// Runs `queries` over `db` with `algorithm` under the given batch options
/// and a shared cancellation token, returning per-query outcomes in input
/// order.
///
/// Cancelling `token` mid-batch makes in-flight and not-yet-started queries
/// return empty best-effort results; it is cloned into every query's
/// [`RunControl`] together with the batch deadline (if any).
///
/// # Errors
///
/// Batch-level errors (the outer `Result`): pool construction failure,
/// [`CoreError::Overloaded`] from the admission bound, and — under
/// [`BatchPolicy::FailFast`] — the first per-query error by input order.
/// Under [`BatchPolicy::Partial`], per-query errors (including
/// [`CoreError::QueryPanicked`]) stay in their slot of the inner `Vec`.
pub fn run_batch_with<A: Algorithm + Sync>(
    db: &Database<'_>,
    algorithm: &A,
    queries: &[UotsQuery],
    opts: &BatchOptions,
    token: &CancellationToken,
) -> Result<Vec<Result<QueryResult, CoreError>>, CoreError> {
    run_batch_inner(
        db,
        algorithm,
        queries,
        opts,
        token,
        None,
        &SearchContext::default(),
    )
}

/// [`run_batch_with`] under a shared [`SearchContext`]: every query in the
/// batch probes and feeds the *same* distance cache, so one query's settled
/// frontiers become the next query's replayed prefix. Results are identical
/// to the uncached batch (the cache trades work, never answers); only the
/// per-query metrics and wall-clock change.
///
/// # Errors
///
/// See [`run_batch_with`].
pub fn run_batch_ctx<A: Algorithm + Sync>(
    db: &Database<'_>,
    algorithm: &A,
    queries: &[UotsQuery],
    opts: &BatchOptions,
    token: &CancellationToken,
    ctx: &SearchContext,
) -> Result<Vec<Result<QueryResult, CoreError>>, CoreError> {
    run_batch_inner(db, algorithm, queries, opts, token, None, ctx)
}

/// [`run_batch_with`] reporting queue depth, in-flight count, per-outcome
/// counters, latency, and per-phase durations to `obs`. Error semantics are
/// identical; the observer keeps counting even when the batch as a whole
/// fails (fail-fast) or is rejected by admission — that is the point of it.
///
/// # Errors
///
/// See [`run_batch_with`].
pub fn run_batch_observed<A: Algorithm + Sync>(
    db: &Database<'_>,
    algorithm: &A,
    queries: &[UotsQuery],
    opts: &BatchOptions,
    token: &CancellationToken,
    obs: &BatchObserver,
) -> Result<Vec<Result<QueryResult, CoreError>>, CoreError> {
    run_batch_inner(
        db,
        algorithm,
        queries,
        opts,
        token,
        Some(obs),
        &SearchContext::default(),
    )
}

/// [`run_batch_observed`] under a shared [`SearchContext`] — the observed
/// counterpart of [`run_batch_ctx`]. Bind the context's cache to the same
/// registry (via [`crate::DistanceCache::with_metrics`]) to export hit/miss
/// counters alongside the batch gauges.
///
/// # Errors
///
/// See [`run_batch_with`].
pub fn run_batch_observed_ctx<A: Algorithm + Sync>(
    db: &Database<'_>,
    algorithm: &A,
    queries: &[UotsQuery],
    opts: &BatchOptions,
    token: &CancellationToken,
    obs: &BatchObserver,
    ctx: &SearchContext,
) -> Result<Vec<Result<QueryResult, CoreError>>, CoreError> {
    run_batch_inner(db, algorithm, queries, opts, token, Some(obs), ctx)
}

#[allow(clippy::too_many_arguments)]
fn run_batch_inner<A: Algorithm + Sync>(
    db: &Database<'_>,
    algorithm: &A,
    queries: &[UotsQuery],
    opts: &BatchOptions,
    token: &CancellationToken,
    obs: Option<&BatchObserver>,
    ctx: &SearchContext,
) -> Result<Vec<Result<QueryResult, CoreError>>, CoreError> {
    if let Some(cap) = opts.max_batch {
        if queries.len() > cap {
            if let Some(o) = obs {
                o.rejected.inc();
            }
            return Err(CoreError::Overloaded {
                submitted: queries.len(),
                capacity: cap,
            });
        }
    }
    if let Some(o) = obs {
        o.on_admitted(queries.len());
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(opts.threads.max(1))
        .build()
        .map_err(|e| CoreError::BadParameter(format!("thread pool: {e}")))?;
    let mut ctl = RunControl::with_token(token.clone());
    if let Some(d) = opts.deadline {
        ctl = ctl.with_deadline(Instant::now() + d);
    }
    let results: Vec<Result<QueryResult, CoreError>> = pool.install(|| {
        queries
            .par_iter()
            .map(|q| run_observed(db, algorithm, q, &ctl, obs, ctx))
            .collect()
    });
    if opts.policy == BatchPolicy::FailFast {
        if let Some(err) = results.iter().find_map(|r| r.as_ref().err()) {
            return Err(err.clone());
        }
    }
    Ok(results)
}

/// Runs `queries` over `db` with `algorithm` on a dedicated pool of
/// `threads` workers, returning per-query results in input order.
///
/// `threads = 1` degenerates to sequential execution (still through the
/// pool, so scheduling overhead is measured honestly in the thread-scaling
/// experiment).
///
/// # Errors
///
/// Returns the first query error encountered (by input order) — including
/// [`CoreError::QueryPanicked`] if a worker panics. Pool construction
/// failures are reported as [`CoreError::BadParameter`].
pub fn run_batch<A: Algorithm + Sync>(
    db: &Database<'_>,
    algorithm: &A,
    queries: &[UotsQuery],
    threads: usize,
) -> Result<Vec<QueryResult>, CoreError> {
    run_batch_with(
        db,
        algorithm,
        queries,
        &BatchOptions::fail_fast(threads),
        &CancellationToken::new(),
    )?
    .into_iter()
    .collect()
}

/// Alternative executor on crossbeam scoped threads with a shared atomic
/// work cursor (no rayon): demonstrates that the per-query searches need
/// no coordination beyond handing out indices. Produces exactly the same
/// results as [`run_batch`]; useful as a dependency-light baseline and for
/// measuring scheduler overhead differences.
///
/// # Errors
///
/// Returns the first query error encountered (by input order). A panicking
/// query is caught inside its worker and surfaced as
/// [`CoreError::QueryPanicked`]; it cannot take the other workers down.
pub fn run_batch_crossbeam<A: Algorithm + Sync>(
    db: &Database<'_>,
    algorithm: &A,
    queries: &[UotsQuery],
    threads: usize,
) -> Result<Vec<QueryResult>, CoreError> {
    run_batch_crossbeam_inner(
        db,
        algorithm,
        queries,
        threads,
        None,
        &SearchContext::default(),
    )
}

/// [`run_batch_crossbeam`] under a shared [`SearchContext`] — one distance
/// cache across all scoped workers, exercising the cache's concurrent
/// publish/probe path without rayon in the loop.
///
/// # Errors
///
/// See [`run_batch_crossbeam`].
pub fn run_batch_crossbeam_ctx<A: Algorithm + Sync>(
    db: &Database<'_>,
    algorithm: &A,
    queries: &[UotsQuery],
    threads: usize,
    ctx: &SearchContext,
) -> Result<Vec<QueryResult>, CoreError> {
    run_batch_crossbeam_inner(db, algorithm, queries, threads, None, ctx)
}

/// [`run_batch_crossbeam`] reporting to `obs`, with one additional
/// `uots_worker_queries_total{worker="<i>"}` counter per scoped worker —
/// the per-worker share of the batch, which makes work-stealing imbalance
/// (or a worker wedged on one pathological query) visible in the export.
///
/// # Errors
///
/// See [`run_batch_crossbeam`].
pub fn run_batch_crossbeam_observed<A: Algorithm + Sync>(
    db: &Database<'_>,
    algorithm: &A,
    queries: &[UotsQuery],
    threads: usize,
    obs: &BatchObserver,
) -> Result<Vec<QueryResult>, CoreError> {
    run_batch_crossbeam_inner(
        db,
        algorithm,
        queries,
        threads,
        Some(obs),
        &SearchContext::default(),
    )
}

fn run_batch_crossbeam_inner<A: Algorithm + Sync>(
    db: &Database<'_>,
    algorithm: &A,
    queries: &[UotsQuery],
    threads: usize,
    obs: Option<&BatchObserver>,
    ctx: &SearchContext,
) -> Result<Vec<QueryResult>, CoreError> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let threads = threads.max(1).min(queries.len().max(1));
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<QueryResult, CoreError>>> = Vec::new();
    slots.resize_with(queries.len(), || None);
    let ctl = RunControl::unbounded();
    if let Some(o) = obs {
        o.on_admitted(queries.len());
    }

    // Collect per-thread (index, result) pairs and scatter afterwards —
    // simpler than sharing &mut slots across threads.
    let gathered: Vec<Vec<(usize, Result<QueryResult, CoreError>)>> =
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let cursor = &cursor;
                    let ctl = &ctl;
                    let per_worker = obs.map(|o| {
                        let label = w.to_string();
                        o.registry().counter_with(
                            "uots_worker_queries_total",
                            "Queries executed by each batch worker",
                            &[("worker", label.as_str())],
                        )
                    });
                    scope.spawn(move |_| {
                        let mut mine = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= queries.len() {
                                break;
                            }
                            if let Some(c) = &per_worker {
                                c.inc();
                            }
                            mine.push((i, run_observed(db, algorithm, &queries[i], ctl, obs, ctx)));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|payload| {
                        // run_isolated catches query panics, so reaching
                        // this means the worker loop itself died; report
                        // it rather than poisoning the whole process.
                        vec![(
                            usize::MAX,
                            Err(CoreError::QueryPanicked(panic_message(payload))),
                        )]
                    })
                })
                .collect()
        })
        .map_err(|payload| CoreError::QueryPanicked(panic_message(payload)))?;

    let mut stray: Option<CoreError> = None;
    for per_thread in gathered {
        for (i, r) in per_thread {
            if i == usize::MAX {
                stray = Some(r.expect_err("sentinel slot always carries an error"));
            } else {
                slots[i] = Some(r);
            }
        }
    }
    if let Some(err) = stray {
        return Err(err);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every query index was dispatched"))
        .collect()
}

/// The snapshot a batch was pinned to, alongside its per-query outcomes.
pub type EpochBatch = (Arc<EpochSnapshot>, Vec<Result<QueryResult, CoreError>>);

/// Runs a batch against a live [`EpochManager`]: resolves **one** snapshot
/// up front and answers every query of the batch against it, so the whole
/// batch observes a single consistent epoch even while the ingest path
/// keeps publishing. The pinned snapshot is returned alongside the results
/// so callers can attribute answers to an epoch (and re-run against it for
/// verification). Concurrent publishes never invalidate the batch — the
/// `Arc` keeps the snapshot alive until the last result is collected.
///
/// Pass a [`SearchContext`] with a shared cache to keep distance prefixes
/// warm *across* epochs: the cache is keyed on the road network, which the
/// manager never swaps out (see [`crate::epoch`]).
///
/// # Errors
///
/// See [`run_batch_with`].
pub fn run_batch_epoch<A: Algorithm + Sync>(
    manager: &EpochManager,
    algorithm: &A,
    queries: &[UotsQuery],
    opts: &BatchOptions,
    token: &CancellationToken,
    ctx: &SearchContext,
) -> Result<EpochBatch, CoreError> {
    let snapshot = manager.snapshot();
    let results = {
        let db = snapshot.database();
        run_batch_inner(&db, algorithm, queries, opts, token, None, ctx)?
    };
    Ok((snapshot, results))
}

/// The crossbeam counterpart of [`run_batch_epoch`]: one snapshot pinned
/// for the whole batch, executed on scoped threads with a shared work
/// cursor.
///
/// # Errors
///
/// See [`run_batch_crossbeam`].
pub fn run_batch_crossbeam_epoch<A: Algorithm + Sync>(
    manager: &EpochManager,
    algorithm: &A,
    queries: &[UotsQuery],
    threads: usize,
    ctx: &SearchContext,
) -> Result<(Arc<EpochSnapshot>, Vec<QueryResult>), CoreError> {
    let snapshot = manager.snapshot();
    let results = {
        let db = snapshot.database();
        run_batch_crossbeam_inner(&db, algorithm, queries, threads, None, ctx)?
    };
    Ok((snapshot, results))
}

/// Convenience: runs a batch and aggregates the per-query metrics.
///
/// # Errors
///
/// Same as [`run_batch`].
pub fn run_batch_aggregated<A: Algorithm + Sync>(
    db: &Database<'_>,
    algorithm: &A,
    queries: &[UotsQuery],
    threads: usize,
) -> Result<(Vec<QueryResult>, SearchMetrics), CoreError> {
    let results = run_batch(db, algorithm, queries, threads)?;
    let agg = SearchMetrics::aggregate(results.iter().map(|r| &r.metrics));
    Ok((results, agg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Expansion;
    use crate::testing::{FaultyAlgorithm, SlowAlgorithm};
    use uots_datagen::{workload, Dataset, DatasetConfig};

    fn setup() -> (Dataset, Vec<UotsQuery>) {
        let ds = Dataset::build(&DatasetConfig::small(80, 31)).unwrap();
        let specs = workload::generate(
            &ds,
            &workload::WorkloadConfig {
                num_queries: 12,
                ..Default::default()
            },
        );
        let queries = specs
            .into_iter()
            .map(|s| UotsQuery::new(s.locations, s.keywords).unwrap())
            .collect();
        (ds, queries)
    }

    #[test]
    fn parallel_results_match_sequential() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
            .with_keyword_index(&ds.keyword_index);
        let algo = Expansion::default();
        let seq = run_batch(&db, &algo, &queries, 1).unwrap();
        let par = run_batch(&db, &algo, &queries, 4).unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.ids(), b.ids());
            assert_eq!(
                a.metrics.visited_trajectories,
                b.metrics.visited_trajectories
            );
        }
    }

    #[test]
    fn crossbeam_executor_matches_rayon() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
            .with_keyword_index(&ds.keyword_index);
        let algo = Expansion::default();
        let rayon_results = run_batch(&db, &algo, &queries, 3).unwrap();
        let crossbeam_results = run_batch_crossbeam(&db, &algo, &queries, 3).unwrap();
        assert_eq!(rayon_results.len(), crossbeam_results.len());
        for (a, b) in rayon_results.iter().zip(crossbeam_results.iter()) {
            assert_eq!(a.ids(), b.ids());
            assert_eq!(
                a.metrics.visited_trajectories,
                b.metrics.visited_trajectories
            );
        }
    }

    #[test]
    fn crossbeam_executor_handles_more_threads_than_queries() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let algo = Expansion::default();
        let one = &queries[..1];
        let r = run_batch_crossbeam(&db, &algo, one, 16).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn aggregation_sums_per_query_metrics() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let algo = Expansion::default();
        let (results, agg) = run_batch_aggregated(&db, &algo, &queries, 2).unwrap();
        assert_eq!(agg.queries, queries.len());
        let manual: usize = results.iter().map(|r| r.metrics.visited_trajectories).sum();
        assert_eq!(agg.visited_trajectories, manual);
    }

    #[test]
    fn errors_propagate() {
        let (ds, _) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let bad = UotsQuery::new(
            vec![uots_network::NodeId(1_000_000)],
            uots_text::KeywordSet::empty(),
        )
        .unwrap();
        let err = run_batch(&db, &Expansion::default(), &[bad], 2);
        assert!(err.is_err());
    }

    #[test]
    fn partial_policy_isolates_a_panicking_query() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let algo = FaultyAlgorithm::new(Expansion::default(), 0, "injected fault");
        let out = run_batch_with(
            &db,
            &algo,
            &queries,
            &BatchOptions::partial(1),
            &CancellationToken::new(),
        )
        .unwrap();
        assert_eq!(out.len(), queries.len());
        // threads=1 makes call order deterministic: exactly slot 0 panicked
        assert!(matches!(out[0], Err(CoreError::QueryPanicked(_))));
        for (i, r) in out.iter().enumerate().skip(1) {
            assert!(r.is_ok(), "slot {i} must survive the panic in slot 0");
        }
    }

    #[test]
    fn fail_fast_policy_surfaces_the_panic_as_an_error() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let algo = FaultyAlgorithm::new(Expansion::default(), 0, "injected fault");
        let err = run_batch_with(
            &db,
            &algo,
            &queries,
            &BatchOptions::fail_fast(1),
            &CancellationToken::new(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::QueryPanicked(ref m) if m.contains("injected")));
    }

    #[test]
    fn crossbeam_executor_survives_a_panicking_query() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let algo = FaultyAlgorithm::new(Expansion::default(), 2, "boom");
        let err = run_batch_crossbeam(&db, &algo, &queries, 3).unwrap_err();
        assert!(matches!(err, CoreError::QueryPanicked(ref m) if m.contains("boom")));
        // every query was still dispatched despite the panic
        assert_eq!(algo.calls(), queries.len());
    }

    #[test]
    fn admission_bound_rejects_oversized_batches() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let opts = BatchOptions {
            max_batch: Some(4),
            ..BatchOptions::partial(2)
        };
        let err = run_batch_with(
            &db,
            &Expansion::default(),
            &queries,
            &opts,
            &CancellationToken::new(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CoreError::Overloaded {
                submitted: 12,
                capacity: 4
            }
        ));
    }

    #[test]
    fn batch_deadline_cancels_in_flight_queries() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let algo = SlowAlgorithm::new(Expansion::default(), Duration::from_secs(3600));
        let opts = BatchOptions {
            deadline: Some(Duration::from_millis(20)),
            ..BatchOptions::partial(2)
        };
        let out = run_batch_with(&db, &algo, &queries, &opts, &CancellationToken::new()).unwrap();
        assert_eq!(out.len(), queries.len());
        for r in &out {
            let r = r.as_ref().unwrap();
            assert!(!r.completeness.is_exact(), "deadline must interrupt");
        }
    }

    #[test]
    fn observer_isolates_a_panic_and_drains_its_gauges() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let registry = uots_obs::MetricsRegistry::default();
        let obs = BatchObserver::new(&registry);
        let algo = FaultyAlgorithm::new(Expansion::default(), 0, "injected fault");
        let out = run_batch_observed(
            &db,
            &algo,
            &queries,
            &BatchOptions::partial(1),
            &CancellationToken::new(),
            &obs,
        )
        .unwrap();
        assert_eq!(out.len(), queries.len());
        let snap = registry.snapshot();
        let outcome = |o| snap.counter("uots_batch_queries_total", &[("outcome", o)]);
        assert_eq!(outcome("panicked"), Some(1));
        assert_eq!(outcome("completed"), Some(queries.len() as u64 - 1));
        // both gauges must return to zero: the panicking slot's in-flight
        // decrement runs in the caller, outside the unwound closure
        assert_eq!(snap.gauge("uots_batch_pending_queries", &[]), Some(0));
        assert_eq!(snap.gauge("uots_batch_inflight_queries", &[]), Some(0));
        // every query (panicked included) got a latency observation
        let latency = snap.histogram("uots_query_latency_us", &[]).unwrap();
        assert_eq!(latency.count, queries.len() as u64);
    }

    #[test]
    fn phase_durations_survive_batch_execution_and_reach_the_registry() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
            .with_keyword_index(&ds.keyword_index);
        let registry = uots_obs::MetricsRegistry::default();
        let obs = BatchObserver::new(&registry);
        let out = run_batch_observed(
            &db,
            &Expansion::default(),
            &queries,
            &BatchOptions::partial(3),
            &CancellationToken::new(),
            &obs,
        )
        .unwrap();
        // every per-query result carries its phase breakdown through the
        // parallel executor, and the aggregate keeps it additive
        let results: Vec<QueryResult> = out.into_iter().map(Result::unwrap).collect();
        for r in &results {
            assert!(
                !r.metrics.phases.is_zero(),
                "observed batch runs must record phases"
            );
        }
        let agg = SearchMetrics::aggregate(results.iter().map(|r| &r.metrics));
        assert!(agg.phases.total() >= results[0].metrics.phases.total());
        // and the registry collected a per-phase histogram family
        let snap = registry.snapshot();
        let network = snap
            .histogram(
                "uots_query_phase_duration_ns",
                &[("phase", "network_expansion")],
            )
            .expect("expansion queries spend time in network_expansion");
        assert_eq!(network.count, queries.len() as u64);
    }

    #[test]
    fn observer_keeps_counting_under_fail_fast_and_admission_rejection() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let registry = uots_obs::MetricsRegistry::default();
        let obs = BatchObserver::new(&registry);
        let algo = FaultyAlgorithm::new(Expansion::default(), 0, "boom");
        let err = run_batch_observed(
            &db,
            &algo,
            &queries,
            &BatchOptions::fail_fast(1),
            &CancellationToken::new(),
            &obs,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::QueryPanicked(_)));
        // the batch failed as a whole, but the telemetry of what actually
        // ran must not be lost with it
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("uots_batch_queries_total", &[("outcome", "panicked")]),
            Some(1)
        );
        assert_eq!(snap.gauge("uots_batch_inflight_queries", &[]), Some(0));

        let opts = BatchOptions {
            max_batch: Some(2),
            ..BatchOptions::partial(1)
        };
        let err = run_batch_observed(
            &db,
            &Expansion::default(),
            &queries,
            &opts,
            &CancellationToken::new(),
            &obs,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Overloaded { .. }));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("uots_batch_rejected_total", &[]), Some(1));
        // a rejected batch never touches the queue-depth gauge
        assert_eq!(snap.gauge("uots_batch_pending_queries", &[]), Some(0));
    }

    #[test]
    fn interrupted_counts_survive_deadline_under_both_policies() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let algo = SlowAlgorithm::new(Expansion::default(), Duration::from_secs(3600));
        for opts in [
            BatchOptions {
                deadline: Some(Duration::from_millis(20)),
                ..BatchOptions::partial(2)
            },
            BatchOptions {
                deadline: Some(Duration::from_millis(20)),
                ..BatchOptions::fail_fast(2)
            },
        ] {
            let registry = uots_obs::MetricsRegistry::default();
            let obs = BatchObserver::new(&registry);
            let out =
                run_batch_observed(&db, &algo, &queries, &opts, &CancellationToken::new(), &obs)
                    .unwrap();
            let results: Vec<QueryResult> = out.into_iter().map(Result::unwrap).collect();
            let agg = SearchMetrics::aggregate(results.iter().map(|r| &r.metrics));
            // a deadline is an interruption, not an error: FailFast has
            // nothing to fail on, and each slot's metrics record it
            assert_eq!(agg.interrupted, queries.len(), "{opts:?}");
            assert_eq!(
                registry
                    .snapshot()
                    .counter("uots_batch_queries_total", &[("outcome", "interrupted")]),
                Some(queries.len() as u64),
                "{opts:?}"
            );
        }
    }

    #[test]
    fn crossbeam_observed_attributes_work_to_workers() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let registry = uots_obs::MetricsRegistry::default();
        let obs = BatchObserver::new(&registry);
        let threads = 3;
        let results =
            run_batch_crossbeam_observed(&db, &Expansion::default(), &queries, threads, &obs)
                .unwrap();
        assert_eq!(results.len(), queries.len());
        let snap = registry.snapshot();
        let per_worker: u64 = (0..threads)
            .filter_map(|w| {
                snap.counter(
                    "uots_worker_queries_total",
                    &[("worker", w.to_string().as_str())],
                )
            })
            .sum();
        assert_eq!(per_worker, queries.len() as u64);
        assert_eq!(snap.gauge("uots_batch_pending_queries", &[]), Some(0));
    }

    #[test]
    fn shared_cache_batches_return_identical_results() {
        use crate::distcache::DistanceCache;
        use std::sync::Arc;
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
            .with_keyword_index(&ds.keyword_index);
        let algo = Expansion::default();
        let baseline = run_batch(&db, &algo, &queries, 2).unwrap();
        for threads in [1, 4] {
            let cache = Arc::new(DistanceCache::new(1 << 16));
            let ctx = SearchContext::with_cache(Arc::clone(&cache));
            let cached = run_batch_ctx(
                &db,
                &algo,
                &queries,
                &BatchOptions::fail_fast(threads),
                &CancellationToken::new(),
                &ctx,
            )
            .unwrap();
            for (a, b) in baseline.iter().zip(cached.iter()) {
                let b = b.as_ref().unwrap();
                assert_eq!(a.ids(), b.ids(), "threads = {threads}");
                for (ma, mb) in a.matches.iter().zip(b.matches.iter()) {
                    assert_eq!(ma.similarity.to_bits(), mb.similarity.to_bits());
                }
            }
            let stats = cache.stats();
            assert!(stats.inserts > 0, "the batch must warm the cache");
        }
    }

    #[test]
    fn crossbeam_shared_cache_matches_uncached() {
        use crate::distcache::DistanceCache;
        use std::sync::Arc;
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
            .with_keyword_index(&ds.keyword_index);
        let algo = Expansion::default();
        let baseline = run_batch_crossbeam(&db, &algo, &queries, 3).unwrap();
        let cache = Arc::new(DistanceCache::new(1 << 16));
        let ctx = SearchContext::with_cache(cache);
        let cached = run_batch_crossbeam_ctx(&db, &algo, &queries, 3, &ctx).unwrap();
        for (a, b) in baseline.iter().zip(cached.iter()) {
            assert_eq!(a.ids(), b.ids());
        }
    }

    #[test]
    fn epoch_batches_pin_one_snapshot_across_both_executors() {
        let (ds, queries) = setup();
        let mgr = EpochManager::new(
            Arc::new(ds.network.clone()),
            ds.store.clone(),
            ds.vocab.len(),
        );
        let algo = Expansion::default();
        let ctx = SearchContext::default();
        let (snap0, out0) = run_batch_epoch(
            &mgr,
            &algo,
            &queries,
            &BatchOptions::fail_fast(3),
            &CancellationToken::new(),
            &ctx,
        )
        .unwrap();
        assert_eq!(snap0.epoch(), 0);

        // churn: retire the top answer of the first query, publish
        let victim = out0[0].as_ref().unwrap().ids()[0];
        mgr.retire(victim);
        mgr.publish();
        let (snap1, out1) = run_batch_crossbeam_epoch(&mgr, &algo, &queries, 3, &ctx).unwrap();
        assert_eq!(snap1.epoch(), 1);
        assert!(!out1[0].ids().contains(&victim), "retired id served");

        // the pinned pre-churn snapshot still answers exactly as before —
        // publishes never invalidate a batch's epoch
        let replay = run_batch(&snap0.database(), &algo, &queries, 2).unwrap();
        for (a, b) in out0.iter().zip(replay.iter()) {
            assert_eq!(a.as_ref().unwrap().ids(), b.ids());
        }
    }

    #[test]
    fn shared_token_cancels_the_whole_batch() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let token = CancellationToken::new();
        token.cancel();
        let out = run_batch_with(
            &db,
            &Expansion::default(),
            &queries,
            &BatchOptions::partial(2),
            &token,
        )
        .unwrap();
        for r in &out {
            let r = r.as_ref().unwrap();
            assert!(!r.completeness.is_exact());
            assert!(r.matches.is_empty());
        }
    }
}
