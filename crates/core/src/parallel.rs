//! Parallel batch query execution.
//!
//! UOTS trajectory searches are independent of each other — the property the
//! paper exploits for parallelism ("the search processes of different
//! trajectories are independent, enabling parallel processing", with a merge
//! cost uncorrelated to the thread count; in the *search* setting there is
//! nothing to merge at all). This module fans a batch of queries over a
//! rayon thread pool and preserves input order in the output.

use crate::algorithms::Algorithm;
use crate::{CoreError, Database, QueryResult, SearchMetrics, UotsQuery};
use rayon::prelude::*;

/// Runs `queries` over `db` with `algorithm` on a dedicated pool of
/// `threads` workers, returning per-query results in input order.
///
/// `threads = 1` degenerates to sequential execution (still through the
/// pool, so scheduling overhead is measured honestly in the thread-scaling
/// experiment).
///
/// # Errors
///
/// Returns the first query error encountered (by input order). Pool
/// construction failures are reported as [`CoreError::BadParameter`].
pub fn run_batch<A: Algorithm + Sync>(
    db: &Database<'_>,
    algorithm: &A,
    queries: &[UotsQuery],
    threads: usize,
) -> Result<Vec<QueryResult>, CoreError> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .map_err(|e| CoreError::BadParameter(format!("thread pool: {e}")))?;
    let results: Vec<Result<QueryResult, CoreError>> = pool.install(|| {
        queries
            .par_iter()
            .map(|q| algorithm.run(db, q))
            .collect()
    });
    results.into_iter().collect()
}

/// Alternative executor on crossbeam scoped threads with a shared atomic
/// work cursor (no rayon): demonstrates that the per-query searches need
/// no coordination beyond handing out indices. Produces exactly the same
/// results as [`run_batch`]; useful as a dependency-light baseline and for
/// measuring scheduler overhead differences.
///
/// # Errors
///
/// Returns the first query error encountered (by input order).
pub fn run_batch_crossbeam<A: Algorithm + Sync>(
    db: &Database<'_>,
    algorithm: &A,
    queries: &[UotsQuery],
    threads: usize,
) -> Result<Vec<QueryResult>, CoreError> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let threads = threads.max(1).min(queries.len().max(1));
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<QueryResult, CoreError>>> = Vec::new();
    slots.resize_with(queries.len(), || None);

    // Collect per-thread (index, result) pairs and scatter afterwards —
    // simpler than sharing &mut slots across threads.
    let gathered: Vec<Vec<(usize, Result<QueryResult, CoreError>)>> =
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move |_| {
                        let mut mine = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= queries.len() {
                                break;
                            }
                            mine.push((i, algorithm.run(db, &queries[i])));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread must not panic"))
                .collect()
        })
        .expect("crossbeam scope must not panic");

    for per_thread in gathered {
        for (i, r) in per_thread {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every query index was dispatched"))
        .collect()
}

/// Convenience: runs a batch and aggregates the per-query metrics.
///
/// # Errors
///
/// Same as [`run_batch`].
pub fn run_batch_aggregated<A: Algorithm + Sync>(
    db: &Database<'_>,
    algorithm: &A,
    queries: &[UotsQuery],
    threads: usize,
) -> Result<(Vec<QueryResult>, SearchMetrics), CoreError> {
    let results = run_batch(db, algorithm, queries, threads)?;
    let agg = SearchMetrics::aggregate(results.iter().map(|r| &r.metrics));
    Ok((results, agg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Expansion;
    use uots_datagen::{workload, Dataset, DatasetConfig};

    fn setup() -> (Dataset, Vec<UotsQuery>) {
        let ds = Dataset::build(&DatasetConfig::small(80, 31)).unwrap();
        let specs = workload::generate(
            &ds,
            &workload::WorkloadConfig {
                num_queries: 12,
                ..Default::default()
            },
        );
        let queries = specs
            .into_iter()
            .map(|s| UotsQuery::new(s.locations, s.keywords).unwrap())
            .collect();
        (ds, queries)
    }

    #[test]
    fn parallel_results_match_sequential() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
            .with_keyword_index(&ds.keyword_index);
        let algo = Expansion::default();
        let seq = run_batch(&db, &algo, &queries, 1).unwrap();
        let par = run_batch(&db, &algo, &queries, 4).unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.ids(), b.ids());
            assert_eq!(
                a.metrics.visited_trajectories,
                b.metrics.visited_trajectories
            );
        }
    }

    #[test]
    fn crossbeam_executor_matches_rayon() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
            .with_keyword_index(&ds.keyword_index);
        let algo = Expansion::default();
        let rayon_results = run_batch(&db, &algo, &queries, 3).unwrap();
        let crossbeam_results = run_batch_crossbeam(&db, &algo, &queries, 3).unwrap();
        assert_eq!(rayon_results.len(), crossbeam_results.len());
        for (a, b) in rayon_results.iter().zip(crossbeam_results.iter()) {
            assert_eq!(a.ids(), b.ids());
            assert_eq!(
                a.metrics.visited_trajectories,
                b.metrics.visited_trajectories
            );
        }
    }

    #[test]
    fn crossbeam_executor_handles_more_threads_than_queries() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let algo = Expansion::default();
        let one = &queries[..1];
        let r = run_batch_crossbeam(&db, &algo, one, 16).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn aggregation_sums_per_query_metrics() {
        let (ds, queries) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let algo = Expansion::default();
        let (results, agg) = run_batch_aggregated(&db, &algo, &queries, 2).unwrap();
        assert_eq!(agg.queries, queries.len());
        let manual: usize = results.iter().map(|r| r.metrics.visited_trajectories).sum();
        assert_eq!(agg.visited_trajectories, manual);
    }

    #[test]
    fn errors_propagate() {
        let (ds, _) = setup();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index);
        let bad = UotsQuery::new(
            vec![uots_network::NodeId(1_000_000)],
            uots_text::KeywordSet::empty(),
        )
        .unwrap();
        let err = run_batch(&db, &Expansion::default(), &[bad], 2);
        assert!(err.is_err());
    }
}
