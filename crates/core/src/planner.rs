//! Adaptive per-query algorithm selection from cheap statistics.
//!
//! All four UOTS algorithms return *identical* rankings (the differential
//! harness proves it per release); they differ only in cost, and which one
//! is cheapest depends on the query's shape. The [`Planner`] reads four
//! statistics that cost O(|query|) to compute — no index scans, no
//! expansion work — and dispatches:
//!
//! | statistic | source | cost |
//! |---|---|---|
//! | `m` — query locations | [`UotsQuery::num_locations`] | O(1) |
//! | `λ` — spatial weight | [`crate::Weights::spatial`] | O(1) |
//! | keyword selectivity | [`KeywordInvertedIndex::document_frequency`] of the *rarest* query keyword, over the live count | O(keywords) |
//! | dataset density | vertex-index postings per live trajectory (avg distinct vertices each trajectory touches) | O(1) |
//!
//! The decision rules (see [`Planner::decide`]) follow the density
//! dispatch of RouteMate's `determine_algorithm` and the
//! selectivity-driven pruning argument of Cong et al. ("Efficient Spatial
//! Keyword Search in Trajectory Databases"): route each query to the
//! algorithm whose pruning lever actually has purchase on it. In
//! particular, *full-drain-shaped* queries — many sources and ubiquitous
//! keywords, where per-trajectory bounds cannot prune — go to
//! [`BruteForce`], whose evaluation rides the shared-frontier
//! [`crate::MultiSourceExpansion`] when a layout is attached: one batched
//! Dijkstra instead of `m` scheduled single-source expansions.
//!
//! [`Planner`] implements [`Algorithm`], so it drops into every existing
//! execution funnel ([`crate::parallel::run_batch_epoch`] and friends)
//! unchanged; `--force-algorithm` style overrides are carried by
//! [`Planner::forced`]. Result preservation is structural (any choice
//! returns the same ranking) and additionally pinned bit-exactly by
//! `tests/planner_differential.rs`.

use crate::algorithms::{Algorithm, BruteForce, Expansion, IknnBaseline, TextFirst};
use crate::budget::RunControl;
use crate::distcache::SearchContext;
use crate::{CoreError, Database, QueryResult, Scheduler, UotsQuery};
use uots_index::KeywordInvertedIndex;
use uots_obs::Recorder;

/// One of the four UOTS algorithms, as a value (the planner's output and
/// the `--force-algorithm` input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// The exact oracle; full-drain evaluation (multi-source batched
    /// Dijkstra when a layout is attached).
    BruteForce,
    /// Textual filter-and-refine baseline (requires the keyword index).
    TextFirst,
    /// Lockstep-round candidate generation with the coarse radius bound.
    IknnBaseline,
    /// The paper's expansion search under the heuristic scheduler.
    Expansion,
}

impl AlgorithmKind {
    /// Every kind, in a fixed order (test sweeps).
    pub const ALL: [AlgorithmKind; 4] = [
        AlgorithmKind::BruteForce,
        AlgorithmKind::TextFirst,
        AlgorithmKind::IknnBaseline,
        AlgorithmKind::Expansion,
    ];

    /// Stable name, accepted back by [`AlgorithmKind::parse`].
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::BruteForce => "brute-force",
            AlgorithmKind::TextFirst => "text-first",
            AlgorithmKind::IknnBaseline => "iknn-baseline",
            AlgorithmKind::Expansion => "expansion",
        }
    }

    /// Parses a kind name (the `--force-algorithm` escape hatch).
    pub fn parse(s: &str) -> Option<AlgorithmKind> {
        match s {
            "brute-force" | "bruteforce" | "oracle" => Some(AlgorithmKind::BruteForce),
            "text-first" | "textfirst" => Some(AlgorithmKind::TextFirst),
            "iknn-baseline" | "iknn" => Some(AlgorithmKind::IknnBaseline),
            "expansion" => Some(AlgorithmKind::Expansion),
            _ => None,
        }
    }

    /// Instantiates the algorithm (the expansion under the paper's
    /// heuristic scheduler).
    pub fn instantiate(self) -> Box<dyn Algorithm + Send + Sync> {
        match self {
            AlgorithmKind::BruteForce => Box::new(BruteForce),
            AlgorithmKind::TextFirst => Box::new(TextFirst),
            AlgorithmKind::IknnBaseline => Box::new(IknnBaseline::default()),
            AlgorithmKind::Expansion => Box::new(Expansion::new(Scheduler::heuristic())),
        }
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The cheap statistics one decision reads (returned alongside the choice
/// so services can log/expose them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryStats {
    /// Number of query locations (`m`).
    pub m: usize,
    /// Spatial weight λ (`weights.spatial`).
    pub lambda: f64,
    /// Document frequency of the *rarest* query keyword over the live
    /// trajectory count — `1.0` when there are no keywords, no keyword
    /// index, or no live trajectories (no textual filter power).
    pub selectivity: f64,
    /// Vertex-index postings per live trajectory: the average number of
    /// distinct vertices a trajectory touches. High density means every
    /// settled vertex discovers many candidates.
    pub density: f64,
    /// Live trajectory count.
    pub live: usize,
}

/// Live-count at or below which the oracle's single full drain beats any
/// pruning machinery's setup cost.
pub const TINY_LIVE: usize = 128;
/// `m` at or above which (with non-selective keywords) the query is
/// "full-drain-shaped": bounds cannot prune, so the shared-frontier
/// multi-source drain wins.
pub const FULL_DRAIN_M: usize = 8;
/// Selectivity at or above which keywords are considered ubiquitous
/// (useless as a filter).
pub const UBIQUITOUS_SELECTIVITY: f64 = 0.5;
/// Selectivity at or below which keywords are considered rare (a strong
/// filter).
pub const RARE_SELECTIVITY: f64 = 0.05;
/// λ at or below which the ranking is textually dominated.
pub const TEXT_LAMBDA: f64 = 0.25;

/// A planning decision: the chosen algorithm, the statistics it was based
/// on, and a static reason string for logs/metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanDecision {
    /// The chosen algorithm.
    pub kind: AlgorithmKind,
    /// The statistics the choice was based on.
    pub stats: QueryStats,
    /// Static label for the rule that fired (metrics/journal friendly).
    pub reason: &'static str,
}

/// Per-query algorithm selector (see module docs). Implements
/// [`Algorithm`] by delegating each query to its chosen kind's
/// implementation, so it drops into the batch executors unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct Planner {
    force: Option<AlgorithmKind>,
}

impl Planner {
    /// A planner that decides per query.
    pub fn new() -> Planner {
        Planner::default()
    }

    /// A planner pinned to one algorithm — the `--force-algorithm` escape
    /// hatch. [`Planner::decide`] always returns `kind` with reason
    /// `"forced"`.
    pub fn forced(kind: AlgorithmKind) -> Planner {
        Planner { force: Some(kind) }
    }

    /// The pinned kind, if any.
    pub fn forced_kind(&self) -> Option<AlgorithmKind> {
        self.force
    }

    /// Computes the decision statistics for `query` over `db`. O(|query|).
    pub fn stats(db: &Database<'_>, query: &UotsQuery) -> QueryStats {
        let live = db.num_live();
        QueryStats {
            m: query.num_locations(),
            lambda: query.options().weights.spatial,
            selectivity: keyword_selectivity(db.keyword_index, query, live),
            density: if live == 0 {
                0.0
            } else {
                db.vertex_index.num_postings() as f64 / live as f64
            },
            live,
        }
    }

    /// Chooses the algorithm for `query` over `db`.
    ///
    /// Rule order (first match wins):
    /// 1. a forced kind, verbatim;
    /// 2. `live ≤` [`TINY_LIVE`] → [`AlgorithmKind::BruteForce`] (one
    ///    full drain is cheaper than any pruning setup);
    /// 3. `λ ≤` [`TEXT_LAMBDA`] *and* selectivity `≤` [`RARE_SELECTIVITY`]
    ///    (keyword index present) → [`AlgorithmKind::TextFirst`] — rare
    ///    keywords + textually-dominated ranking make filter-and-refine
    ///    touch almost nothing;
    /// 4. `m ≥` [`FULL_DRAIN_M`] *and* selectivity `≥`
    ///    [`UBIQUITOUS_SELECTIVITY`] → [`AlgorithmKind::BruteForce`] —
    ///    the full-drain shape: many sources, no textual filter power,
    ///    bounds prune nothing, so the shared-frontier multi-source drain
    ///    (one batched Dijkstra) wins;
    /// 5. `m == 1` → [`AlgorithmKind::Expansion`] tagged
    ///    `"single-source"` — with one source there is nothing to
    ///    schedule, but the expansion's per-trajectory bound still
    ///    prunes where the baseline's coarse ring radius cannot (F1:
    ///    the baseline visits the whole live set at every m while
    ///    expansion prunes ≥ 86%), so the baseline is never the
    ///    cheapest route; the tag is kept for observability;
    /// 6. otherwise → [`AlgorithmKind::Expansion`], the paper's default.
    pub fn decide(&self, db: &Database<'_>, query: &UotsQuery) -> PlanDecision {
        let stats = Self::stats(db, query);
        if let Some(kind) = self.force {
            return PlanDecision {
                kind,
                stats,
                reason: "forced",
            };
        }
        let (kind, reason) = if stats.live <= TINY_LIVE {
            (AlgorithmKind::BruteForce, "tiny-live")
        } else if stats.lambda <= TEXT_LAMBDA
            && stats.selectivity <= RARE_SELECTIVITY
            && db.keyword_index.is_some()
            && !query.keywords().is_empty()
        {
            (AlgorithmKind::TextFirst, "rare-keywords-text-dominated")
        } else if stats.m >= FULL_DRAIN_M && stats.selectivity >= UBIQUITOUS_SELECTIVITY {
            (AlgorithmKind::BruteForce, "full-drain-shape")
        } else if stats.m == 1 {
            (AlgorithmKind::Expansion, "single-source")
        } else {
            (AlgorithmKind::Expansion, "default-expansion")
        };
        PlanDecision {
            kind,
            stats,
            reason,
        }
    }
}

/// Document frequency of the rarest query keyword over the live count;
/// `1.0` whenever the statistic is unavailable or meaningless (no
/// keywords, no index, nothing live) so the caller treats keywords as
/// having no filter power.
fn keyword_selectivity(
    index: Option<&KeywordInvertedIndex<uots_trajectory::TrajectoryId>>,
    query: &UotsQuery,
    live: usize,
) -> f64 {
    let Some(idx) = index else { return 1.0 };
    if query.keywords().is_empty() || live == 0 {
        return 1.0;
    }
    let rarest = query
        .keywords()
        .iter()
        .map(|k| idx.document_frequency(k))
        .min()
        .unwrap_or(0);
    (rarest as f64 / live as f64).min(1.0)
}

impl Algorithm for Planner {
    fn run_ctx(
        &self,
        db: &Database<'_>,
        query: &UotsQuery,
        ctl: &RunControl,
        rec: &mut Recorder,
        ctx: &SearchContext,
    ) -> Result<QueryResult, CoreError> {
        let decision = self.decide(db, query);
        decision
            .kind
            .instantiate()
            .run_ctx(db, query, ctl, rec, ctx)
    }

    fn name(&self) -> &'static str {
        "planner"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QueryOptions, Weights};
    use uots_datagen::{workload, Dataset, DatasetConfig};
    use uots_network::NodeId;
    use uots_text::{KeywordId, KeywordSet};

    fn dataset() -> Dataset {
        // large enough to clear TINY_LIVE
        Dataset::build(&DatasetConfig::small(200, 77)).expect("dataset builds")
    }

    /// A hand-built fixture with *controlled* keyword frequencies:
    /// keyword 0 on every trajectory (ubiquitous), keyword 1 on exactly
    /// one (rare). 200 trajectories clears [`TINY_LIVE`].
    fn controlled_fixture() -> (uots_network::RoadNetwork, uots_trajectory::TrajectoryStore) {
        use uots_network::generators::{grid_city, GridCityConfig};
        use uots_trajectory::{Sample, Trajectory, TrajectoryStore};
        let net = grid_city(&GridCityConfig::tiny(20)).unwrap();
        let mut store = TrajectoryStore::new();
        for i in 0..200u32 {
            let kws = if i == 0 {
                KeywordSet::from_ids([KeywordId(0), KeywordId(1)])
            } else {
                KeywordSet::from_ids([KeywordId(0)])
            };
            store.push(
                Trajectory::new(
                    vec![
                        Sample {
                            node: NodeId(i % 400),
                            time: 0.0,
                        },
                        Sample {
                            node: NodeId((i + 1) % 400),
                            time: 60.0,
                        },
                    ],
                    kws,
                )
                .unwrap(),
            );
        }
        (net, store)
    }

    fn query(ds: &Dataset, m: usize, keywords: &[KeywordId], lambda: f64, k: usize) -> UotsQuery {
        let spec = &workload::generate(
            ds,
            &workload::WorkloadConfig {
                num_queries: 1,
                locations_per_query: m,
                keywords_per_query: 0,
                seed: 4242,
                ..Default::default()
            },
        )[0];
        let mut locations = spec.locations.clone();
        locations.truncate(m);
        UotsQuery::with_options(
            locations,
            KeywordSet::from_ids(keywords.iter().copied()),
            vec![],
            QueryOptions {
                weights: Weights::lambda(lambda).unwrap(),
                k,
                ..Default::default()
            },
        )
        .unwrap()
    }

    /// Satellite: table-driven decisions at the stat extremes, over a
    /// fixture with controlled keyword frequencies (keyword 0 ubiquitous
    /// — df/live = 1.0; keyword 1 rare — df/live = 0.005).
    #[test]
    fn decisions_at_stat_extremes() {
        let (net, store) = controlled_fixture();
        let vidx = store.build_vertex_index(net.num_nodes());
        let kidx = store.build_keyword_index(2);
        let db = crate::Database::new(&net, &store, &vidx).with_keyword_index(&kidx);
        let (ubiq, rare) = (KeywordId(0), KeywordId(1));
        let planner = Planner::new();

        // (m, keywords, λ) → expected kind
        let table: Vec<(usize, Vec<KeywordId>, f64, AlgorithmKind, &str)> = vec![
            // m=1, moderate λ: nothing to schedule, but the expansion
            // bound still prunes where the baseline's ring radius
            // cannot — never route to the strictly-dominated baseline
            (1, vec![rare], 0.5, AlgorithmKind::Expansion, "m=1"),
            // m=10 + ubiquitous keywords: the full-drain shape
            (
                10,
                vec![ubiq],
                0.5,
                AlgorithmKind::BruteForce,
                "m=10 ubiquitous",
            ),
            // rare keyword + λ→0: textually dominated filter-and-refine
            (4, vec![rare], 0.1, AlgorithmKind::TextFirst, "rare λ→0"),
            // λ→1: spatially dominated — the paper's expansion
            (4, vec![rare], 0.9, AlgorithmKind::Expansion, "λ→1"),
            // m=10 but rare keywords: bounds still prune → expansion
            (10, vec![rare], 0.5, AlgorithmKind::Expansion, "m=10 rare"),
            // no keywords at all, moderate m: expansion default
            (4, vec![], 0.5, AlgorithmKind::Expansion, "no keywords"),
            // no keywords, high m: selectivity defaults to 1.0 → full drain
            (
                10,
                vec![],
                0.5,
                AlgorithmKind::BruteForce,
                "m=10 no keywords",
            ),
        ];
        for (m, kws, lambda, expect, label) in table {
            let locations: Vec<NodeId> = (0..m as u32).map(NodeId).collect();
            let q = UotsQuery::with_options(
                locations,
                KeywordSet::from_ids(kws.iter().copied()),
                vec![],
                QueryOptions {
                    weights: Weights::lambda(lambda).unwrap(),
                    k: 3,
                    ..Default::default()
                },
            )
            .unwrap();
            let d = planner.decide(&db, &q);
            assert_eq!(d.kind, expect, "{label}: {:?}", d);
            assert_eq!(d.stats.m, m, "{label}");
        }
    }

    #[test]
    fn forced_kind_wins_over_every_rule() {
        let ds = dataset();
        let db = crate::Database::new(&ds.network, &ds.store, &ds.vertex_index)
            .with_keyword_index(&ds.keyword_index);
        let q = query(&ds, 1, &[], 0.5, 1);
        for kind in AlgorithmKind::ALL {
            let d = Planner::forced(kind).decide(&db, &q);
            assert_eq!(d.kind, kind);
            assert_eq!(d.reason, "forced");
        }
    }

    #[test]
    fn tiny_datasets_go_to_the_oracle() {
        let ds = Dataset::build(&DatasetConfig::small(30, 5)).unwrap();
        let db = crate::Database::new(&ds.network, &ds.store, &ds.vertex_index)
            .with_keyword_index(&ds.keyword_index);
        let q = UotsQuery::new(vec![NodeId(0), NodeId(1)], KeywordSet::empty()).unwrap();
        let d = Planner::new().decide(&db, &q);
        assert_eq!(d.kind, AlgorithmKind::BruteForce);
        assert_eq!(d.reason, "tiny-live");
    }

    #[test]
    fn kind_names_round_trip_through_parse() {
        for kind in AlgorithmKind::ALL {
            assert_eq!(AlgorithmKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(
            AlgorithmKind::parse("iknn"),
            Some(AlgorithmKind::IknnBaseline)
        );
        assert_eq!(AlgorithmKind::parse("nope"), None);
    }

    /// Without a keyword index the selectivity statistic degrades to 1.0
    /// and TextFirst (which requires the index) is never chosen.
    #[test]
    fn no_keyword_index_never_chooses_text_first() {
        let (net, store) = controlled_fixture();
        let vidx = store.build_vertex_index(net.num_nodes());
        let db = crate::Database::new(&net, &store, &vidx);
        let q = UotsQuery::with_options(
            (0..4u32).map(NodeId).collect(),
            KeywordSet::from_ids([KeywordId(1)]),
            vec![],
            QueryOptions {
                weights: Weights::lambda(0.1).unwrap(),
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let d = Planner::new().decide(&db, &q);
        assert_ne!(d.kind, AlgorithmKind::TextFirst);
        assert_eq!(d.stats.selectivity, 1.0);
    }
}
