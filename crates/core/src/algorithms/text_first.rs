//! Textual-first filter-and-refine baseline.
//!
//! The analogue, in the UOTS setting, of the paper family's "drive the
//! search from the cheap domain" baselines (TF-Matching drives from the
//! temporal domain in the join paper): use the keyword inverted index to
//! compute the **exact textual similarity** of every trajectory sharing at
//! least one query keyword, bound each trajectory's combined similarity by
//!
//! ```text
//! Sim(q, τ) ≤ w_s · 1 + w_tx · Sim_T(q, τ) + w_tm · 1
//! ```
//!
//! and verify exact spatial (and temporal) similarity in descending bound
//! order, stopping once the k-th best exact similarity dominates the next
//! bound. Exact spatial evaluation needs network distances, so the baseline
//! pays for one full Dijkstra tree per query location up front — precisely
//! the "costly to acquire network distances" weakness the paper attributes
//! to baselines that are not driven by the spatial domain.

use crate::algorithms::Algorithm;
use crate::budget::{Completeness, Gate, RunControl};
use crate::csr::MultiSourceExpansion;
use crate::distcache::{CachedSource, SearchContext};
use crate::keywords::TextualEval;
use crate::similarity;
use crate::topk::TopK;
use crate::{CoreError, Database, QueryResult, SearchMetrics, UotsQuery};
use uots_network::dijkstra::shortest_path_tree;
use uots_obs::{Phase, Recorder};
use uots_trajectory::TrajectoryId;

/// The textual-first baseline. Requires
/// [`Database::keyword_index`][crate::Database::keyword_index].
///
/// With a [`SearchContext`] cache the up-front per-location trees are
/// acquired by draining [`CachedSource`]s to exhaustion (replaying cached
/// prefixes) and the drained prefixes are published back on clean
/// completion; distances and results are bit-identical either way.
#[derive(Debug, Clone, Copy, Default)]
pub struct TextFirst;

impl Algorithm for TextFirst {
    fn run_ctx(
        &self,
        db: &Database<'_>,
        query: &UotsQuery,
        ctl: &RunControl,
        rec: &mut Recorder,
        ctx: &SearchContext,
    ) -> Result<QueryResult, CoreError> {
        db.validate(query)?;
        let keyword_index = db.keyword_index.ok_or(CoreError::MissingIndex("keyword"))?;
        if ctl.is_cancelled() || ctl.deadline_passed() {
            return Ok(QueryResult::interrupted_empty());
        }
        let start = std::time::Instant::now();
        let mut gate = Gate::new(&query.options().budget, ctl);
        let mut metrics = SearchMetrics::for_one_query();
        let opts = query.options();
        let w = opts.weights;

        // ---- filter: exact textual similarity via the inverted index ----
        // Trajectories sharing no keyword have Sim_T = 0 (or, for an empty
        // query keyword set, Sim_T = 1 exactly when the trajectory is also
        // untagged — the index can't enumerate those, so fall back to a full
        // textual pass in that edge case).
        rec.enter(Phase::TextFilter);
        let textual = TextualEval::new(
            opts.text_measure,
            query.keywords(),
            db.layout.map(|l| &l.keywords),
        );
        let mut scored: Vec<(f64, TrajectoryId)> = if query.keywords().is_empty() {
            db.store
                .iter()
                .filter(|(id, _)| db.is_live(*id))
                .map(|(id, t)| {
                    let ub = w.spatial + w.textual * textual.eval(id, t) + w.temporal;
                    (ub, id)
                })
                .collect()
        } else {
            let sharing = keyword_index.union_of(query.keywords().iter());
            let mut scored: Vec<(f64, TrajectoryId)> = sharing
                .iter()
                .map(|&id| {
                    let t = db.store.get(id);
                    let ub = w.spatial + w.textual * textual.eval(id, t) + w.temporal;
                    (ub, id)
                })
                .collect();
            // trajectories sharing no keyword: bound without textual term;
            // representing them individually would defeat the filter, so a
            // single pass adds them lazily only if the bound can matter —
            // here we append them with their common bound and let the
            // refine loop's early exit skip them wholesale.
            let sharing_set: std::collections::HashSet<TrajectoryId> =
                sharing.into_iter().collect();
            scored.extend(
                db.store
                    .ids()
                    .filter(|id| db.is_live(*id) && !sharing_set.contains(id))
                    .map(|id| (w.spatial + w.temporal, id)),
            );
            scored
        };
        // descending bound, ties by ascending id for determinism
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));

        // ---- refine: exact evaluation in bound order ----
        rec.enter(Phase::NetworkExpansion);
        let cached = ctx.cache().is_some();
        let mut trees = Vec::new();
        let mut sources: Vec<CachedSource<'_>> = Vec::new();
        let mut multi: Option<MultiSourceExpansion<'_>> = None;
        let mut interrupted = false;
        if let Some(layout) = db.layout.filter(|_| !cached) {
            // CSR layout: one shared-frontier drain (see brute_force for
            // why per-settle gating yields identical outputs)
            let srcs: Vec<u32> = query.locations().iter().map(|v| v.0).collect();
            let mut ms = MultiSourceExpansion::new(&layout.csr, &srcs);
            if gate.should_stop(metrics.visited_trajectories, metrics.settled_vertices) {
                interrupted = true;
            } else {
                while ms.next_settled().is_some() {
                    metrics.settled_vertices += 1;
                    if gate.should_stop(metrics.visited_trajectories, metrics.settled_vertices) {
                        interrupted = true;
                        break;
                    }
                }
            }
            multi = Some(ms);
        } else {
            for &v in query.locations() {
                if gate.should_stop(metrics.visited_trajectories, metrics.settled_vertices) {
                    interrupted = true;
                    break;
                }
                if cached {
                    let mut src = CachedSource::start(db.network, v, ctx.cache());
                    rec.enter(Phase::CacheReplay);
                    while src.in_replay() {
                        src.next_settled();
                        metrics.settled_vertices += 1;
                    }
                    rec.enter(Phase::NetworkExpansion);
                    while src.next_settled().is_some() {
                        metrics.settled_vertices += 1;
                    }
                    sources.push(src);
                } else {
                    let t = shortest_path_tree(db.network, v);
                    metrics.settled_vertices += t.reached_count();
                    trees.push(t);
                }
            }
        }

        rec.enter(Phase::CandidateRefine);
        let mut topk = TopK::new(opts.k);
        // index of the first bound not yet refined — the interruption
        // certificate: every unrefined trajectory scores at most its bound,
        // and bounds are sorted descending
        let mut next_bound = scored.first().map_or(0.0, |&(ub, _)| ub);
        if !interrupted {
            for &(ub, id) in &scored {
                next_bound = ub;
                // strict: a trajectory whose bound ties the k-th best could
                // still realize exactly that similarity and win the id
                // tie-break, so only `kth > ub` proves it irrelevant
                if topk.threshold() > ub {
                    next_bound = 0.0;
                    break; // no later trajectory can beat the k-th best
                }
                if gate.should_stop(metrics.visited_trajectories, metrics.settled_vertices) {
                    interrupted = true;
                    break;
                }
                metrics.visited_trajectories += 1;
                metrics.candidates += 1;
                let traj = db.store.get(id);
                let tx = textual.eval(id, traj);
                let m = if cached {
                    similarity::evaluate_with_sources_textual(&sources, query, id, traj, tx)
                } else if let Some(ms) = &multi {
                    similarity::evaluate_with_multi(ms, query, id, traj, tx)
                } else {
                    similarity::evaluate_with_trees_textual(&trees, query, id, traj, tx)
                };
                debug_assert!(m.similarity <= ub + 1e-9, "bound must dominate exact");
                metrics.heap_pushes += 1;
                topk.offer(m);
                next_bound = 0.0; // consumed: exact if the loop ends here
            }
        }
        rec.leave();
        for src in &mut sources {
            if interrupted {
                src.poison();
            } else {
                src.publish();
            }
        }

        let completeness = if interrupted {
            metrics.interrupted = 1;
            Completeness::BestEffort {
                bound_gap: (next_bound - topk.threshold().max(0.0)).clamp(0.0, 1.0),
            }
        } else {
            Completeness::Exact
        };
        metrics.phases = rec.phases_snapshot();
        metrics.runtime = start.elapsed();
        Ok(QueryResult {
            matches: topk.into_sorted(),
            metrics,
            completeness,
        })
    }

    fn name(&self) -> &'static str {
        "text-first"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::BruteForce;
    use crate::query::{QueryOptions, Weights};
    use uots_network::generators::{grid_city, GridCityConfig};
    use uots_network::NodeId;
    use uots_text::{KeywordId, KeywordSet};
    use uots_trajectory::{Sample, Trajectory, TrajectoryStore};

    fn kws(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    fn fixture() -> (uots_network::RoadNetwork, TrajectoryStore) {
        let net = grid_city(&GridCityConfig::tiny(6)).unwrap();
        let mut s = TrajectoryStore::new();
        for (nodes, tags) in [
            (vec![0u32, 1], vec![1u32, 2]),
            (vec![14, 15], vec![2, 3]),
            (vec![30, 31], vec![9]),
            (vec![33, 34], vec![]),
        ] {
            s.push(
                Trajectory::new(
                    nodes
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| Sample {
                            node: NodeId(v),
                            time: 100.0 * (i + 1) as f64,
                        })
                        .collect(),
                    kws(&tags),
                )
                .unwrap(),
            );
        }
        (net, s)
    }

    fn db<'a>(
        net: &'a uots_network::RoadNetwork,
        s: &'a TrajectoryStore,
        vidx: &'a uots_index::VertexInvertedIndex<TrajectoryId>,
        kidx: &'a uots_index::KeywordInvertedIndex<TrajectoryId>,
    ) -> Database<'a> {
        Database::new(net, s, vidx).with_keyword_index(kidx)
    }

    #[test]
    fn matches_brute_force_across_lambdas() {
        let (net, s) = fixture();
        let vidx = s.build_vertex_index(net.num_nodes());
        let kidx = s.build_keyword_index(16);
        let d = db(&net, &s, &vidx, &kidx);
        for lambda in [0.0, 0.3, 0.5, 0.9, 1.0] {
            let q = UotsQuery::with_options(
                vec![NodeId(0), NodeId(7)],
                kws(&[2]),
                vec![],
                QueryOptions {
                    weights: Weights::lambda(lambda).unwrap(),
                    k: 3,
                    ..Default::default()
                },
            )
            .unwrap();
            let a = TextFirst.run(&d, &q).unwrap();
            let b = BruteForce.run(&d, &q).unwrap();
            assert_eq!(a.ids(), b.ids(), "λ = {lambda}");
        }
    }

    #[test]
    fn empty_query_keywords_fall_back_to_full_textual_pass() {
        let (net, s) = fixture();
        let vidx = s.build_vertex_index(net.num_nodes());
        let kidx = s.build_keyword_index(16);
        let d = db(&net, &s, &vidx, &kidx);
        let q = UotsQuery::with_options(
            vec![NodeId(0)],
            KeywordSet::empty(),
            vec![],
            QueryOptions {
                weights: Weights::lambda(0.2).unwrap(),
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let a = TextFirst.run(&d, &q).unwrap();
        let b = BruteForce.run(&d, &q).unwrap();
        assert_eq!(a.ids(), b.ids());
        // the untagged trajectory has textual similarity 1 here and must win
        assert!((a.matches[0].textual - 1.0).abs() < 1e-12);
    }

    #[test]
    fn textual_filter_skips_work_when_textual_dominates() {
        let (net, s) = fixture();
        let vidx = s.build_vertex_index(net.num_nodes());
        let kidx = s.build_keyword_index(16);
        let d = db(&net, &s, &vidx, &kidx);
        // pure textual query: only perfectly matching trajectories need exact
        // evaluation before the bound closes
        let q = UotsQuery::with_options(
            vec![NodeId(0)],
            kws(&[9]),
            vec![],
            QueryOptions {
                weights: Weights::lambda(0.0).unwrap(),
                k: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let r = TextFirst.run(&d, &q).unwrap();
        assert_eq!(r.matches[0].id.0, 2);
        assert!(
            r.metrics.visited_trajectories <= 2,
            "visited {}",
            r.metrics.visited_trajectories
        );
    }

    #[test]
    fn requires_keyword_index() {
        let (net, s) = fixture();
        let vidx = s.build_vertex_index(net.num_nodes());
        let d = Database::new(&net, &s, &vidx);
        let q = UotsQuery::new(vec![NodeId(0)], kws(&[1])).unwrap();
        assert!(matches!(
            TextFirst.run(&d, &q),
            Err(CoreError::MissingIndex("keyword"))
        ));
    }
}
