//! Exhaustive evaluation: the correctness oracle.

use crate::algorithms::Algorithm;
use crate::budget::{Completeness, Gate, RunControl};
use crate::csr::MultiSourceExpansion;
use crate::distcache::{CachedSource, SearchContext};
use crate::keywords::TextualEval;
use crate::similarity;
use crate::topk::TopK;
use crate::{CoreError, Database, QueryResult, SearchMetrics, UotsQuery};
use uots_network::dijkstra::shortest_path_tree;
use uots_obs::{Phase, Recorder};

/// Computes one full shortest-path tree per query location, then evaluates
/// the exact similarity of *every* trajectory. `O(m · |V| log |V| + m · Σ|τ|)`
/// with zero pruning — the reference answer and the unoptimized baseline.
///
/// With a [`SearchContext`] cache, the per-location trees are acquired by
/// draining a [`CachedSource`] to exhaustion instead — cached prefixes are
/// replayed, the full component is settled either way, and the drained
/// (exhausted) prefixes are published back, making the brute force an
/// ideal cache warmer. Distances and results are bit-identical to the
/// tree path.
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForce;

impl Algorithm for BruteForce {
    fn run_ctx(
        &self,
        db: &Database<'_>,
        query: &UotsQuery,
        ctl: &RunControl,
        rec: &mut Recorder,
        ctx: &SearchContext,
    ) -> Result<QueryResult, CoreError> {
        db.validate(query)?;
        if ctl.is_cancelled() || ctl.deadline_passed() {
            return Ok(QueryResult::interrupted_empty());
        }
        let start = std::time::Instant::now();
        let mut gate = Gate::new(&query.options().budget, ctl);
        let mut metrics = SearchMetrics::for_one_query();
        let cached = ctx.cache().is_some();

        let textual = TextualEval::new(
            query.options().text_measure,
            query.keywords(),
            db.layout.map(|l| &l.keywords),
        );

        rec.enter(Phase::NetworkExpansion);
        let mut trees = Vec::new();
        let mut sources: Vec<CachedSource<'_>> = Vec::new();
        let mut multi: Option<MultiSourceExpansion<'_>> = None;
        let mut interrupted = false;
        if let Some(layout) = db.layout.filter(|_| !cached) {
            // CSR layout: one multi-source drain over a shared frontier.
            // The gate is consulted per settle instead of per source; any
            // settle budget below the full drain interrupts either way
            // with the identical (empty, gap-1) best-effort result, and a
            // completed drain leaves the same total settle count the
            // per-tree path accumulates.
            let srcs: Vec<u32> = query.locations().iter().map(|v| v.0).collect();
            let mut ms = MultiSourceExpansion::new(&layout.csr, &srcs);
            if gate.should_stop(metrics.visited_trajectories, metrics.settled_vertices) {
                interrupted = true;
            } else {
                while ms.next_settled().is_some() {
                    metrics.settled_vertices += 1;
                    if gate.should_stop(metrics.visited_trajectories, metrics.settled_vertices) {
                        interrupted = true;
                        break;
                    }
                }
            }
            multi = Some(ms);
        } else {
            for &v in query.locations() {
                // a tree settles its whole component at once, so count it
                // against the budget before paying for the next one
                if gate.should_stop(metrics.visited_trajectories, metrics.settled_vertices) {
                    interrupted = true;
                    break;
                }
                if cached {
                    let mut src = CachedSource::start(db.network, v, ctx.cache());
                    rec.enter(Phase::CacheReplay);
                    while src.in_replay() {
                        src.next_settled();
                        metrics.settled_vertices += 1;
                    }
                    rec.enter(Phase::NetworkExpansion);
                    while src.next_settled().is_some() {
                        metrics.settled_vertices += 1;
                    }
                    sources.push(src);
                } else {
                    let t = shortest_path_tree(db.network, v);
                    metrics.settled_vertices += t.reached_count();
                    trees.push(t);
                }
            }
        }

        rec.enter(Phase::CandidateRefine);
        let mut topk = TopK::new(query.options().k);
        if !interrupted {
            for (id, traj) in db.store.iter().filter(|(id, _)| db.is_live(*id)) {
                if gate.should_stop(metrics.visited_trajectories, metrics.settled_vertices) {
                    interrupted = true;
                    break;
                }
                metrics.visited_trajectories += 1;
                metrics.candidates += 1;
                metrics.heap_pushes += 1;
                let tx = textual.eval(id, traj);
                topk.offer(if cached {
                    similarity::evaluate_with_sources_textual(&sources, query, id, traj, tx)
                } else if let Some(ms) = &multi {
                    similarity::evaluate_with_multi(ms, query, id, traj, tx)
                } else {
                    similarity::evaluate_with_trees_textual(&trees, query, id, traj, tx)
                });
            }
        }
        rec.leave();
        // fully drained prefixes are ideal cache content, but an
        // interrupted run publishes nothing (poison-on-cancel)
        for src in &mut sources {
            if interrupted {
                src.poison();
            } else {
                src.publish();
            }
        }
        // conservative certificate: with no per-trajectory bounds, an
        // unevaluated trajectory could score up to 1 (gap 1.0 when nothing
        // was evaluated, 1 − kth-best once the top-k filled)
        let completeness = if interrupted {
            metrics.interrupted = 1;
            Completeness::BestEffort {
                bound_gap: (1.0 - topk.threshold().max(0.0)).clamp(0.0, 1.0),
            }
        } else {
            Completeness::Exact
        };
        metrics.phases = rec.phases_snapshot();
        metrics.runtime = start.elapsed();
        Ok(QueryResult {
            matches: topk.into_sorted(),
            metrics,
            completeness,
        })
    }

    fn name(&self) -> &'static str {
        "brute-force"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryOptions;
    use uots_network::generators::{grid_city, GridCityConfig};
    use uots_network::NodeId;
    use uots_text::{KeywordId, KeywordSet};
    use uots_trajectory::{Sample, Trajectory, TrajectoryId, TrajectoryStore};

    fn store() -> TrajectoryStore {
        let mut s = TrajectoryStore::new();
        for (nodes, tags) in [
            (vec![0u32, 1, 2], vec![1u32]),
            (vec![10, 11], vec![2]),
            (vec![24], vec![1, 2]),
        ] {
            s.push(
                Trajectory::new(
                    nodes
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| Sample {
                            node: NodeId(v),
                            time: 100.0 * (i + 1) as f64,
                        })
                        .collect(),
                    KeywordSet::from_ids(tags.iter().map(|&k| KeywordId(k))),
                )
                .unwrap(),
            );
        }
        s
    }

    #[test]
    fn evaluates_every_trajectory() {
        let net = grid_city(&GridCityConfig::tiny(5)).unwrap();
        let s = store();
        let vidx = s.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &s, &vidx);
        let q = UotsQuery::new(vec![NodeId(0)], KeywordSet::empty()).unwrap();
        let r = BruteForce.run(&db, &q).unwrap();
        assert_eq!(r.metrics.visited_trajectories, 3);
        assert_eq!(r.metrics.candidates, 3);
        assert_eq!(r.metrics.settled_vertices, 25);
        assert_eq!(r.matches.len(), 1);
        // trajectory 0 passes through the query vertex itself
        assert_eq!(r.matches[0].id, TrajectoryId(0));
    }

    #[test]
    fn k_caps_the_answer_not_the_work() {
        let net = grid_city(&GridCityConfig::tiny(5)).unwrap();
        let s = store();
        let vidx = s.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &s, &vidx);
        let q = UotsQuery::new(vec![NodeId(12)], KeywordSet::empty())
            .unwrap()
            .reoptioned(QueryOptions {
                k: 2,
                ..Default::default()
            })
            .unwrap();
        let r = BruteForce.run(&db, &q).unwrap();
        assert_eq!(r.matches.len(), 2);
        assert!(r.is_ranked());
        assert_eq!(r.metrics.visited_trajectories, 3);
    }

    #[test]
    fn rejects_invalid_queries() {
        let net = grid_city(&GridCityConfig::tiny(5)).unwrap();
        let s = store();
        let vidx = s.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &s, &vidx);
        let q = UotsQuery::new(vec![NodeId(1000)], KeywordSet::empty()).unwrap();
        assert!(BruteForce.run(&db, &q).is_err());
    }
}
