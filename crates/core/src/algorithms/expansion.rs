//! The paper's algorithm: concurrent expansion search with per-trajectory
//! bounds and heuristic scheduling.

use crate::algorithms::Algorithm;
use crate::budget::RunControl;
use crate::distcache::SearchContext;
use crate::engine::expansion_search_ctx;
use crate::scheduling::Scheduler;
use crate::{CoreError, Database, QueryResult, UotsQuery};
use uots_obs::Recorder;

/// The UOTS expansion search (see [`crate::engine`] for the machinery).
///
/// `Expansion::default()` uses the paper's heuristic scheduler; construct
/// with [`Scheduler::RoundRobin`] or [`Scheduler::MinRadius`] for the
/// "without heuristic" ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct Expansion {
    scheduler: Scheduler,
}

impl Expansion {
    /// An expansion search under the given scheduler.
    pub fn new(scheduler: Scheduler) -> Self {
        Expansion { scheduler }
    }

    /// The configured scheduler.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }
}

impl Algorithm for Expansion {
    fn run_ctx(
        &self,
        db: &Database<'_>,
        query: &UotsQuery,
        ctl: &RunControl,
        rec: &mut Recorder,
        ctx: &SearchContext,
    ) -> Result<QueryResult, CoreError> {
        expansion_search_ctx(db, query, self.scheduler, ctl, rec, ctx)
    }

    fn name(&self) -> &'static str {
        match self.scheduler {
            Scheduler::Heuristic { .. } => "expansion",
            Scheduler::RoundRobin => "expansion-w/o-h(rr)",
            Scheduler::MinRadius => "expansion-w/o-h(mr)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_reflect_the_scheduler() {
        assert_eq!(Expansion::default().name(), "expansion");
        assert_eq!(
            Expansion::new(Scheduler::RoundRobin).name(),
            "expansion-w/o-h(rr)"
        );
        assert_eq!(
            Expansion::new(Scheduler::MinRadius).name(),
            "expansion-w/o-h(mr)"
        );
        assert_eq!(Expansion::default().scheduler(), Scheduler::heuristic());
    }
}
