//! IKNN-style lockstep-round baseline.
//!
//! An adaptation of the BCT / IKNN candidate-generation scheme (Chen et al.,
//! SIGMOD'10) to road networks and the UOTS similarity: all query sources
//! expand **in lockstep rounds** of a fixed number of settle steps, and the
//! only pruning bound is the *coarse* all-source radius bound
//!
//! ```text
//! UB = w_s · (1/m) Σ_i e^(−r_i / decay) + w_tx · 1 + w_tm · (…radii…)
//! ```
//!
//! — no per-trajectory partial information and no exact textual term is
//! used for bounding, which is exactly what the paper's per-trajectory
//! bounds add on top. Comparing [`IknnBaseline`] to
//! [`Expansion`](crate::algorithms::Expansion) isolates the value of those
//! bounds and of the scheduling strategy.

use crate::algorithms::Algorithm;
use crate::budget::{Completeness, Gate, RunControl};
use crate::distcache::{CachedSource, SearchContext};
use crate::keywords::TextualEval;
use crate::similarity;
use crate::topk::TopK;
use crate::{CoreError, Database, QueryOptions, QueryResult, SearchMetrics, UotsQuery};
use std::collections::HashMap;
use uots_index::TimeExpansion;
use uots_obs::{Phase, Recorder};
use uots_trajectory::TrajectoryId;

/// The lockstep baseline. `settles_per_round` controls the round
/// granularity (the termination test runs between rounds).
#[derive(Debug, Clone, Copy)]
pub struct IknnBaseline {
    /// Settle/scan steps each source performs per round.
    pub settles_per_round: usize,
}

impl Default for IknnBaseline {
    fn default() -> Self {
        IknnBaseline {
            settles_per_round: 64,
        }
    }
}

struct State {
    sdists: Vec<f64>,
    s_remaining: u32,
    tdists: Vec<f64>,
    t_remaining: u32,
    done: bool,
}

/// The round bound shared by the termination test and the interruption
/// certificate: the best similarity any unfinalized trajectory could still
/// achieve given the current radii (textual bounded trivially by 1).
fn coarse_round_ub(
    spatial: &[CachedSource<'_>],
    temporal: &[TimeExpansion<'_, TrajectoryId>],
    states: &HashMap<TrajectoryId, State>,
    opts: &QueryOptions,
) -> f64 {
    let m = spatial.len();
    let qt = temporal.len();
    let w = opts.weights;
    let s_radii: Vec<f64> = spatial.iter().map(|e| e.unsettled_lower_bound()).collect();
    let t_radii: Vec<f64> = temporal
        .iter()
        .map(|e| {
            if e.is_exhausted() {
                f64::INFINITY
            } else {
                e.radius()
            }
        })
        .collect();
    let coarse = |sdists: Option<&[f64]>, tdists: Option<&[f64]>| {
        let spatial_ub = (0..m)
            .map(|i| {
                let d = match sdists {
                    Some(ds) if !ds[i].is_nan() => ds[i],
                    _ => s_radii[i],
                };
                (-d / opts.decay_km).exp()
            })
            .sum::<f64>()
            / m as f64;
        let temporal_ub = if qt == 0 {
            0.0
        } else {
            (0..qt)
                .map(|j| {
                    let d = match tdists {
                        Some(ds) if !ds[j].is_nan() => ds[j],
                        _ => t_radii[j],
                    };
                    (-d / opts.decay_s).exp()
                })
                .sum::<f64>()
                / qt as f64
        };
        w.spatial * spatial_ub + w.textual * 1.0 + w.temporal * temporal_ub
    };
    let mut ub = coarse(None, None);
    for st in states.values() {
        if !st.done {
            ub = ub.max(coarse(Some(&st.sdists), Some(&st.tdists)));
        }
    }
    ub
}

impl Algorithm for IknnBaseline {
    fn run_ctx(
        &self,
        db: &Database<'_>,
        query: &UotsQuery,
        ctl: &RunControl,
        rec: &mut Recorder,
        ctx: &SearchContext,
    ) -> Result<QueryResult, CoreError> {
        db.validate(query)?;
        if ctl.is_cancelled() || ctl.deadline_passed() {
            return Ok(QueryResult::interrupted_empty());
        }
        let start = std::time::Instant::now();
        let mut gate = Gate::new(&query.options().budget, ctl);
        let opts = query.options();
        let w = opts.weights;
        let mut metrics = SearchMetrics::for_one_query();

        let mut spatial: Vec<CachedSource<'_>> = query
            .locations()
            .iter()
            .map(|&v| CachedSource::start(db.network, v, ctx.cache()))
            .collect();
        let mut temporal: Vec<TimeExpansion<'_, TrajectoryId>> = if w.uses_temporal() {
            let idx = db
                .timestamp_index
                .expect("validated: temporal channel has its index");
            query.times().iter().map(|&t| idx.expand_from(t)).collect()
        } else {
            Vec::new()
        };

        let m = spatial.len();
        let qt = temporal.len();
        let mut states: HashMap<TrajectoryId, State> = HashMap::new();
        let mut topk = TopK::new(opts.k);
        let per_round = self.settles_per_round.max(1);

        let textual_eval = TextualEval::new(
            opts.text_measure,
            query.keywords(),
            db.layout.map(|l| &l.keywords),
        );

        // finalize helper as a closure would fight the borrow checker;
        // structured as an inner function instead
        fn finalize(
            query: &UotsQuery,
            st: &mut State,
            tid: TrajectoryId,
            db: &Database<'_>,
            textual_eval: &TextualEval<'_>,
            topk: &mut TopK,
            metrics: &mut SearchMetrics,
        ) {
            let opts = query.options();
            st.done = true;
            metrics.candidates += 1;
            metrics.heap_pushes += 1; // top-k offer below
            let spatial_sim = similarity::spatial_component(&st.sdists, opts.decay_km);
            let textual = textual_eval.eval(tid, db.store.get(tid));
            let temporal_sim = if st.tdists.is_empty() {
                0.0
            } else {
                similarity::temporal_component(&st.tdists, opts.decay_s)
            };
            topk.offer(crate::Match {
                id: tid,
                similarity: similarity::combine(query, spatial_sim, textual, temporal_sim),
                spatial: spatial_sim,
                textual,
                temporal: temporal_sim,
                order_blend: None,
            });
        }

        let mut interrupted = false;
        'rounds: loop {
            let mut any_live = false;

            // one lockstep round over every source
            for (i, source) in spatial.iter_mut().enumerate() {
                rec.enter(if source.in_replay() {
                    Phase::CacheReplay
                } else {
                    Phase::NetworkExpansion
                });
                for _ in 0..per_round {
                    if gate.should_stop(
                        metrics.visited_trajectories,
                        metrics.settled_vertices + metrics.scanned_timestamps,
                    ) {
                        interrupted = true;
                        break 'rounds;
                    }
                    let Some(settled) = source.next_settled() else {
                        break;
                    };
                    metrics.settled_vertices += 1;
                    for &tid in db.vertex_index.values_at(settled.node) {
                        let st = states.entry(tid).or_insert_with(|| {
                            metrics.visited_trajectories += 1;
                            State {
                                sdists: vec![f64::NAN; m],
                                s_remaining: m as u32,
                                tdists: vec![f64::NAN; qt],
                                t_remaining: qt as u32,
                                done: false,
                            }
                        });
                        if !st.done && st.sdists[i].is_nan() {
                            st.sdists[i] = settled.dist;
                            st.s_remaining -= 1;
                        }
                    }
                }
                any_live |= !source.is_exhausted();
            }
            rec.enter(Phase::NetworkExpansion);
            for (j, channel) in temporal.iter_mut().enumerate() {
                for _ in 0..per_round {
                    if gate.should_stop(
                        metrics.visited_trajectories,
                        metrics.settled_vertices + metrics.scanned_timestamps,
                    ) {
                        interrupted = true;
                        break 'rounds;
                    }
                    let Some(scanned) = channel.next_scanned() else {
                        break;
                    };
                    metrics.scanned_timestamps += 1;
                    let st = states.entry(scanned.value).or_insert_with(|| {
                        metrics.visited_trajectories += 1;
                        State {
                            sdists: vec![f64::NAN; m],
                            s_remaining: m as u32,
                            tdists: vec![f64::NAN; qt],
                            t_remaining: qt as u32,
                            done: false,
                        }
                    });
                    if !st.done && st.tdists[j].is_nan() {
                        st.tdists[j] = scanned.dt;
                        st.t_remaining -= 1;
                    }
                }
                any_live |= !channel.is_exhausted();
            }
            let frontier: usize = spatial.iter().map(CachedSource::frontier_len).sum();
            metrics.peak_frontier = metrics.peak_frontier.max(frontier);

            // settle exhausted sources' distances to exact ∞
            rec.enter(Phase::CandidateRefine);
            for (i, exp) in spatial.iter().enumerate() {
                if exp.is_exhausted() {
                    for st in states.values_mut() {
                        if !st.done && st.sdists[i].is_nan() {
                            st.sdists[i] = f64::INFINITY;
                            st.s_remaining -= 1;
                        }
                    }
                }
            }
            for (j, exp) in temporal.iter().enumerate() {
                if exp.is_exhausted() {
                    for st in states.values_mut() {
                        if !st.done && st.tdists[j].is_nan() {
                            st.tdists[j] = f64::INFINITY;
                            st.t_remaining -= 1;
                        }
                    }
                }
            }

            // finalize fully scanned trajectories
            let ready: Vec<TrajectoryId> = states
                .iter()
                .filter(|(_, st)| !st.done && st.s_remaining == 0 && st.t_remaining == 0)
                .map(|(&tid, _)| tid)
                .collect();
            for tid in ready {
                let st = states.get_mut(&tid).expect("present");
                finalize(query, st, tid, db, &textual_eval, &mut topk, &mut metrics);
            }

            // Coarse bounds. Unscanned trajectories are bounded by the
            // current radii; partly-scanned ones additionally keep their
            // already-known exact distances (their earlier sightings are
            // *closer* than the current radii, so the all-radius bound alone
            // would not dominate them). Unlike the paper's algorithm, the
            // textual term stays at its trivial bound 1 and the partly
            // scanned set is re-scanned wholesale every round — this is the
            // baseline's inefficiency, not an error.
            rec.enter(Phase::HeapMaintenance);
            let ub = coarse_round_ub(&spatial, &temporal, &states, opts);
            // strict: a bound-tied trajectory could still realize exactly
            // the k-th similarity and win the id tie-break; exact-tie
            // plateaus end by source exhaustion (`any_live` below) instead
            if topk.threshold() > ub {
                break;
            }
            if !any_live {
                // everything reachable was scanned; evaluate never-touched
                // trajectories exactly (disconnected networks / k > |P|)
                rec.enter(Phase::CandidateRefine);
                let untouched: Vec<TrajectoryId> = db
                    .store
                    .ids()
                    .filter(|tid| db.is_live(*tid) && !states.contains_key(tid))
                    .collect();
                for tid in untouched {
                    if gate.should_stop(
                        metrics.visited_trajectories,
                        metrics.settled_vertices + metrics.scanned_timestamps,
                    ) {
                        interrupted = true;
                        break 'rounds;
                    }
                    metrics.visited_trajectories += 1;
                    let mut st = State {
                        sdists: vec![f64::INFINITY; m],
                        s_remaining: 0,
                        tdists: if qt == 0 {
                            Vec::new()
                        } else {
                            similarity::temporal_gaps(query.times(), db.store.get(tid))
                        },
                        t_remaining: 0,
                        done: false,
                    };
                    finalize(
                        query,
                        &mut st,
                        tid,
                        db,
                        &textual_eval,
                        &mut topk,
                        &mut metrics,
                    );
                }
                break;
            }
        }

        rec.leave();
        // publish extended prefixes on clean completion only
        for src in &mut spatial {
            if interrupted {
                src.poison();
            } else {
                src.publish();
            }
        }
        let completeness = if interrupted {
            // the round bound at the moment of interruption certifies every
            // unfinalized and never-touched trajectory (radii only grew)
            metrics.interrupted = 1;
            let ub = coarse_round_ub(&spatial, &temporal, &states, opts);
            Completeness::BestEffort {
                bound_gap: (ub - topk.threshold().max(0.0)).clamp(0.0, 1.0),
            }
        } else {
            Completeness::Exact
        };
        metrics.phases = rec.phases_snapshot();
        metrics.runtime = start.elapsed();
        Ok(QueryResult {
            matches: topk.into_sorted(),
            metrics,
            completeness,
        })
    }

    fn name(&self) -> &'static str {
        "iknn-baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::BruteForce;
    use crate::query::{QueryOptions, Weights};
    use uots_network::generators::{grid_city, GridCityConfig};
    use uots_network::NodeId;
    use uots_text::{KeywordId, KeywordSet};
    use uots_trajectory::{Sample, Trajectory, TrajectoryStore};

    fn kws(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    fn fixture() -> (uots_network::RoadNetwork, TrajectoryStore) {
        let net = grid_city(&GridCityConfig::tiny(8)).unwrap();
        let mut s = TrajectoryStore::new();
        for (nodes, tags, t0) in [
            (vec![0u32, 1, 2], vec![1u32, 2], 1_000.0),
            (vec![27, 28, 29], vec![2, 3], 2_000.0),
            (vec![61, 62, 63], vec![4], 3_000.0),
        ] {
            s.push(
                Trajectory::new(
                    nodes
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| Sample {
                            node: NodeId(v),
                            time: t0 + 60.0 * i as f64,
                        })
                        .collect(),
                    kws(&tags),
                )
                .unwrap(),
            );
        }
        (net, s)
    }

    #[test]
    fn agrees_with_brute_force() {
        let (net, s) = fixture();
        let vidx = s.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &s, &vidx);
        for round in [1usize, 8, 256] {
            let algo = IknnBaseline {
                settles_per_round: round,
            };
            for lambda in [0.2, 0.5, 0.8] {
                let q = UotsQuery::with_options(
                    vec![NodeId(0), NodeId(9)],
                    kws(&[2]),
                    vec![],
                    QueryOptions {
                        weights: Weights::lambda(lambda).unwrap(),
                        k: 2,
                        ..Default::default()
                    },
                )
                .unwrap();
                let a = algo.run(&db, &q).unwrap();
                let b = BruteForce.run(&db, &q).unwrap();
                assert_eq!(a.ids(), b.ids(), "round {round}, λ {lambda}");
            }
        }
    }

    #[test]
    fn temporal_channel_supported() {
        let (net, s) = fixture();
        let vidx = s.build_vertex_index(net.num_nodes());
        let tidx = s.build_timestamp_index();
        let db = Database::new(&net, &s, &vidx).with_timestamp_index(&tidx);
        let q = UotsQuery::with_options(
            vec![NodeId(0)],
            kws(&[]),
            vec![3_060.0],
            QueryOptions {
                weights: Weights::new(0.2, 0.0, 0.8).unwrap(),
                ..Default::default()
            },
        )
        .unwrap();
        let a = IknnBaseline::default().run(&db, &q).unwrap();
        let b = BruteForce.run(&db, &q).unwrap();
        assert_eq!(a.ids(), b.ids());
        assert_eq!(a.matches[0].id.0, 2); // the trajectory travelling ~3000 s
    }

    #[test]
    fn visits_at_least_as_many_as_expansion() {
        use crate::algorithms::Expansion;
        let (net, s) = fixture();
        let vidx = s.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &s, &vidx);
        let q = UotsQuery::new(vec![NodeId(0), NodeId(1)], kws(&[1, 2])).unwrap();
        let iknn = IknnBaseline::default().run(&db, &q).unwrap();
        let exp = Expansion::default().run(&db, &q).unwrap();
        assert_eq!(iknn.ids(), exp.ids());
        assert!(iknn.metrics.settled_vertices >= exp.metrics.settled_vertices);
    }
}
