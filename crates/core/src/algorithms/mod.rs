//! The UOTS algorithms: the paper's expansion search, its scheduling
//! ablations, and the comparison baselines.
//!
//! | Algorithm | Pruning | Role |
//! |---|---|---|
//! | [`BruteForce`] | none | exact oracle / unoptimized reference |
//! | [`TextFirst`] | textual filter-and-refine | "driven by the wrong domain" baseline (cf. the temporal-first baseline of the paper family) |
//! | [`IknnBaseline`] | lockstep rounds, coarse radius bound | adapted BCT/IKNN candidate generation |
//! | [`Expansion`] | per-trajectory bounds + scheduling | **the paper's contribution** |
//!
//! All algorithms return *identical* rankings (property-tested); they differ
//! only in how much work they do.

mod brute_force;
mod expansion;
mod iknn;
mod text_first;

pub use brute_force::BruteForce;
pub use expansion::Expansion;
pub use iknn::IknnBaseline;
pub use text_first::TextFirst;

use crate::budget::RunControl;
use crate::distcache::SearchContext;
use crate::{CoreError, Database, QueryResult, UotsQuery};
use uots_obs::Recorder;

/// A UOTS query algorithm.
///
/// Every implementation is **anytime**: it honors the query's
/// [`crate::ExecutionBudget`] and the run's [`RunControl`] (cancellation
/// token + external deadline) and, when interrupted, returns its current
/// top-k tagged [`crate::Completeness::BestEffort`] with a certified bound
/// gap instead of failing.
///
/// Every implementation is also **observable**: the required entry point
/// [`Algorithm::run_recorded`] takes a [`Recorder`] and attributes its
/// wall-clock time to the phase taxonomy of [`uots_obs::Phase`], filling
/// `metrics.phases`. The plain [`Algorithm::run_with`] / [`Algorithm::run`]
/// paths pass [`Recorder::disabled`] — the no-op sink, one branch per phase
/// mark — so uninstrumented callers pay nothing.
pub trait Algorithm {
    /// Answers `query` over `db` under explicit run control and a
    /// [`SearchContext`] (shared cross-query distance cache + landmark
    /// admission), attributing phase time to `rec`. A run whose token is
    /// already cancelled (or whose deadline already passed) returns the
    /// empty best-effort answer with `bound_gap = 1.0`.
    ///
    /// The context only changes *work*, never *answers*: with any cache
    /// state the result must be identical to a run under the empty context
    /// (enforced by `tests/differential.rs`). A run that is interrupted
    /// must not publish partial expansion state to the shared cache.
    ///
    /// Use one recorder per query: the implementation publishes
    /// `rec.phases_snapshot()` into the result's `metrics.phases`, so a
    /// recorder shared across queries would leak earlier time into later
    /// metrics. The caller keeps ownership of `rec` (call
    /// [`Recorder::finish`] afterwards for the trace).
    ///
    /// # Errors
    ///
    /// Validation errors from [`Database::validate`] plus any
    /// algorithm-specific index requirements. Interruption is *not* an
    /// error.
    fn run_ctx(
        &self,
        db: &Database<'_>,
        query: &UotsQuery,
        ctl: &RunControl,
        rec: &mut Recorder,
        ctx: &SearchContext,
    ) -> Result<QueryResult, CoreError>;

    /// [`Algorithm::run_ctx`] under the empty context (no cache, no
    /// landmarks) — the pre-cache behavior.
    ///
    /// # Errors
    ///
    /// See [`Algorithm::run_ctx`].
    fn run_recorded(
        &self,
        db: &Database<'_>,
        query: &UotsQuery,
        ctl: &RunControl,
        rec: &mut Recorder,
    ) -> Result<QueryResult, CoreError> {
        self.run_ctx(db, query, ctl, rec, &SearchContext::default())
    }

    /// [`Algorithm::run_recorded`] with the disabled (no-op) recorder.
    ///
    /// # Errors
    ///
    /// See [`Algorithm::run_recorded`].
    fn run_with(
        &self,
        db: &Database<'_>,
        query: &UotsQuery,
        ctl: &RunControl,
    ) -> Result<QueryResult, CoreError> {
        self.run_recorded(db, query, ctl, &mut Recorder::disabled())
    }

    /// [`Algorithm::run_ctx`] unbounded and unrecorded: the convenience
    /// entry point for answering a query stream over one shared cache.
    ///
    /// # Errors
    ///
    /// See [`Algorithm::run_ctx`].
    fn run_with_cache(
        &self,
        db: &Database<'_>,
        query: &UotsQuery,
        ctx: &SearchContext,
    ) -> Result<QueryResult, CoreError> {
        self.run_ctx(
            db,
            query,
            &RunControl::unbounded(),
            &mut Recorder::disabled(),
            ctx,
        )
    }

    /// Answers `query` over `db` with no external control (the query's own
    /// budget, if any, still applies).
    ///
    /// # Errors
    ///
    /// See [`Algorithm::run_with`].
    fn run(&self, db: &Database<'_>, query: &UotsQuery) -> Result<QueryResult, CoreError> {
        self.run_with(db, query, &RunControl::unbounded())
    }

    /// Display name used in experiment output.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryOptions;
    use crate::Scheduler;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use uots_datagen::{workload, Dataset, DatasetConfig};
    use uots_index::TimestampIndex;
    use uots_trajectory::TrajectoryId;

    fn algorithms() -> Vec<Box<dyn Algorithm>> {
        vec![
            Box::new(BruteForce),
            Box::new(TextFirst),
            Box::new(IknnBaseline::default()),
            Box::new(Expansion::default()),
            Box::new(Expansion::new(Scheduler::RoundRobin)),
            Box::new(Expansion::new(Scheduler::MinRadius)),
        ]
    }

    /// All algorithms must return the same ranking as the brute-force
    /// oracle on randomized datasets and queries — the paper's correctness
    /// claim.
    #[test]
    fn all_algorithms_agree_with_the_oracle() {
        for seed in 0..3u64 {
            let ds = Dataset::build(&DatasetConfig::small(60, seed)).unwrap();
            let tidx: TimestampIndex<TrajectoryId> = ds.store.build_timestamp_index();
            let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
                .with_keyword_index(&ds.keyword_index)
                .with_timestamp_index(&tidx);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
            let specs = workload::generate(
                &ds,
                &workload::WorkloadConfig {
                    num_queries: 4,
                    locations_per_query: 3,
                    keywords_per_query: 3,
                    seed: seed ^ 0xabc,
                    ..Default::default()
                },
            );
            for spec in specs {
                let k = rng.gen_range(1..=5);
                let lambda = [0.1, 0.5, 0.9][rng.gen_range(0..3usize)];
                let query = UotsQuery::with_options(
                    spec.locations.clone(),
                    spec.keywords.clone(),
                    vec![],
                    QueryOptions {
                        weights: crate::Weights::lambda(lambda).unwrap(),
                        k,
                        ..Default::default()
                    },
                )
                .unwrap();
                let oracle = BruteForce.run(&db, &query).unwrap();
                for algo in algorithms() {
                    let got = algo.run(&db, &query).unwrap();
                    assert_eq!(
                        got.ids(),
                        oracle.ids(),
                        "{} disagrees (seed {seed}, k {k}, λ {lambda})",
                        algo.name()
                    );
                    for (a, b) in got.matches.iter().zip(oracle.matches.iter()) {
                        assert!(
                            (a.similarity - b.similarity).abs() < 1e-9,
                            "{}: {} vs {}",
                            algo.name(),
                            a.similarity,
                            b.similarity
                        );
                    }
                    assert!(got.is_ranked(), "{}", algo.name());
                }
            }
        }
    }

    /// The expansion algorithm must visit (usually far) fewer trajectories
    /// than the brute force on a localized query.
    #[test]
    fn expansion_prunes_relative_to_brute_force() {
        let ds = Dataset::build(&DatasetConfig::small(150, 11)).unwrap();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
            .with_keyword_index(&ds.keyword_index);
        let specs = workload::generate(
            &ds,
            &workload::WorkloadConfig {
                num_queries: 8,
                locations_per_query: 3,
                locality_km: 1.5,
                ..Default::default()
            },
        );
        let mut expansion_visits = 0usize;
        let mut brute_visits = 0usize;
        for spec in specs {
            let query = UotsQuery::new(spec.locations, spec.keywords).unwrap();
            expansion_visits += Expansion::default()
                .run(&db, &query)
                .unwrap()
                .metrics
                .visited_trajectories;
            brute_visits += BruteForce
                .run(&db, &query)
                .unwrap()
                .metrics
                .visited_trajectories;
        }
        assert!(
            expansion_visits < brute_visits,
            "expansion {expansion_visits} vs brute {brute_visits}"
        );
    }

    #[test]
    fn temporal_queries_agree_with_oracle() {
        let ds = Dataset::build(&DatasetConfig::small(50, 21)).unwrap();
        let tidx = ds.store.build_timestamp_index();
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
            .with_keyword_index(&ds.keyword_index)
            .with_timestamp_index(&tidx);
        let spec = &workload::generate(&ds, &workload::WorkloadConfig::default())[0];
        let query = UotsQuery::with_options(
            spec.locations.clone(),
            spec.keywords.clone(),
            vec![30_000.0, 60_000.0],
            QueryOptions {
                weights: crate::Weights::new(0.4, 0.3, 0.3).unwrap(),
                k: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let oracle = BruteForce.run(&db, &query).unwrap();
        let got = Expansion::default().run(&db, &query).unwrap();
        assert_eq!(got.ids(), oracle.ids());
        for (a, b) in got.matches.iter().zip(oracle.matches.iter()) {
            assert!((a.similarity - b.similarity).abs() < 1e-9);
        }
    }
}
