//! The UOTS query model.
//!
//! A query consists of a set of intended places (network vertices), a set of
//! preference keywords, an optional set of preferred timestamps (temporal
//! extension), and the combination options: channel weights, the decay
//! scales, the answer size `k` and the textual measure.

use crate::CoreError;
use serde::{Deserialize, Serialize};
use uots_index::DAY_SECONDS;
use uots_network::NodeId;
use uots_text::{KeywordSet, TextSimilarity};

/// Maximum number of query locations (the per-source scan masks use `u64`).
pub const MAX_LOCATIONS: usize = 64;

/// Relative weights of the similarity channels. Non-negative, summing to 1.
///
/// The classic UOTS query uses `spatial = λ`, `textual = 1 − λ`,
/// `temporal = 0`; see [`Weights::lambda`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    /// Weight of the spatial similarity channel.
    pub spatial: f64,
    /// Weight of the textual similarity channel.
    pub textual: f64,
    /// Weight of the temporal similarity channel (extension).
    pub temporal: f64,
}

impl Weights {
    /// The paper's linear combination: `λ` spatial, `1 − λ` textual.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadParameter`] when `λ ∉ [0, 1]`.
    pub fn lambda(lambda: f64) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&lambda) || !lambda.is_finite() {
            return Err(CoreError::BadParameter(format!(
                "lambda must be in [0, 1], got {lambda}"
            )));
        }
        Ok(Weights {
            spatial: lambda,
            textual: 1.0 - lambda,
            temporal: 0.0,
        })
    }

    /// Arbitrary weights; validated and normalized to sum to 1.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadParameter`] for negative, non-finite or all-zero
    /// weights.
    pub fn new(spatial: f64, textual: f64, temporal: f64) -> Result<Self, CoreError> {
        for (name, w) in [
            ("spatial", spatial),
            ("textual", textual),
            ("temporal", temporal),
        ] {
            if !w.is_finite() || w < 0.0 {
                return Err(CoreError::BadParameter(format!(
                    "{name} weight must be finite and non-negative, got {w}"
                )));
            }
        }
        let sum = spatial + textual + temporal;
        if sum <= 0.0 {
            return Err(CoreError::BadParameter(
                "at least one weight must be positive".into(),
            ));
        }
        Ok(Weights {
            spatial: spatial / sum,
            textual: textual / sum,
            temporal: temporal / sum,
        })
    }

    /// Whether the temporal channel is active.
    pub fn uses_temporal(&self) -> bool {
        self.temporal > 0.0
    }
}

impl Default for Weights {
    /// λ = 0.5 — the paper family's default preference parameter.
    fn default() -> Self {
        Weights {
            spatial: 0.5,
            textual: 0.5,
            temporal: 0.0,
        }
    }
}

/// Non-structural query options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOptions {
    /// Channel weights.
    pub weights: Weights,
    /// Answer size (top-k); `k ≥ 1`.
    pub k: usize,
    /// Resource limits; unlimited by default. Exhausting the budget ends
    /// the search early with a [`crate::Completeness::BestEffort`] answer
    /// instead of an error.
    pub budget: crate::budget::ExecutionBudget,
    /// Spatial decay scale in kilometres: the spatial similarity of one
    /// query place is `e^(−d / decay_km)`. The paper writes `e^(−d)`, i.e.
    /// a unit decay scale; exposing it keeps the measure meaningful on any
    /// coordinate scale.
    pub decay_km: f64,
    /// Temporal decay scale in seconds (extension channel).
    pub decay_s: f64,
    /// Textual similarity measure (Jaccard in the paper).
    pub text_measure: TextSimilarity,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            weights: Weights::default(),
            k: 1,
            budget: crate::budget::ExecutionBudget::UNLIMITED,
            decay_km: 1.0,
            decay_s: 1_800.0,
            text_measure: TextSimilarity::Jaccard,
        }
    }
}

/// A validated UOTS query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UotsQuery {
    locations: Vec<NodeId>,
    keywords: KeywordSet,
    times: Vec<f64>,
    options: QueryOptions,
}

impl UotsQuery {
    /// Builds the classic spatial + textual query with default options
    /// (λ = 0.5, k = 1).
    ///
    /// # Errors
    ///
    /// See [`UotsQuery::with_options`].
    pub fn new(locations: Vec<NodeId>, keywords: KeywordSet) -> Result<Self, CoreError> {
        Self::with_options(locations, keywords, Vec::new(), QueryOptions::default())
    }

    /// Builds a query with explicit options and optional preferred
    /// timestamps (`times` — seconds of day; required non-empty exactly
    /// when the temporal weight is positive).
    ///
    /// Locations are deduplicated, preserving first-occurrence order.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadParameter`] when: no locations, more than
    /// [`MAX_LOCATIONS`] distinct locations, `k == 0`, a non-positive decay
    /// scale, temporal weight without timestamps (or vice versa), or an
    /// out-of-range timestamp.
    pub fn with_options(
        locations: Vec<NodeId>,
        keywords: KeywordSet,
        times: Vec<f64>,
        options: QueryOptions,
    ) -> Result<Self, CoreError> {
        let mut dedup = Vec::with_capacity(locations.len());
        for v in locations {
            if !dedup.contains(&v) {
                dedup.push(v);
            }
        }
        if dedup.is_empty() {
            return Err(CoreError::BadParameter(
                "a query needs at least one intended place".into(),
            ));
        }
        if dedup.len() > MAX_LOCATIONS {
            return Err(CoreError::BadParameter(format!(
                "at most {MAX_LOCATIONS} query locations are supported, got {}",
                dedup.len()
            )));
        }
        if options.k == 0 {
            return Err(CoreError::BadParameter("k must be at least 1".into()));
        }
        if options.decay_km <= 0.0
            || options.decay_km.is_nan()
            || options.decay_s <= 0.0
            || options.decay_s.is_nan()
        {
            return Err(CoreError::BadParameter(
                "decay scales must be positive".into(),
            ));
        }
        if options.weights.uses_temporal() && times.is_empty() {
            return Err(CoreError::BadParameter(
                "temporal weight requires preferred timestamps".into(),
            ));
        }
        if !options.weights.uses_temporal() && !times.is_empty() {
            return Err(CoreError::BadParameter(
                "timestamps given but the temporal weight is zero".into(),
            ));
        }
        if times.len() > MAX_LOCATIONS {
            return Err(CoreError::BadParameter(format!(
                "at most {MAX_LOCATIONS} preferred timestamps are supported"
            )));
        }
        for &t in &times {
            if !t.is_finite() || !(0.0..=DAY_SECONDS).contains(&t) {
                return Err(CoreError::BadParameter(format!(
                    "timestamp {t} outside [0, 86400]"
                )));
            }
        }
        Ok(UotsQuery {
            locations: dedup,
            keywords,
            times,
            options,
        })
    }

    /// The intended places (deduplicated, in given order).
    #[inline]
    pub fn locations(&self) -> &[NodeId] {
        &self.locations
    }

    /// Compact one-line description for telemetry (trace-exemplar and
    /// journal labels): location count, keyword count, and k.
    pub fn summary(&self) -> String {
        format!(
            "locs={} keywords={} k={}",
            self.locations.len(),
            self.keywords.len(),
            self.options.k
        )
    }

    /// The preference keywords.
    #[inline]
    pub fn keywords(&self) -> &KeywordSet {
        &self.keywords
    }

    /// The preferred timestamps (empty unless the temporal channel is on).
    #[inline]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The query options.
    #[inline]
    pub fn options(&self) -> &QueryOptions {
        &self.options
    }

    /// Number of intended places (`m`).
    #[inline]
    pub fn num_locations(&self) -> usize {
        self.locations.len()
    }

    /// Returns a copy with different options (revalidated).
    ///
    /// # Errors
    ///
    /// Same as [`UotsQuery::with_options`].
    pub fn reoptioned(&self, options: QueryOptions) -> Result<Self, CoreError> {
        Self::with_options(
            self.locations.clone(),
            self.keywords.clone(),
            self.times.clone(),
            options,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uots_text::KeywordId;

    fn kws(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    #[test]
    fn lambda_weights() {
        let w = Weights::lambda(0.3).unwrap();
        assert!((w.spatial - 0.3).abs() < 1e-12);
        assert!((w.textual - 0.7).abs() < 1e-12);
        assert_eq!(w.temporal, 0.0);
        assert!(Weights::lambda(-0.1).is_err());
        assert!(Weights::lambda(1.1).is_err());
        assert!(Weights::lambda(f64::NAN).is_err());
    }

    #[test]
    fn weights_normalize() {
        let w = Weights::new(2.0, 1.0, 1.0).unwrap();
        assert!((w.spatial - 0.5).abs() < 1e-12);
        assert!((w.textual - 0.25).abs() < 1e-12);
        assert!((w.temporal - 0.25).abs() < 1e-12);
        assert!(w.uses_temporal());
        assert!(Weights::new(0.0, 0.0, 0.0).is_err());
        assert!(Weights::new(-1.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn query_dedups_locations_in_order() {
        let q = UotsQuery::new(
            vec![NodeId(3), NodeId(1), NodeId(3), NodeId(2), NodeId(1)],
            kws(&[]),
        )
        .unwrap();
        assert_eq!(q.locations(), &[NodeId(3), NodeId(1), NodeId(2)]);
        assert_eq!(q.num_locations(), 3);
    }

    #[test]
    fn query_validation() {
        assert!(UotsQuery::new(vec![], kws(&[])).is_err());

        let too_many: Vec<NodeId> = (0..65).map(NodeId).collect();
        assert!(UotsQuery::new(too_many, kws(&[])).is_err());

        let opts = QueryOptions {
            k: 0,
            ..Default::default()
        };
        assert!(UotsQuery::with_options(vec![NodeId(0)], kws(&[]), vec![], opts).is_err());

        let opts = QueryOptions {
            decay_km: 0.0,
            ..Default::default()
        };
        assert!(UotsQuery::with_options(vec![NodeId(0)], kws(&[]), vec![], opts).is_err());
    }

    #[test]
    fn temporal_consistency_is_enforced() {
        let opts = QueryOptions {
            weights: Weights::new(1.0, 1.0, 1.0).unwrap(),
            ..Default::default()
        };
        // temporal weight without timestamps
        assert!(UotsQuery::with_options(vec![NodeId(0)], kws(&[]), vec![], opts.clone()).is_err());
        // with timestamps it works
        let q = UotsQuery::with_options(vec![NodeId(0)], kws(&[]), vec![30_000.0], opts).unwrap();
        assert_eq!(q.times(), &[30_000.0]);

        // timestamps without temporal weight
        let opts = QueryOptions::default();
        assert!(UotsQuery::with_options(vec![NodeId(0)], kws(&[]), vec![1.0], opts).is_err());

        // out-of-range timestamp
        let opts = QueryOptions {
            weights: Weights::new(1.0, 0.0, 1.0).unwrap(),
            ..Default::default()
        };
        assert!(UotsQuery::with_options(vec![NodeId(0)], kws(&[]), vec![1e9], opts).is_err());
    }

    #[test]
    fn reoptioned_revalidates() {
        let q = UotsQuery::new(vec![NodeId(0)], kws(&[1])).unwrap();
        let opts = QueryOptions {
            k: 5,
            ..Default::default()
        };
        let q5 = q.reoptioned(opts).unwrap();
        assert_eq!(q5.options().k, 5);
        let bad = QueryOptions {
            k: 0,
            ..Default::default()
        };
        assert!(q.reoptioned(bad).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let q = UotsQuery::new(vec![NodeId(1), NodeId(2)], kws(&[3, 4])).unwrap();
        let json = serde_json::to_string(&q).unwrap();
        let back: UotsQuery = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }
}
