//! # uots-core
//!
//! The UOTS query engine: a from-scratch reproduction of **"User oriented
//! trajectory search for trip recommendation"** (Shang, Ding, Yuan, Xie,
//! Zheng, Kalnis — EDBT 2012).
//!
//! Given a road-network trajectory database where trajectories carry textual
//! attributes, a [`UotsQuery`] supplies a set of intended places and a set
//! of preference keywords (plus, as extensions, preferred timestamps and
//! top-k answer sizes); the engine returns the trajectories maximizing the
//! linear combination of spatial, textual (and optionally temporal)
//! similarity — see [`similarity`] for the exact model.
//!
//! ## Quick start
//!
//! ```
//! use uots_core::{algorithms::{Algorithm, Expansion}, Database, UotsQuery};
//! use uots_datagen::{workload, Dataset, DatasetConfig};
//!
//! let ds = Dataset::build(&DatasetConfig::small(50, 42)).unwrap();
//! let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
//!     .with_keyword_index(&ds.keyword_index);
//! let spec = &workload::generate(&ds, &workload::WorkloadConfig::default())[0];
//! let query = UotsQuery::new(spec.locations.clone(), spec.keywords.clone()).unwrap();
//! let result = Expansion::default().run(&db, &query).unwrap();
//! assert!(result.best().is_some());
//! ```
//!
//! ## Algorithms
//!
//! * [`algorithms::Expansion`] — the paper's concurrent expansion search
//!   with per-trajectory similarity upper bounds and the heuristic
//!   query-source scheduling strategy ([`Scheduler`]);
//! * [`algorithms::IknnBaseline`] — lockstep-round candidate generation
//!   (BCT/IKNN adapted to networks), the coarse-bound baseline;
//! * [`algorithms::TextFirst`] — textual filter-and-refine baseline;
//! * [`algorithms::BruteForce`] — the exact oracle.
//!
//! All algorithms return identical rankings; the evaluation compares their
//! cost ([`SearchMetrics`]). Batches of queries run in parallel via
//! [`parallel::run_batch`].
//!
//! ## Anytime execution
//!
//! Every algorithm honors an [`ExecutionBudget`] (wall clock, visited
//! trajectories, settled vertices — carried in [`QueryOptions`]) and a
//! [`CancellationToken`]/deadline pair ([`RunControl`], passed to
//! [`algorithms::Algorithm::run_with`]). Interrupted runs are not errors:
//! they return the current top-k tagged [`Completeness::BestEffort`] with
//! a certified `bound_gap` — see [`budget`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod budget;
pub mod csr;
mod db;
pub mod distcache;
mod engine;
pub mod epoch;
mod error;
pub mod keywords;
mod metrics;
pub mod order;
pub mod parallel;
pub mod planner;
mod query;
mod result;
mod scheduling;
pub mod similarity;
pub mod testing;
mod topk;
pub mod wal;

/// Re-export of the storage seam ([`uots_storage`]): backend traits,
/// `StdFs`, the `FaultFs` injector, the error taxonomy and retry policy.
pub use uots_storage as storage;

pub use budget::{CancellationToken, Completeness, ExecutionBudget, RunControl};
pub use csr::{CsrError, CsrGraph, MsSettled, MultiSourceExpansion};
pub use db::{Database, LayoutTables};
pub use distcache::{
    no_cache_env, CacheStats, CachedSource, DistanceCache, SearchContext, SourcePrefix,
    DEFAULT_CACHE_CAPACITY,
};
pub use engine::{
    expansion_search, expansion_search_ctx, expansion_search_recorded, expansion_search_sampled,
    expansion_search_with, expansion_search_with_cache, threshold_search, threshold_search_ctx,
    threshold_search_with,
};
pub use epoch::{EpochManager, EpochSnapshot, EpochStats, Mutation};
pub use error::CoreError;
pub use keywords::{KeywordBlocks, PreparedQuery, TextualEval, MAX_BITSET_BITS};
pub use metrics::SearchMetrics;
pub use parallel::{BatchOptions, BatchPolicy};
pub use planner::{AlgorithmKind, PlanDecision, Planner, QueryStats};
pub use query::{QueryOptions, UotsQuery, Weights, MAX_LOCATIONS};
pub use result::{Match, QueryResult};
pub use scheduling::Scheduler;
pub use topk::TopK;
pub use wal::{FsyncPolicy, WalConfig, WalError, WalReplay, WalWriter};
