//! The read-only database handle the algorithms run against.

use crate::csr::CsrGraph;
use crate::keywords::KeywordBlocks;
use crate::{CoreError, UotsQuery};
use std::sync::Arc;
use uots_index::{KeywordInvertedIndex, TimestampIndex, VertexInvertedIndex};
use uots_network::RoadNetwork;
use uots_trajectory::{LiveSet, TrajectoryId, TrajectoryStore};

/// Cache-friendly data layouts for the two hot paths, built once per
/// dataset (or per epoch snapshot) and attached to a [`Database`] via
/// [`Database::with_layout`].
///
/// With a layout attached the algorithms route textual similarity through
/// the dense [`KeywordBlocks`] table (bitset popcounts / galloping) and
/// full-drain spatial evaluation through [`CsrGraph`] multi-source
/// expansion; results are bit-identical to the legacy per-candidate
/// paths — the widened differential harness proves it per release.
#[derive(Debug, Clone)]
pub struct LayoutTables {
    /// Dense per-trajectory keyword table.
    pub keywords: KeywordBlocks,
    /// Flat CSR adjacency mirroring the road network. `Arc`'d so epoch
    /// snapshots over the same immutable network can share one copy.
    pub csr: Arc<CsrGraph>,
}

impl LayoutTables {
    /// Builds both tables from scratch.
    pub fn build(network: &RoadNetwork, store: &TrajectoryStore, vocab_len: usize) -> Self {
        LayoutTables {
            keywords: KeywordBlocks::build(store, vocab_len),
            csr: Arc::new(CsrGraph::from_network(network)),
        }
    }

    /// Builds the keyword table for a new store revision while sharing an
    /// existing CSR adjacency (the network is immutable across epochs).
    pub fn build_shared(csr: Arc<CsrGraph>, store: &TrajectoryStore, vocab_len: usize) -> Self {
        LayoutTables {
            keywords: KeywordBlocks::build(store, vocab_len),
            csr,
        }
    }
}

/// Borrowed view of everything a UOTS algorithm needs: the network, the
/// trajectories and the indexes. Construction is cheap (all references), so
/// one database can serve many concurrent queries.
#[derive(Clone, Copy)]
pub struct Database<'a> {
    /// The road network.
    pub network: &'a RoadNetwork,
    /// The trajectories.
    pub store: &'a TrajectoryStore,
    /// vertex → trajectories (required: the expansion search probes it on
    /// every settled vertex).
    pub vertex_index: &'a VertexInvertedIndex<TrajectoryId>,
    /// keyword → trajectories (required by the textual-first baseline).
    pub keyword_index: Option<&'a KeywordInvertedIndex<TrajectoryId>>,
    /// sample-timestamp index (required by the temporal extension).
    pub timestamp_index: Option<&'a TimestampIndex<TrajectoryId>>,
    /// Liveness mask for epoch-based serving: when present, retired
    /// trajectories stay in the (append-only, stably-numbered) store but
    /// are invisible to every algorithm. `None` means all ids are live —
    /// the frozen-dataset behavior.
    pub live: Option<&'a LiveSet>,
    /// Optional cache-friendly layouts ([`LayoutTables`]): when present,
    /// textual similarity runs on the dense keyword table and full-drain
    /// spatial evaluation on the CSR adjacency, bit-identically to the
    /// legacy paths. `None` selects the legacy layout.
    pub layout: Option<&'a LayoutTables>,
}

impl<'a> Database<'a> {
    /// Creates a database from the mandatory parts.
    ///
    /// # Panics
    ///
    /// Panics when the vertex index does not cover the network.
    pub fn new(
        network: &'a RoadNetwork,
        store: &'a TrajectoryStore,
        vertex_index: &'a VertexInvertedIndex<TrajectoryId>,
    ) -> Self {
        assert_eq!(
            vertex_index.num_vertices(),
            network.num_nodes(),
            "vertex index does not match the network"
        );
        Database {
            network,
            store,
            vertex_index,
            keyword_index: None,
            timestamp_index: None,
            live: None,
            layout: None,
        }
    }

    /// Attaches the cache-friendly layout tables (selects the CSR/bitset
    /// hot paths).
    ///
    /// # Panics
    ///
    /// Panics when the tables do not cover the store/network (they were
    /// built for a different revision).
    pub fn with_layout(mut self, layout: &'a LayoutTables) -> Self {
        assert_eq!(
            layout.keywords.rows(),
            self.store.len(),
            "keyword table does not cover the store"
        );
        assert_eq!(
            layout.csr.num_nodes(),
            self.network.num_nodes(),
            "CSR adjacency does not match the network"
        );
        self.layout = Some(layout);
        self
    }

    /// Attaches the keyword inverted index (enables the textual-first
    /// baseline).
    pub fn with_keyword_index(mut self, idx: &'a KeywordInvertedIndex<TrajectoryId>) -> Self {
        self.keyword_index = Some(idx);
        self
    }

    /// Attaches the timestamp index (enables the temporal channel).
    pub fn with_timestamp_index(mut self, idx: &'a TimestampIndex<TrajectoryId>) -> Self {
        self.timestamp_index = Some(idx);
        self
    }

    /// Attaches a liveness mask. The attached indexes must have been built
    /// over the live subset (see `build_*_index_live`), or index-discovered
    /// candidates could include retired trajectories; the mask only guards
    /// the direct store sweeps the algorithms fall back to.
    ///
    /// # Panics
    ///
    /// Panics when the mask does not cover the store.
    pub fn with_live_set(mut self, live: &'a LiveSet) -> Self {
        assert_eq!(
            live.len(),
            self.store.len(),
            "live set does not cover the store"
        );
        self.live = Some(live);
        self
    }

    /// Whether `id` is visible to queries (always true without a mask).
    #[inline]
    pub fn is_live(&self, id: TrajectoryId) -> bool {
        self.live.is_none_or(|l| l.is_live(id))
    }

    /// Number of visible trajectories.
    pub fn num_live(&self) -> usize {
        self.live
            .map_or(self.store.len(), uots_trajectory::LiveSet::num_live)
    }

    /// Validates that `query` can run against this database.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownLocation`] for a location outside the network;
    /// [`CoreError::MissingIndex`] when the temporal channel is requested
    /// without a timestamp index.
    pub fn validate(&self, query: &UotsQuery) -> Result<(), CoreError> {
        for &v in query.locations() {
            if !self.network.contains_node(v) {
                return Err(CoreError::UnknownLocation(v));
            }
        }
        if query.options().weights.uses_temporal() && self.timestamp_index.is_none() {
            return Err(CoreError::MissingIndex("timestamp"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uots_network::generators::{grid_city, GridCityConfig};
    use uots_network::NodeId;
    use uots_text::KeywordSet;
    use uots_trajectory::{Sample, Trajectory};

    fn fixture() -> (RoadNetwork, TrajectoryStore) {
        let net = grid_city(&GridCityConfig::tiny(3)).unwrap();
        let mut store = TrajectoryStore::new();
        store.push(
            Trajectory::new(
                vec![
                    Sample {
                        node: NodeId(0),
                        time: 0.0,
                    },
                    Sample {
                        node: NodeId(1),
                        time: 60.0,
                    },
                ],
                KeywordSet::empty(),
            )
            .unwrap(),
        );
        (net, store)
    }

    #[test]
    fn validate_checks_locations() {
        let (net, store) = fixture();
        let vidx = store.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &store, &vidx);
        let ok = UotsQuery::new(vec![NodeId(0)], KeywordSet::empty()).unwrap();
        assert!(db.validate(&ok).is_ok());
        let bad = UotsQuery::new(vec![NodeId(99)], KeywordSet::empty()).unwrap();
        assert!(matches!(
            db.validate(&bad),
            Err(CoreError::UnknownLocation(NodeId(99)))
        ));
    }

    #[test]
    fn temporal_channel_requires_timestamp_index() {
        let (net, store) = fixture();
        let vidx = store.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &store, &vidx);
        let opts = crate::QueryOptions {
            weights: crate::Weights::new(1.0, 0.0, 1.0).unwrap(),
            ..Default::default()
        };
        let q = UotsQuery::with_options(vec![NodeId(0)], KeywordSet::empty(), vec![100.0], opts)
            .unwrap();
        assert!(matches!(db.validate(&q), Err(CoreError::MissingIndex(_))));

        let tidx = store.build_timestamp_index();
        let db = db.with_timestamp_index(&tidx);
        assert!(db.validate(&q).is_ok());
    }

    #[test]
    #[should_panic(expected = "vertex index does not match")]
    fn mismatched_vertex_index_panics() {
        let (net, store) = fixture();
        let vidx = store.build_vertex_index(net.num_nodes() + 5);
        let _ = Database::new(&net, &store, &vidx);
    }
}
