//! Fault-injection wrappers for robustness testing.
//!
//! These adapters wrap any [`Algorithm`] to simulate the two failure modes
//! the batch executor must survive: a worker that **panics** mid-batch
//! ([`FaultyAlgorithm`]) and a query that is **too slow** for its deadline
//! but honors cooperative cancellation ([`SlowAlgorithm`]). They live in
//! the library (not `#[cfg(test)]`) so integration tests, benches, and
//! downstream crates can exercise the same faults.

use crate::algorithms::Algorithm;
use crate::budget::{Gate, RunControl};
use crate::distcache::SearchContext;
use crate::{CoreError, Database, QueryResult, UotsQuery};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use uots_obs::Recorder;

/// Wraps an algorithm and panics on the `panic_on`-th call (0-based),
/// counted across threads; every other call delegates untouched. Use it to
/// verify that one poisoned query cannot take down a batch.
pub struct FaultyAlgorithm<A> {
    inner: A,
    panic_on: usize,
    calls: AtomicUsize,
    message: &'static str,
}

impl<A> FaultyAlgorithm<A> {
    /// Panics (with `message`) on call number `panic_on`, 0-based.
    pub fn new(inner: A, panic_on: usize, message: &'static str) -> Self {
        FaultyAlgorithm {
            inner,
            panic_on,
            calls: AtomicUsize::new(0),
            message,
        }
    }

    /// Total calls observed so far.
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }
}

impl<A: Algorithm> Algorithm for FaultyAlgorithm<A> {
    fn run_ctx(
        &self,
        db: &Database<'_>,
        query: &UotsQuery,
        ctl: &RunControl,
        rec: &mut Recorder,
        ctx: &SearchContext,
    ) -> Result<QueryResult, CoreError> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        if call == self.panic_on {
            panic!("{}", self.message);
        }
        self.inner.run_ctx(db, query, ctl, rec, ctx)
    }

    fn name(&self) -> &'static str {
        "faulty"
    }
}

/// Wraps an algorithm and stalls for `delay` before delegating, polling the
/// gate while stalling: a deadline or cancellation arriving during the
/// stall yields the empty best-effort answer, exactly like a real query
/// that could not finish in time.
pub struct SlowAlgorithm<A> {
    inner: A,
    delay: Duration,
}

impl<A> SlowAlgorithm<A> {
    /// Stalls `delay` per query before running `inner`.
    pub fn new(inner: A, delay: Duration) -> Self {
        SlowAlgorithm { inner, delay }
    }
}

impl<A: Algorithm> Algorithm for SlowAlgorithm<A> {
    fn run_ctx(
        &self,
        db: &Database<'_>,
        query: &UotsQuery,
        ctl: &RunControl,
        rec: &mut Recorder,
        ctx: &SearchContext,
    ) -> Result<QueryResult, CoreError> {
        let mut gate = Gate::new(&query.options().budget, ctl);
        let start = Instant::now();
        while start.elapsed() < self.delay {
            if gate.interrupted_now() {
                return Ok(QueryResult::interrupted_empty());
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        self.inner.run_ctx(db, query, ctl, rec, ctx)
    }

    fn name(&self) -> &'static str {
        "slow"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::BruteForce;
    use crate::budget::CancellationToken;
    use uots_network::generators::{grid_city, GridCityConfig};
    use uots_network::NodeId;
    use uots_text::KeywordSet;
    use uots_trajectory::{Sample, Trajectory, TrajectoryStore};

    fn tiny() -> (uots_network::RoadNetwork, TrajectoryStore) {
        let net = grid_city(&GridCityConfig::tiny(4)).unwrap();
        let mut s = TrajectoryStore::new();
        s.push(
            Trajectory::new(
                vec![Sample {
                    node: NodeId(0),
                    time: 100.0,
                }],
                KeywordSet::empty(),
            )
            .unwrap(),
        );
        (net, s)
    }

    #[test]
    fn faulty_panics_only_on_the_configured_call() {
        let (net, s) = tiny();
        let vidx = s.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &s, &vidx);
        let q = UotsQuery::new(vec![NodeId(0)], KeywordSet::empty()).unwrap();
        let algo = FaultyAlgorithm::new(BruteForce, 1, "injected");
        assert!(algo.run(&db, &q).is_ok()); // call 0
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = algo.run(&db, &q); // call 1: boom
        }));
        assert!(caught.is_err());
        assert!(algo.run(&db, &q).is_ok()); // call 2
        assert_eq!(algo.calls(), 3);
    }

    #[test]
    fn slow_algorithm_yields_best_effort_on_cancellation() {
        let (net, s) = tiny();
        let vidx = s.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &s, &vidx);
        let q = UotsQuery::new(vec![NodeId(0)], KeywordSet::empty()).unwrap();
        let algo = SlowAlgorithm::new(BruteForce, Duration::from_secs(3600));
        let token = CancellationToken::new();
        token.cancel();
        let r = algo
            .run_with(&db, &q, &RunControl::with_token(token))
            .unwrap();
        assert!(!r.completeness.is_exact());
        assert!(r.matches.is_empty());
    }

    #[test]
    fn slow_algorithm_eventually_delegates() {
        let (net, s) = tiny();
        let vidx = s.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &s, &vidx);
        let q = UotsQuery::new(vec![NodeId(0)], KeywordSet::empty()).unwrap();
        let algo = SlowAlgorithm::new(BruteForce, Duration::from_millis(1));
        let r = algo.run(&db, &q).unwrap();
        assert!(r.completeness.is_exact());
        assert_eq!(r.matches.len(), 1);
    }
}
