//! Fault-injection wrappers for robustness testing.
//!
//! These adapters wrap any [`Algorithm`] to simulate the two failure modes
//! the batch executor must survive: a worker that **panics** mid-batch
//! ([`FaultyAlgorithm`]) and a query that is **too slow** for its deadline
//! but honors cooperative cancellation ([`SlowAlgorithm`]). The
//! [`corrupt`] submodule injects the three on-disk failure modes the WAL
//! recovery path must survive: torn writes, truncated segments, and bit
//! flips. They live in the library (not `#[cfg(test)]`) so integration
//! tests, benches, and downstream crates can exercise the same faults.

use crate::algorithms::Algorithm;
use crate::budget::{Gate, RunControl};
use crate::distcache::SearchContext;
use crate::{CoreError, Database, QueryResult, UotsQuery};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use uots_obs::Recorder;

/// On-disk corruption injectors mirroring how storage actually fails:
/// torn writes (a crash mid-`write(2)` leaves a prefix), truncation (lost
/// tail after metadata rollback), bit rot (flipped bits under a valid
/// length). All operate in place on a real file, so tests exercise the
/// same read path production recovery uses.
pub mod corrupt {
    use std::fs;
    use std::io;
    use std::path::Path;

    /// Truncates `path` to its first `keep` bytes — a torn write or lost
    /// tail. `keep` past the current length is a no-op (never extends).
    pub fn truncate_file(path: impl AsRef<Path>, keep: u64) -> io::Result<()> {
        let f = fs::OpenOptions::new().write(true).open(path)?;
        let len = f.metadata()?.len();
        if keep < len {
            f.set_len(keep)?;
        }
        Ok(())
    }

    /// Flips bit `bit` (0–7) of byte `byte_offset` in `path`.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when the offset is past the end of the file or `bit`
    /// is out of range.
    pub fn flip_bit(path: impl AsRef<Path>, byte_offset: u64, bit: u8) -> io::Result<()> {
        if bit > 7 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "bit > 7"));
        }
        let path = path.as_ref();
        let mut raw = fs::read(path)?;
        let i = usize::try_from(byte_offset)
            .ok()
            .filter(|&i| i < raw.len())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "offset past end of file")
            })?;
        raw[i] ^= 1 << bit;
        fs::write(path, &raw)
    }

    /// Appends `junk` to the end of `path` — trailing garbage after a
    /// valid payload.
    pub fn append_garbage(path: impl AsRef<Path>, junk: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = fs::OpenOptions::new().append(true).open(path)?;
        f.write_all(junk)
    }
}

/// Wraps an algorithm and panics on the `panic_on`-th call (0-based),
/// counted across threads; every other call delegates untouched. Use it to
/// verify that one poisoned query cannot take down a batch.
pub struct FaultyAlgorithm<A> {
    inner: A,
    panic_on: usize,
    calls: AtomicUsize,
    message: &'static str,
}

impl<A> FaultyAlgorithm<A> {
    /// Panics (with `message`) on call number `panic_on`, 0-based.
    pub fn new(inner: A, panic_on: usize, message: &'static str) -> Self {
        FaultyAlgorithm {
            inner,
            panic_on,
            calls: AtomicUsize::new(0),
            message,
        }
    }

    /// Total calls observed so far.
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }
}

impl<A: Algorithm> Algorithm for FaultyAlgorithm<A> {
    fn run_ctx(
        &self,
        db: &Database<'_>,
        query: &UotsQuery,
        ctl: &RunControl,
        rec: &mut Recorder,
        ctx: &SearchContext,
    ) -> Result<QueryResult, CoreError> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        if call == self.panic_on {
            panic!("{}", self.message);
        }
        self.inner.run_ctx(db, query, ctl, rec, ctx)
    }

    fn name(&self) -> &'static str {
        "faulty"
    }
}

/// Wraps an algorithm and stalls for `delay` before delegating, polling the
/// gate while stalling: a deadline or cancellation arriving during the
/// stall yields the empty best-effort answer, exactly like a real query
/// that could not finish in time.
pub struct SlowAlgorithm<A> {
    inner: A,
    delay: Duration,
}

impl<A> SlowAlgorithm<A> {
    /// Stalls `delay` per query before running `inner`.
    pub fn new(inner: A, delay: Duration) -> Self {
        SlowAlgorithm { inner, delay }
    }
}

impl<A: Algorithm> Algorithm for SlowAlgorithm<A> {
    fn run_ctx(
        &self,
        db: &Database<'_>,
        query: &UotsQuery,
        ctl: &RunControl,
        rec: &mut Recorder,
        ctx: &SearchContext,
    ) -> Result<QueryResult, CoreError> {
        let mut gate = Gate::new(&query.options().budget, ctl);
        let start = Instant::now();
        while start.elapsed() < self.delay {
            if gate.interrupted_now() {
                return Ok(QueryResult::interrupted_empty());
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        self.inner.run_ctx(db, query, ctl, rec, ctx)
    }

    fn name(&self) -> &'static str {
        "slow"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::BruteForce;
    use crate::budget::CancellationToken;
    use uots_network::generators::{grid_city, GridCityConfig};
    use uots_network::NodeId;
    use uots_text::KeywordSet;
    use uots_trajectory::{Sample, Trajectory, TrajectoryStore};

    fn tiny() -> (uots_network::RoadNetwork, TrajectoryStore) {
        let net = grid_city(&GridCityConfig::tiny(4)).unwrap();
        let mut s = TrajectoryStore::new();
        s.push(
            Trajectory::new(
                vec![Sample {
                    node: NodeId(0),
                    time: 100.0,
                }],
                KeywordSet::empty(),
            )
            .unwrap(),
        );
        (net, s)
    }

    #[test]
    fn faulty_panics_only_on_the_configured_call() {
        let (net, s) = tiny();
        let vidx = s.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &s, &vidx);
        let q = UotsQuery::new(vec![NodeId(0)], KeywordSet::empty()).unwrap();
        let algo = FaultyAlgorithm::new(BruteForce, 1, "injected");
        assert!(algo.run(&db, &q).is_ok()); // call 0
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = algo.run(&db, &q); // call 1: boom
        }));
        assert!(caught.is_err());
        assert!(algo.run(&db, &q).is_ok()); // call 2
        assert_eq!(algo.calls(), 3);
    }

    #[test]
    fn slow_algorithm_yields_best_effort_on_cancellation() {
        let (net, s) = tiny();
        let vidx = s.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &s, &vidx);
        let q = UotsQuery::new(vec![NodeId(0)], KeywordSet::empty()).unwrap();
        let algo = SlowAlgorithm::new(BruteForce, Duration::from_secs(3600));
        let token = CancellationToken::new();
        token.cancel();
        let r = algo
            .run_with(&db, &q, &RunControl::with_token(token))
            .unwrap();
        assert!(!r.completeness.is_exact());
        assert!(r.matches.is_empty());
    }

    #[test]
    fn corruption_injectors_do_what_they_say() {
        let dir = std::env::temp_dir().join(format!("uots_corrupt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");
        std::fs::write(&path, [0u8; 16]).unwrap();

        corrupt::truncate_file(&path, 10).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 10);
        corrupt::truncate_file(&path, 100).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 10, "never extends");

        corrupt::flip_bit(&path, 3, 7).unwrap();
        assert_eq!(std::fs::read(&path).unwrap()[3], 0x80);
        corrupt::flip_bit(&path, 3, 7).unwrap();
        assert_eq!(std::fs::read(&path).unwrap()[3], 0, "flip is an involution");
        assert!(corrupt::flip_bit(&path, 10, 0).is_err(), "offset == len");
        assert!(corrupt::flip_bit(&path, 0, 8).is_err());

        corrupt::append_garbage(&path, b"junk").unwrap();
        let raw = std::fs::read(&path).unwrap();
        assert_eq!(raw.len(), 14);
        assert_eq!(&raw[10..], b"junk");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn slow_algorithm_eventually_delegates() {
        let (net, s) = tiny();
        let vidx = s.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &s, &vidx);
        let q = UotsQuery::new(vec![NodeId(0)], KeywordSet::empty()).unwrap();
        let algo = SlowAlgorithm::new(BruteForce, Duration::from_millis(1));
        let r = algo.run(&db, &q).unwrap();
        assert!(r.completeness.is_exact());
        assert_eq!(r.matches.len(), 1);
    }
}
