//! Epoch-based live serving: ingest/retire with atomically swapped
//! immutable snapshots.
//!
//! The ROADMAP's north star is a service that ingests trajectories
//! continuously while serving queries. The engine, however, wants frozen
//! CSR indexes — optimal to probe, impossible to update. This module
//! implements the classic resolution, the pattern
//! [`DynamicVertexIndex`] documents: **mutate freely, freeze once per
//! serving epoch**.
//!
//! * [`EpochSnapshot`] — one immutable serving generation: the (append-
//!   only, stably-numbered) [`TrajectoryStore`], a [`LiveSet`] masking
//!   retired trips, and all three inverted indexes built over the live
//!   subset. Queries borrow a [`Database`] from a snapshot `Arc` and are
//!   untouched by later swaps.
//! * [`EpochManager`] — the single-writer ingest path. Mutations batch
//!   into a mutable [`DynamicVertexIndex`] plus the master store/mask;
//!   [`EpochManager::publish`] freezes them into a fresh snapshot and
//!   swaps it in atomically while in-flight readers keep their old `Arc`.
//!
//! ## Interaction with the distance cache
//!
//! The [`crate::DistanceCache`] of a [`SearchContext`] memoizes Dijkstra
//! prefixes keyed **only on the immutable road network** — no trajectory
//! data enters a [`crate::SourcePrefix`]. Every snapshot of one manager
//! shares the *same* `Arc<RoadNetwork>` (publish asserts pointer
//! identity), so a warm cache provably survives epoch swaps; the
//! differential suite exercises warm caches across publishes. All
//! per-epoch derived state (the three indexes, the mask, the stats) lives
//! *inside* the snapshot and drops with its last `Arc` — nothing epoch-
//! tagged can leak into the cross-epoch cache.
//!
//! ## Determinism contract
//!
//! Query results against a snapshot are **bit-identical** to rebuilding a
//! compacted database from the surviving trajectories at that point (ids
//! mapped through the order-preserving compaction of
//! [`LiveSet::compact`]) — the ingest/rebuild differential oracle in the
//! test suite holds this over random interleavings of ingest, retire,
//! publish and query, for all four algorithms, with and without a warm
//! cache, including queries cancelled mid-stream.

use crate::csr::CsrGraph;
use crate::db::LayoutTables;
use crate::distcache::SearchContext;
use crate::Database;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Instant;
use uots_index::{DynamicVertexIndex, KeywordInvertedIndex, TimestampIndex, VertexInvertedIndex};
use uots_network::RoadNetwork;
use uots_obs::{Counter, EventJournal, Gauge, Histogram, MetricsRegistry};
use uots_trajectory::{LiveSet, Trajectory, TrajectoryId, TrajectoryStore};

/// Diagnostic counters describing one published epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochStats {
    /// Epoch number (0 = the seed snapshot).
    pub epoch: u64,
    /// Live trajectories in this snapshot.
    pub live: usize,
    /// Total trajectories in the master store (live + retired).
    pub total: usize,
    /// Vertex-index postings over the live subset.
    pub postings: usize,
    /// Mutations (inserts + retires) batched into this epoch's publish.
    pub mutations: u64,
}

/// One immutable serving generation. Cheap to share (`Arc`), never
/// mutated after construction.
#[derive(Debug)]
pub struct EpochSnapshot {
    epoch: u64,
    network: Arc<RoadNetwork>,
    store: TrajectoryStore,
    live: LiveSet,
    vertex_index: VertexInvertedIndex<TrajectoryId>,
    keyword_index: KeywordInvertedIndex<TrajectoryId>,
    timestamp_index: TimestampIndex<TrajectoryId>,
    /// Cache-friendly hot-path tables: the shared CSR adjacency (one per
    /// manager — the network never changes across epochs) plus the dense
    /// keyword table rebuilt over this epoch's store revision.
    layout: LayoutTables,
    stats: EpochStats,
}

impl EpochSnapshot {
    #[allow(clippy::too_many_arguments)]
    fn build(
        epoch: u64,
        network: Arc<RoadNetwork>,
        csr: Arc<CsrGraph>,
        vocab_len: usize,
        store: TrajectoryStore,
        live: LiveSet,
        vertex_index: VertexInvertedIndex<TrajectoryId>,
        mutations: u64,
    ) -> Self {
        let keyword_index = store.build_keyword_index_live(vocab_len, &live);
        let timestamp_index = store.build_timestamp_index_live(&live);
        let layout = LayoutTables::build_shared(csr, &store, vocab_len);
        let stats = EpochStats {
            epoch,
            live: live.num_live(),
            total: store.len(),
            postings: vertex_index.num_postings(),
            mutations,
        };
        EpochSnapshot {
            epoch,
            network,
            store,
            live,
            vertex_index,
            keyword_index,
            timestamp_index,
            layout,
            stats,
        }
    }

    /// The epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shared road network — identical (`Arc::ptr_eq`) across every
    /// snapshot of one manager; the invariant that keeps the distance
    /// cache valid across swaps.
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.network
    }

    /// The master trajectory store (live and retired trips alike; consult
    /// [`live`](Self::live) or go through [`database`](Self::database)).
    pub fn store(&self) -> &TrajectoryStore {
        &self.store
    }

    /// The liveness mask of this epoch.
    pub fn live(&self) -> &LiveSet {
        &self.live
    }

    /// Snapshot statistics.
    pub fn stats(&self) -> EpochStats {
        self.stats
    }

    /// A query-ready [`Database`] borrowing this snapshot: all three
    /// indexes cover exactly the live subset and the liveness mask guards
    /// the store sweeps.
    pub fn database(&self) -> Database<'_> {
        Database::new(&self.network, &self.store, &self.vertex_index)
            .with_keyword_index(&self.keyword_index)
            .with_timestamp_index(&self.timestamp_index)
            .with_live_set(&self.live)
            .with_layout(&self.layout)
    }

    /// The snapshot's hot-path layout tables (shared CSR + dense keyword
    /// table); exposed for benchmarks and layout-differential tests.
    pub fn layout(&self) -> &LayoutTables {
        &self.layout
    }

    /// Rebuilds a compacted dataset of the surviving trajectories from
    /// scratch — the differential oracle's reference side. Returns the
    /// compacted store together with the old → new id map (order-
    /// preserving, see [`LiveSet::compact`]); indexes must be rebuilt by
    /// the caller over the returned store.
    pub fn rebuild_compacted(&self) -> (TrajectoryStore, Vec<Option<TrajectoryId>>) {
        self.live.compact(&self.store)
    }
}

/// A batched ingest-path mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Append a trajectory (live immediately in the *next* published
    /// epoch).
    Insert(Trajectory),
    /// Retire a trajectory by id (a no-op when already retired).
    Retire(TrajectoryId),
}

struct WriterState {
    store: TrajectoryStore,
    live: LiveSet,
    dynamic: DynamicVertexIndex<TrajectoryId>,
    pending: u64,
    last_publish: Instant,
}

struct EpochMetrics {
    publishes: Counter,
    ingested: Counter,
    retired: Counter,
    current_epoch: Gauge,
    live_trajectories: Gauge,
    pending_mutations: Gauge,
    ingest_throughput: Gauge,
    swap_micros: Histogram,
}

impl EpochMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        EpochMetrics {
            publishes: registry.counter("uots_epoch_publishes_total", "Epoch snapshots published"),
            ingested: registry.counter("uots_epoch_ingested_total", "Trajectories ingested"),
            retired: registry.counter("uots_epoch_retired_total", "Trajectories retired"),
            current_epoch: registry.gauge("uots_epoch_current", "Current serving epoch"),
            live_trajectories: registry.gauge(
                "uots_epoch_live_trajectories",
                "Live trajectories in the serving snapshot",
            ),
            pending_mutations: registry.gauge(
                "uots_epoch_pending_mutations",
                "Mutations batched since the last publish",
            ),
            ingest_throughput: registry.gauge(
                "uots_epoch_ingest_throughput_per_s",
                "Mutations per second absorbed over the last publish interval",
            ),
            swap_micros: registry.histogram(
                "uots_epoch_swap_micros",
                "Snapshot publish latency (build + swap), microseconds",
            ),
        }
    }
}

/// The single-writer epoch manager: owns the swap pointer and the batched
/// mutation state. Readers call [`snapshot`](Self::snapshot) (wait-free in
/// practice: one `RwLock` read + `Arc` clone); one logical writer calls
/// [`ingest`](Self::ingest) / [`retire`](Self::retire) and periodically
/// [`publish`](Self::publish). Writer methods are internally serialized by
/// a mutex, so "single writer" is a throughput recommendation, not a
/// safety requirement.
pub struct EpochManager {
    current: RwLock<Arc<EpochSnapshot>>,
    writer: Mutex<WriterState>,
    network: Arc<RoadNetwork>,
    /// CSR adjacency of `network`, built once and shared (`Arc`) by every
    /// snapshot this manager publishes.
    csr: Arc<CsrGraph>,
    vocab_len: usize,
    metrics: Option<EpochMetrics>,
    journal: Option<EventJournal>,
}

fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl EpochManager {
    /// Seeds a manager with epoch 0 = the given store, everything live.
    /// `vocab_len` sizes the keyword index (as in
    /// [`TrajectoryStore::build_keyword_index`]).
    pub fn new(network: Arc<RoadNetwork>, store: TrajectoryStore, vocab_len: usize) -> Self {
        Self::build(network, store, vocab_len, None)
    }

    /// [`new`](Self::new) plus `uots_epoch_*` metrics registered in
    /// `registry` (epoch counter, live/pending gauges, ingest throughput,
    /// swap latency histogram).
    pub fn with_metrics(
        network: Arc<RoadNetwork>,
        store: TrajectoryStore,
        vocab_len: usize,
        registry: &MetricsRegistry,
    ) -> Self {
        Self::build(
            network,
            store,
            vocab_len,
            Some(EpochMetrics::register(registry)),
        )
    }

    /// Seeds a manager from recovered state: a master store with its
    /// liveness mask (retired slots preserved so ids stay stable) and the
    /// epoch number to resume from. This is the crash-recovery constructor:
    /// checkpoint + WAL replay reconstruct `(store, live)`, and the first
    /// snapshot must serve exactly the durable state. Only live
    /// trajectories enter the vertex index — retired ones stay invisible.
    pub fn from_parts(
        network: Arc<RoadNetwork>,
        store: TrajectoryStore,
        live: LiveSet,
        vocab_len: usize,
        epoch: u64,
    ) -> Self {
        assert_eq!(
            live.len(),
            store.len(),
            "liveness mask must cover the master store"
        );
        Self::build_with(network, store, live, vocab_len, epoch, None)
    }

    /// [`from_parts`](Self::from_parts) plus `uots_epoch_*` metrics.
    pub fn from_parts_with_metrics(
        network: Arc<RoadNetwork>,
        store: TrajectoryStore,
        live: LiveSet,
        vocab_len: usize,
        epoch: u64,
        registry: &MetricsRegistry,
    ) -> Self {
        assert_eq!(
            live.len(),
            store.len(),
            "liveness mask must cover the master store"
        );
        Self::build_with(
            network,
            store,
            live,
            vocab_len,
            epoch,
            Some(EpochMetrics::register(registry)),
        )
    }

    fn build(
        network: Arc<RoadNetwork>,
        store: TrajectoryStore,
        vocab_len: usize,
        metrics: Option<EpochMetrics>,
    ) -> Self {
        let live = LiveSet::all_live(store.len());
        Self::build_with(network, store, live, vocab_len, 0, metrics)
    }

    fn build_with(
        network: Arc<RoadNetwork>,
        store: TrajectoryStore,
        live: LiveSet,
        vocab_len: usize,
        epoch: u64,
        metrics: Option<EpochMetrics>,
    ) -> Self {
        let mut dynamic = DynamicVertexIndex::new(network.num_nodes());
        for (id, t) in store.iter() {
            if live.is_live(id) {
                for v in t.nodes() {
                    dynamic.insert(v, id);
                }
            }
        }
        let csr = Arc::new(CsrGraph::from_network(&network));
        let seed = EpochSnapshot::build(
            epoch,
            Arc::clone(&network),
            Arc::clone(&csr),
            vocab_len,
            store.clone(),
            live.clone(),
            dynamic.freeze(),
            0,
        );
        if let Some(m) = &metrics {
            m.current_epoch.set(epoch as i64);
            m.live_trajectories.set(seed.stats.live as i64);
            m.pending_mutations.set(0);
        }
        EpochManager {
            current: RwLock::new(Arc::new(seed)),
            writer: Mutex::new(WriterState {
                store,
                live,
                dynamic,
                pending: 0,
                last_publish: Instant::now(),
            }),
            network,
            csr,
            vocab_len,
            metrics,
            journal: None,
        }
    }

    /// Attaches an operational [`EventJournal`]; every snapshot swap is
    /// recorded there with its epoch, batch size, and swap latency.
    pub fn set_journal(&mut self, journal: EventJournal) {
        self.journal = Some(journal);
    }

    /// The current serving snapshot. In-flight queries keep whatever `Arc`
    /// they grabbed; a concurrent publish never invalidates it.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// The shared road network (the cache key space).
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.network
    }

    /// Mutations batched since the last publish.
    pub fn pending(&self) -> u64 {
        lock_ok(&self.writer).pending
    }

    /// Appends a trajectory to the ingest batch and returns its (stable)
    /// id. Invisible to queries until the next [`publish`](Self::publish).
    pub fn ingest(&self, t: Trajectory) -> TrajectoryId {
        let mut w = lock_ok(&self.writer);
        let id = w.store.push(t);
        let new_len = w.store.len();
        w.live.grow_to(new_len);
        let nodes: Vec<_> = w.store.get(id).nodes().collect();
        for v in nodes {
            w.dynamic.insert(v, id);
        }
        w.pending += 1;
        if let Some(m) = &self.metrics {
            m.ingested.inc();
            m.pending_mutations.set(w.pending as i64);
        }
        id
    }

    /// Marks `id` retired in the ingest batch; returns whether it was
    /// live. Still visible to queries until the next publish.
    ///
    /// # Panics
    ///
    /// Panics for an id the master store has never issued.
    pub fn retire(&self, id: TrajectoryId) -> bool {
        let mut w = lock_ok(&self.writer);
        assert!(id.index() < w.store.len(), "retire of unknown id {id}");
        let was_live = w.live.retire(id);
        if was_live {
            let nodes: Vec<_> = w.store.get(id).nodes().collect();
            for v in nodes {
                w.dynamic.remove(v, id);
            }
            w.pending += 1;
            if let Some(m) = &self.metrics {
                m.retired.inc();
                m.pending_mutations.set(w.pending as i64);
            }
        }
        was_live
    }

    /// Applies a batch of mutations in order. Inserted ids are returned in
    /// the order their `Insert`s appeared.
    pub fn apply(&self, mutations: impl IntoIterator<Item = Mutation>) -> Vec<TrajectoryId> {
        let mut inserted = Vec::new();
        for m in mutations {
            match m {
                Mutation::Insert(t) => inserted.push(self.ingest(t)),
                Mutation::Retire(id) => {
                    self.retire(id);
                }
            }
        }
        inserted
    }

    /// Freezes the batched mutations into a fresh immutable snapshot and
    /// swaps it in. In-flight readers keep the previous snapshot; new
    /// [`snapshot`](Self::snapshot) calls observe the new epoch. The write
    /// lock is held only for the pointer swap — index building happens
    /// under the writer mutex, outside any reader-facing lock.
    ///
    /// Publishing with an empty batch is a valid (and cheap) no-op epoch
    /// bump; callers typically gate on [`pending`](Self::pending).
    pub fn publish(&self) -> Arc<EpochSnapshot> {
        let mut w = lock_ok(&self.writer);
        let started = Instant::now();
        let epoch = {
            let cur = self.current.read().unwrap_or_else(|e| e.into_inner());
            cur.epoch + 1
        };
        let snapshot = Arc::new(EpochSnapshot::build(
            epoch,
            Arc::clone(&self.network),
            Arc::clone(&self.csr),
            self.vocab_len,
            w.store.clone(),
            w.live.clone(),
            w.dynamic.freeze(),
            w.pending,
        ));
        let mutations = w.pending;
        let interval = w.last_publish.elapsed();
        w.pending = 0;
        w.last_publish = Instant::now();
        {
            let mut cur = self.current.write().unwrap_or_else(|e| e.into_inner());
            // the invariant the distance cache's epoch survival rests on:
            // every snapshot serves the *same* road network object
            assert!(
                Arc::ptr_eq(&cur.network, &snapshot.network),
                "epoch swap must not change the road network"
            );
            *cur = Arc::clone(&snapshot);
        }
        if let Some(m) = &self.metrics {
            m.publishes.inc();
            m.current_epoch.set(epoch as i64);
            m.live_trajectories.set(snapshot.stats.live as i64);
            m.pending_mutations.set(0);
            m.swap_micros.record(started.elapsed().as_micros() as u64);
            let secs = interval.as_secs_f64();
            if secs > 0.0 {
                m.ingest_throughput.set((mutations as f64 / secs) as i64);
            }
        }
        if let Some(j) = &self.journal {
            j.info(
                "epoch",
                "snapshot_published",
                &[
                    ("epoch", epoch.to_string()),
                    ("mutations", mutations.to_string()),
                    ("live", snapshot.stats.live.to_string()),
                    ("swap_micros", started.elapsed().as_micros().to_string()),
                ],
            );
        }
        snapshot
    }

    /// Asserts that `ctx`'s distance cache may be shared across this
    /// manager's epochs: the cache is keyed on source vertices of the road
    /// network, which publish never replaces. Debug aid for callers wiring
    /// their own contexts; always true for caches used only with this
    /// manager's snapshots.
    pub fn assert_cache_compatible(&self, _ctx: &SearchContext) {
        // The compile-time shape of `SourcePrefix` (source vertex, settled
        // distances, frontier — no trajectory ids) plus the publish-time
        // `Arc::ptr_eq` assertion are the real guarantee; nothing dynamic
        // to check beyond them.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Algorithm, BruteForce, Expansion};
    use crate::{DistanceCache, UotsQuery};
    use uots_network::generators::{grid_city, GridCityConfig};
    use uots_network::NodeId;
    use uots_text::KeywordSet;
    use uots_trajectory::Sample;

    fn traj(nodes: &[u32], kw: &[u32]) -> Trajectory {
        Trajectory::new(
            nodes
                .iter()
                .enumerate()
                .map(|(i, &v)| Sample {
                    node: NodeId(v),
                    time: 60.0 * i as f64,
                })
                .collect(),
            KeywordSet::from_ids(kw.iter().map(|&k| uots_text::KeywordId(k))),
        )
        .unwrap()
    }

    fn manager() -> EpochManager {
        let net = Arc::new(grid_city(&GridCityConfig::tiny(6)).unwrap());
        let mut store = TrajectoryStore::new();
        store.push(traj(&[0, 1, 2], &[1]));
        store.push(traj(&[10, 11], &[2]));
        store.push(traj(&[30, 31, 32], &[1, 3]));
        EpochManager::new(net, store, 8)
    }

    #[test]
    fn ingest_is_invisible_until_publish() {
        let mgr = manager();
        let before = mgr.snapshot();
        let id = mgr.ingest(traj(&[5, 6], &[2]));
        assert_eq!(mgr.pending(), 1);
        assert_eq!(mgr.snapshot().epoch(), 0, "no publish yet");
        assert!(!mgr.snapshot().live().is_live(id) || mgr.snapshot().live().len() <= id.index());
        let after = mgr.publish();
        assert_eq!(after.epoch(), 1);
        assert!(after.live().is_live(id));
        assert_eq!(mgr.pending(), 0);
        // the old snapshot is untouched (readers keep serving it)
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.store().len(), 3);
        assert_eq!(after.store().len(), 4);
    }

    #[test]
    fn retire_hides_trajectory_from_queries_after_publish() {
        let mgr = manager();
        let opts = crate::QueryOptions {
            k: 3,
            ..Default::default()
        };
        let q = UotsQuery::with_options(vec![NodeId(0)], KeywordSet::empty(), Vec::new(), opts)
            .unwrap();
        let snap0 = mgr.snapshot();
        let db0 = snap0.database();
        let r0 = BruteForce.run(&db0, &q).unwrap();
        assert!(r0.ids().contains(&TrajectoryId(0)));

        mgr.retire(TrajectoryId(0));
        let snap1 = mgr.publish();
        let db1 = snap1.database();
        let r1 = BruteForce.run(&db1, &q).unwrap();
        assert!(!r1.ids().contains(&TrajectoryId(0)), "retired id visible");
        // surviving ids keep their numbers — no renumbering on retire
        assert!(r1.ids().contains(&TrajectoryId(1)));
        // double retire is a no-op and does not grow the batch
        assert!(!mgr.retire(TrajectoryId(0)));
        assert_eq!(mgr.pending(), 0);
    }

    #[test]
    fn network_is_pointer_identical_across_swaps() {
        let mgr = manager();
        let a = mgr.snapshot();
        mgr.ingest(traj(&[7], &[]));
        let b = mgr.publish();
        mgr.retire(TrajectoryId(1));
        let c = mgr.publish();
        assert!(Arc::ptr_eq(a.network(), b.network()));
        assert!(Arc::ptr_eq(b.network(), c.network()));
        assert!(Arc::ptr_eq(c.network(), mgr.network()));
    }

    #[test]
    fn warm_cache_survives_epoch_swap() {
        let mgr = manager();
        let cache = Arc::new(DistanceCache::new(1 << 14));
        let ctx = SearchContext::with_cache(Arc::clone(&cache));
        mgr.assert_cache_compatible(&ctx);
        let opts = crate::QueryOptions {
            k: 4,
            ..Default::default()
        };
        let q = UotsQuery::with_options(
            vec![NodeId(0), NodeId(35)],
            KeywordSet::empty(),
            Vec::new(),
            opts,
        )
        .unwrap();

        let snap0 = mgr.snapshot();
        let r0 = Expansion::default()
            .run_with_cache(&snap0.database(), &q, &ctx)
            .unwrap();
        assert!(cache.stats().inserts > 0, "first run warms the cache");

        mgr.ingest(traj(&[20, 21], &[4]));
        mgr.retire(TrajectoryId(1));
        let snap1 = mgr.publish();
        let hits_before = cache.stats().hits;
        let r1 = Expansion::default()
            .run_with_cache(&snap1.database(), &q, &ctx)
            .unwrap();
        assert!(
            cache.stats().hits > hits_before,
            "the post-swap query must replay pre-swap prefixes"
        );
        // and the replayed result is exactly what a cold run produces
        let cold = Expansion::default().run(&snap1.database(), &q).unwrap();
        assert_eq!(r1.ids(), cold.ids());
        // sanity: epochs really did differ
        assert_ne!(r0.ids(), r1.ids());
    }

    #[test]
    fn per_epoch_state_drops_with_the_snapshot() {
        let mgr = manager();
        let old = mgr.snapshot();
        let weak_probe = {
            mgr.ingest(traj(&[3], &[]));
            mgr.publish();
            // `old` + the probe are now the only owners of epoch 0
            Arc::downgrade(&old)
        };
        drop(old);
        assert!(
            weak_probe.upgrade().is_none(),
            "no hidden owner may pin a replaced snapshot's indexes"
        );
    }

    #[test]
    fn metrics_track_ingest_and_swaps() {
        let registry = MetricsRegistry::new();
        let net = Arc::new(grid_city(&GridCityConfig::tiny(4)).unwrap());
        let mut store = TrajectoryStore::new();
        store.push(traj(&[0, 1], &[1]));
        let mgr = EpochManager::with_metrics(net, store, 4, &registry);
        mgr.ingest(traj(&[2, 3], &[2]));
        mgr.ingest(traj(&[4], &[]));
        mgr.retire(TrajectoryId(0));
        mgr.publish();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("uots_epoch_publishes_total", &[]), Some(1));
        assert_eq!(snap.counter("uots_epoch_ingested_total", &[]), Some(2));
        assert_eq!(snap.counter("uots_epoch_retired_total", &[]), Some(1));
        assert_eq!(snap.gauge("uots_epoch_current", &[]), Some(1));
        assert_eq!(snap.gauge("uots_epoch_live_trajectories", &[]), Some(2));
        assert_eq!(snap.gauge("uots_epoch_pending_mutations", &[]), Some(0));
        let hist = snap
            .histogram("uots_epoch_swap_micros", &[])
            .expect("swap latency recorded");
        assert_eq!(hist.count, 1);
    }

    #[test]
    fn from_parts_serves_exactly_the_mutated_state() {
        let mgr = manager();
        mgr.retire(TrajectoryId(1));
        mgr.ingest(traj(&[8, 9], &[5]));
        let snap = mgr.publish();
        // rebuild a manager from the published master state, as crash
        // recovery does from checkpoint + WAL replay
        let recovered = EpochManager::from_parts(
            Arc::clone(snap.network()),
            snap.store().clone(),
            snap.live().clone(),
            8,
            snap.epoch(),
        );
        let rsnap = recovered.snapshot();
        assert_eq!(rsnap.epoch(), 1);
        assert_eq!(rsnap.live(), snap.live());
        let q = UotsQuery::with_options(
            vec![NodeId(0), NodeId(20)],
            KeywordSet::from_ids([uots_text::KeywordId(1), uots_text::KeywordId(5)]),
            Vec::new(),
            crate::QueryOptions {
                k: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let a = Expansion::default().run(&snap.database(), &q).unwrap();
        let b = Expansion::default().run(&rsnap.database(), &q).unwrap();
        assert_eq!(a.ids(), b.ids());
        for (x, y) in a.matches.iter().zip(b.matches.iter()) {
            assert_eq!(x.similarity.to_bits(), y.similarity.to_bits());
        }
        // and the recovered manager keeps working: publish resumes the
        // epoch sequence
        recovered.ingest(traj(&[3, 4], &[2]));
        assert_eq!(recovered.publish().epoch(), 2);
    }

    #[test]
    fn rebuild_compacted_maps_ids_in_order() {
        let mgr = manager();
        mgr.retire(TrajectoryId(1));
        mgr.ingest(traj(&[8, 9], &[5]));
        let snap = mgr.publish();
        let (compacted, map) = snap.rebuild_compacted();
        assert_eq!(compacted.len(), 3);
        assert_eq!(map[0], Some(TrajectoryId(0)));
        assert_eq!(map[1], None);
        assert_eq!(map[2], Some(TrajectoryId(1)));
        assert_eq!(map[3], Some(TrajectoryId(2)));
    }
}
