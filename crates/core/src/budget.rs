//! Anytime execution: budgets, deadlines, cooperative cancellation, and
//! the completeness certificate attached to every answer.
//!
//! Every algorithm in this crate accepts an [`ExecutionBudget`] (carried in
//! [`crate::QueryOptions`]) and a [`RunControl`] (an out-of-band
//! [`CancellationToken`] plus an optional hard deadline, typically set per
//! batch). Exhausting either is **not an error**: the algorithm stops
//! expanding, keeps everything it has proven so far, and returns its current
//! top-k tagged [`Completeness::BestEffort`] with a *certified* `bound_gap`
//! — an upper bound on how much similarity any unreported trajectory could
//! have above the returned `k`-th best. A gap of `0` collapses back to
//! [`Completeness::Exact`], so callers can branch on one enum.
//!
//! The machinery is deliberately cheap: cancellation is one relaxed atomic
//! load, deadlines call [`Instant::now`] only every [`CHECK_INTERVAL`]
//! expansion steps, and counter limits are plain integer compares.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many expansion steps pass between clock/token polls inside the hot
/// loops. Counter limits (`max_visited`, `max_settled`) are checked on
/// every step regardless — they are just integer compares.
pub const CHECK_INTERVAL: usize = 64;

/// A cheap, shareable cancellation flag.
///
/// Cloning shares the flag; any clone may [`cancel`](Self::cancel) and all
/// observers see it. Algorithms poll it cooperatively, so cancellation
/// latency is bounded by a few expansion steps, not instantaneous.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Resource limits for one query (or one join). `None` means unlimited;
/// the default is unlimited on every axis, so existing call sites keep
/// exact semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExecutionBudget {
    /// Wall-clock limit, measured from the start of the run.
    pub max_wall: Option<Duration>,
    /// Maximum trajectories touched (candidate generation work).
    pub max_visited: Option<usize>,
    /// Maximum settled vertices + scanned timestamps (expansion work).
    pub max_settled: Option<usize>,
}

impl ExecutionBudget {
    /// The do-nothing budget: no limits on any axis.
    pub const UNLIMITED: ExecutionBudget = ExecutionBudget {
        max_wall: None,
        max_visited: None,
        max_settled: None,
    };

    /// `true` when no axis is limited (the fast path skips gate checks'
    /// bookkeeping entirely only through [`Gate`]'s sticky flag, but this
    /// is useful for reporting).
    pub fn is_unlimited(&self) -> bool {
        self.max_wall.is_none() && self.max_visited.is_none() && self.max_settled.is_none()
    }

    /// Builder: wall-clock limit in milliseconds.
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.max_wall = Some(Duration::from_millis(ms));
        self
    }

    /// Builder: cap on visited trajectories.
    #[must_use]
    pub fn with_max_visited(mut self, n: usize) -> Self {
        self.max_visited = Some(n);
        self
    }

    /// Builder: cap on settled vertices + scanned timestamps.
    #[must_use]
    pub fn with_max_settled(mut self, n: usize) -> Self {
        self.max_settled = Some(n);
        self
    }
}

/// The completeness certificate attached to every [`crate::QueryResult`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum Completeness {
    /// The answer is provably identical to the unbudgeted answer.
    #[default]
    Exact,
    /// The run was interrupted (budget, deadline, or cancellation) before
    /// the termination proof closed.
    BestEffort {
        /// Certified slack: no unreported trajectory's similarity exceeds
        /// `returned kth-best + bound_gap`. Always in `[0, 1]`; `1.0`
        /// means "nothing is certified" (e.g. cancelled before any work).
        bound_gap: f64,
    },
}

impl Completeness {
    /// Collapses a computed gap: a gap of zero (or below, defensively) is
    /// an exact answer.
    pub fn from_gap(gap: f64) -> Self {
        if gap <= 0.0 {
            Completeness::Exact
        } else {
            Completeness::BestEffort {
                bound_gap: gap.min(1.0),
            }
        }
    }

    /// Whether the answer is certified exact.
    pub fn is_exact(&self) -> bool {
        matches!(self, Completeness::Exact)
    }

    /// The certified gap: `0` for exact answers.
    pub fn bound_gap(&self) -> f64 {
        match *self {
            Completeness::Exact => 0.0,
            Completeness::BestEffort { bound_gap } => bound_gap,
        }
    }
}

/// Out-of-band control for one run: a cancellation token plus an optional
/// absolute deadline (e.g. the enclosing batch's). Combined with the
/// query-carried [`ExecutionBudget`] inside [`Gate`]; the effective
/// deadline is the earlier of the two.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    token: CancellationToken,
    deadline: Option<Instant>,
}

impl RunControl {
    /// No token holder, no deadline: runs to completion.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Control observing `token`.
    pub fn with_token(token: CancellationToken) -> Self {
        RunControl {
            token,
            deadline: None,
        }
    }

    /// Builder: adds an absolute deadline (kept if earlier than any
    /// already present).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(match self.deadline {
            Some(d) => d.min(deadline),
            None => deadline,
        });
        self
    }

    /// The observed token.
    pub fn token(&self) -> &CancellationToken {
        &self.token
    }

    /// The absolute deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether the token was cancelled (does not consult the deadline).
    pub fn is_cancelled(&self) -> bool {
        self.token.is_cancelled()
    }

    /// Whether the deadline (if any) has already passed.
    pub fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// The per-run interruption checker threaded through every hot loop.
///
/// Sticky: once tripped it stays tripped, so loops can keep calling
/// [`should_stop`](Self::should_stop) without re-deriving the decision.
#[derive(Debug)]
pub struct Gate {
    token: CancellationToken,
    deadline: Option<Instant>,
    max_visited: usize,
    max_settled: usize,
    steps: usize,
    tripped: bool,
    /// Fast path: no token observers, no deadline, no counter limits.
    trivial: bool,
}

impl Gate {
    /// Builds the gate from the query's budget and the run's control. The
    /// wall-clock budget starts counting now.
    pub fn new(budget: &ExecutionBudget, ctl: &RunControl) -> Self {
        let budget_deadline = budget.max_wall.map(|w| Instant::now() + w);
        let deadline = match (ctl.deadline, budget_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let trivial =
            deadline.is_none() && budget.max_visited.is_none() && budget.max_settled.is_none();
        Gate {
            token: ctl.token.clone(),
            deadline,
            max_visited: budget.max_visited.unwrap_or(usize::MAX),
            max_settled: budget.max_settled.unwrap_or(usize::MAX),
            steps: 0,
            tripped: ctl.token.is_cancelled(),
            trivial,
        }
    }

    /// An always-open gate (for paths that opt out of interruption).
    pub fn open() -> Self {
        Gate::new(&ExecutionBudget::UNLIMITED, &RunControl::unbounded())
    }

    /// The cheap per-step check. `visited`/`settled` are the run's current
    /// effort counters; counter limits compare on every call, the token
    /// and clock are polled every [`CHECK_INTERVAL`] calls.
    #[inline]
    pub fn should_stop(&mut self, visited: usize, settled: usize) -> bool {
        if self.tripped {
            return true;
        }
        if !self.trivial && (visited >= self.max_visited || settled >= self.max_settled) {
            self.tripped = true;
            return true;
        }
        self.steps += 1;
        if self.steps.is_multiple_of(CHECK_INTERVAL) && self.poll() {
            self.tripped = true;
            return true;
        }
        false
    }

    /// Forced token + clock poll, bypassing the step counter. Used at
    /// phase boundaries (e.g. between Dijkstra trees) where steps are
    /// coarse.
    pub fn interrupted_now(&mut self) -> bool {
        if self.tripped {
            return true;
        }
        if self.poll() {
            self.tripped = true;
        }
        self.tripped
    }

    fn poll(&self) -> bool {
        self.token.is_cancelled() || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether the gate has tripped (the run ended best-effort).
    pub fn tripped(&self) -> bool {
        self.tripped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_cancellation_is_shared_across_clones() {
        let t = CancellationToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn default_budget_is_unlimited_and_gate_stays_open() {
        let b = ExecutionBudget::default();
        assert!(b.is_unlimited());
        let mut g = Gate::new(&b, &RunControl::unbounded());
        for step in 0..10_000 {
            assert!(!g.should_stop(step, step));
        }
        assert!(!g.tripped());
    }

    #[test]
    fn counter_limits_trip_immediately_and_stick() {
        let b = ExecutionBudget::default().with_max_settled(10);
        let mut g = Gate::new(&b, &RunControl::unbounded());
        assert!(!g.should_stop(0, 9));
        assert!(g.should_stop(0, 10));
        assert!(g.should_stop(0, 0), "gate must be sticky once tripped");
        let b = ExecutionBudget::default().with_max_visited(5);
        let mut g = Gate::new(&b, &RunControl::unbounded());
        assert!(!g.should_stop(4, 0));
        assert!(g.should_stop(5, 0));
    }

    #[test]
    fn cancellation_is_seen_within_a_check_interval() {
        let t = CancellationToken::new();
        let mut g = Gate::new(
            &ExecutionBudget::default(),
            &RunControl::with_token(t.clone()),
        );
        assert!(!g.should_stop(0, 0));
        t.cancel();
        let mut stopped = false;
        for _ in 0..=CHECK_INTERVAL {
            if g.should_stop(0, 0) {
                stopped = true;
                break;
            }
        }
        assert!(stopped);
        assert!(g.interrupted_now());
    }

    #[test]
    fn pre_cancelled_token_trips_the_gate_at_construction() {
        let t = CancellationToken::new();
        t.cancel();
        let mut g = Gate::new(&ExecutionBudget::default(), &RunControl::with_token(t));
        assert!(g.should_stop(0, 0));
    }

    #[test]
    fn expired_deadline_trips_on_forced_poll() {
        let ctl = RunControl::unbounded().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(ctl.deadline_passed());
        let mut g = Gate::new(&ExecutionBudget::default(), &ctl);
        assert!(g.interrupted_now());
    }

    #[test]
    fn budget_wall_and_control_deadline_take_the_earlier() {
        // budget wall of 0 ms beats a far-future control deadline
        let ctl = RunControl::unbounded().with_deadline(Instant::now() + Duration::from_secs(3600));
        let b = ExecutionBudget::default().with_deadline_ms(0);
        let mut g = Gate::new(&b, &ctl);
        assert!(g.interrupted_now());
    }

    #[test]
    fn completeness_collapses_zero_gap_to_exact() {
        assert!(Completeness::from_gap(0.0).is_exact());
        assert!(Completeness::from_gap(-0.5).is_exact());
        let be = Completeness::from_gap(0.25);
        assert!(!be.is_exact());
        assert!((be.bound_gap() - 0.25).abs() < 1e-12);
        assert_eq!(Completeness::from_gap(7.0).bound_gap(), 1.0);
        assert_eq!(Completeness::default(), Completeness::Exact);
    }

    #[test]
    fn budget_builders_compose() {
        let b = ExecutionBudget::default()
            .with_deadline_ms(100)
            .with_max_visited(7)
            .with_max_settled(9);
        assert_eq!(b.max_wall, Some(Duration::from_millis(100)));
        assert_eq!(b.max_visited, Some(7));
        assert_eq!(b.max_settled, Some(9));
        assert!(!b.is_unlimited());
    }
}
