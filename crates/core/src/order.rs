//! Order-aware match refinement (future-work extension).
//!
//! The base UOTS similarity ignores the *visiting order* of the intended
//! places — a trajectory passing the places in reverse scores exactly the
//! same. The paper family flags order sensitivity as future work ("take the
//! visiting sequence of sample points into account when matching"). This
//! module implements it as a cheap **re-ranking** step over a computed
//! result: for each match, measure how consistently the trajectory visits
//! the query places in the requested order and blend that into the score.
//!
//! Order consistency is the length of the longest increasing run of
//! nearest-sample indices relative to the query order, normalized to
//! `[0, 1]` (longest increasing subsequence / m). A trajectory visiting all
//! places in order scores 1; a reversed one scores `1/m`.
//!
//! The blended score lives in [`Match::order_blend`], never in
//! [`Match::similarity`] — the reported similarity always stays the pure
//! channel combination, so a certified result's components remain
//! auditable after a rerank. Reranking also re-certifies
//! [`Completeness`]: the blend can surface trajectories the original
//! top-k never reported, so an exact result generally becomes a certified
//! best effort (see [`rerank_by_order_ctx`]).

use crate::budget::Completeness;
use crate::distcache::{CachedSource, SearchContext};
use crate::{Database, Match, QueryResult, UotsQuery};
use std::collections::{HashMap, HashSet};
use uots_network::NodeId;

/// For each query location, the index of the trajectory sample nearest to
/// it (network distance), then the normalized longest-increasing-subsequence
/// length of that index sequence.
///
/// Runs with the empty [`SearchContext`] — see
/// [`order_consistency_ctx`] for the cache-aware variant the rerank uses.
pub fn order_consistency(db: &Database<'_>, query: &UotsQuery, m: &Match) -> f64 {
    order_consistency_ctx(db, query, m, &SearchContext::new())
}

/// [`order_consistency`] under a [`SearchContext`]: each per-location
/// expansion replays a cached prefix when the context holds one, expands
/// only as far as the trajectory's vertex set requires, and publishes the
/// (possibly extended) prefix back for later queries.
///
/// The expansion bound is exact, not heuristic: Dijkstra settles in
/// nondecreasing distance, so once every distinct trajectory vertex is
/// settled — or the unsettled lower bound strictly exceeds the smallest
/// distance found so far — no undelivered vertex can change the *first
/// minimal sample index*, which is all the consistency score consumes.
/// (Strictness matters: an unsettled vertex tying the minimum at an
/// earlier sample index would change that index, so expansion continues
/// through the whole tie plateau.) Scores are bit-identical to the
/// unbounded full-tree computation; the differential suite asserts this.
pub fn order_consistency_ctx(
    db: &Database<'_>,
    query: &UotsQuery,
    m: &Match,
    ctx: &SearchContext,
) -> f64 {
    let traj = db.store.get(m.id);
    let verts: HashSet<NodeId> = traj.nodes().collect();
    let mut nearest_sample_indices = Vec::with_capacity(query.num_locations());
    for &o in query.locations() {
        let mut dist: HashMap<NodeId, f64> = HashMap::with_capacity(verts.len());
        let mut src = CachedSource::start(db.network, o, ctx.cache());
        let mut best_d = f64::INFINITY;
        while dist.len() < verts.len() && src.unsettled_lower_bound() <= best_d {
            let Some(s) = src.next_settled() else {
                break; // component exhausted: the rest is exactly ∞
            };
            if verts.contains(&s.node) {
                dist.insert(s.node, s.dist);
                best_d = best_d.min(s.dist);
            }
        }
        // a cleanly bounded prefix is valid cache content
        src.publish();
        // Vertices left unsettled by the bound have true distance strictly
        // above `best_d`; substituting ∞ cannot move the first index that
        // attains the minimum.
        let mut best = 0usize;
        let mut best_scan = f64::INFINITY;
        for (i, s) in traj.samples().iter().enumerate() {
            let d = dist.get(&s.node).copied().unwrap_or(f64::INFINITY);
            if d < best_scan {
                best_scan = d;
                best = i;
            }
        }
        nearest_sample_indices.push(best);
    }
    lis_length(&nearest_sample_indices) as f64 / nearest_sample_indices.len() as f64
}

/// Longest nondecreasing subsequence length (patience sorting, `O(n log n)`).
fn lis_length(xs: &[usize]) -> usize {
    let mut tails: Vec<usize> = Vec::new();
    for &x in xs {
        // nondecreasing: find first tail strictly greater than x
        let pos = tails.partition_point(|&t| t <= x);
        if pos == tails.len() {
            tails.push(x);
        } else {
            tails[pos] = x;
        }
    }
    tails.len()
}

/// [`rerank_by_order_ctx`] with the empty [`SearchContext`].
///
/// # Panics
///
/// Panics when `order_weight` is outside `[0, 1]`.
pub fn rerank_by_order(
    db: &Database<'_>,
    query: &UotsQuery,
    result: &mut QueryResult,
    order_weight: f64,
) {
    rerank_by_order_ctx(db, query, result, order_weight, &SearchContext::new());
}

/// Re-ranks `result` in place, storing the blended score
/// `(1 − order_weight) · similarity + order_weight · consistency` in each
/// match's [`Match::order_blend`] and re-sorting by it. `similarity` and
/// the channel components are left untouched.
///
/// The completeness certificate is re-derived. With `order_weight = 0` the
/// rerank is the identity and the certificate is preserved. Otherwise an
/// unreported trajectory — whose similarity the original certificate
/// bounds by `kth-best + gap` — could blend as high as
/// `(1 − w) · min(1, kth + gap) + w · 1`, so the result is downgraded to
/// [`Completeness::BestEffort`] with the gap between that ceiling and the
/// new k-th best blend, unless every live trajectory is already reported
/// (then the rerank is total and exactness survives).
///
/// # Panics
///
/// Panics when `order_weight` is outside `[0, 1]`.
pub fn rerank_by_order_ctx(
    db: &Database<'_>,
    query: &UotsQuery,
    result: &mut QueryResult,
    order_weight: f64,
    ctx: &SearchContext,
) {
    assert!(
        (0.0..=1.0).contains(&order_weight),
        "order_weight must be in [0, 1]"
    );
    if order_weight == 0.0 || result.matches.is_empty() {
        return; // identity: blend == similarity, certificate unchanged
    }
    let kth = result
        .matches
        .last()
        .map_or(f64::NEG_INFINITY, |m| m.similarity);
    for m in &mut result.matches {
        let c = order_consistency_ctx(db, query, m, ctx);
        m.order_blend = Some((1.0 - order_weight) * m.similarity + order_weight * c);
    }
    result.matches.sort_by(Match::ranking_cmp);
    let everything_reported =
        result.completeness.is_exact() && result.matches.len() >= db.num_live();
    if !everything_reported {
        let unreported_sim_ub = (kth + result.completeness.bound_gap()).min(1.0);
        let unreported_blend_ub = (1.0 - order_weight) * unreported_sim_ub + order_weight;
        let new_kth_blend = result
            .matches
            .last()
            .map_or(f64::NEG_INFINITY, Match::rank_score);
        result.completeness = Completeness::BestEffort {
            bound_gap: (unreported_blend_ub - new_kth_blend).clamp(0.0, 1.0),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchMetrics;
    use crate::{DistanceCache, QueryOptions};
    use std::sync::Arc;
    use uots_network::generators::{grid_city, GridCityConfig};
    use uots_text::KeywordSet;
    use uots_trajectory::{Sample, Trajectory, TrajectoryStore};

    fn traj(nodes: &[u32]) -> Trajectory {
        Trajectory::new(
            nodes
                .iter()
                .enumerate()
                .map(|(i, &v)| Sample {
                    node: NodeId(v),
                    time: 60.0 * i as f64,
                })
                .collect(),
            KeywordSet::empty(),
        )
        .unwrap()
    }

    #[test]
    fn lis_known_values() {
        assert_eq!(lis_length(&[0, 1, 2, 3]), 4);
        assert_eq!(lis_length(&[3, 2, 1, 0]), 1);
        assert_eq!(lis_length(&[1, 3, 2, 4]), 3);
        assert_eq!(lis_length(&[2, 2, 2]), 3); // nondecreasing
        assert_eq!(lis_length(&[]), 0);
    }

    #[test]
    fn forward_trajectory_scores_higher_than_reverse() {
        let net = grid_city(&GridCityConfig::tiny(8)).unwrap();
        let mut store = TrajectoryStore::new();
        let fwd = store.push(traj(&[0, 2, 4, 6])); // bottom row, left→right
        let rev = store.push(traj(&[6, 4, 2, 0]));
        let vidx = store.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &store, &vidx);
        // places in left→right order
        let q = UotsQuery::new(vec![NodeId(0), NodeId(3), NodeId(6)], KeywordSet::empty()).unwrap();
        let mk = |id| Match {
            id,
            similarity: 0.5,
            spatial: 0.5,
            textual: 0.0,
            temporal: 0.0,
            order_blend: None,
        };
        let cf = order_consistency(&db, &q, &mk(fwd));
        let cr = order_consistency(&db, &q, &mk(rev));
        assert!((cf - 1.0).abs() < 1e-12, "forward consistency {cf}");
        assert!(cr < cf, "reverse {cr} must be below forward {cf}");

        // re-ranking flips a tie in favour of the order-consistent one
        let mut result = QueryResult {
            matches: vec![mk(fwd), mk(rev)],
            metrics: SearchMetrics::for_one_query(),
            completeness: Completeness::Exact,
        };
        rerank_by_order(&db, &q, &mut result, 0.5);
        assert_eq!(result.matches[0].id, fwd);
        assert!(result.matches[0].rank_score() > result.matches[1].rank_score());
    }

    #[test]
    fn zero_weight_preserves_ranking() {
        let net = grid_city(&GridCityConfig::tiny(5)).unwrap();
        let mut store = TrajectoryStore::new();
        let a = store.push(traj(&[0, 1]));
        let b = store.push(traj(&[24, 23]));
        let vidx = store.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &store, &vidx);
        let q = UotsQuery::new(vec![NodeId(0)], KeywordSet::empty()).unwrap();
        let mut result = QueryResult {
            matches: vec![
                Match {
                    id: a,
                    similarity: 0.9,
                    spatial: 0.9,
                    textual: 0.0,
                    temporal: 0.0,
                    order_blend: None,
                },
                Match {
                    id: b,
                    similarity: 0.2,
                    spatial: 0.2,
                    textual: 0.0,
                    temporal: 0.0,
                    order_blend: None,
                },
            ],
            metrics: SearchMetrics::for_one_query(),
            completeness: Completeness::Exact,
        };
        rerank_by_order(&db, &q, &mut result, 0.0);
        assert_eq!(result.matches[0].id, a);
        assert!((result.matches[0].similarity - 0.9).abs() < 1e-12);
        // zero weight is the identity: no blend stored, certificate kept
        assert_eq!(result.matches[0].order_blend, None);
        assert!(result.completeness.is_exact());
    }

    /// Regression (pre-fix `rerank_by_order` overwrote `similarity` with
    /// the blended score): after a rerank the similarity must still be the
    /// pure channel combination and the blend must live in `order_blend`.
    #[test]
    fn rerank_keeps_similarity_pure_and_downgrades_completeness() {
        let net = grid_city(&GridCityConfig::tiny(8)).unwrap();
        let mut store = TrajectoryStore::new();
        let fwd = store.push(traj(&[0, 2, 4, 6]));
        let rev = store.push(traj(&[6, 4, 2, 0]));
        // a third live trajectory the k=2 result does not report, so the
        // exact certificate cannot survive a weighted rerank
        store.push(traj(&[63]));
        let vidx = store.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &store, &vidx);
        let q = UotsQuery::new(vec![NodeId(0), NodeId(3), NodeId(6)], KeywordSet::empty()).unwrap();
        let mk = |id, sim| Match {
            id,
            similarity: sim,
            spatial: sim,
            textual: 0.0,
            temporal: 0.0,
            order_blend: None,
        };
        let mut result = QueryResult {
            matches: vec![mk(rev, 0.8), mk(fwd, 0.7)],
            metrics: SearchMetrics::for_one_query(),
            completeness: Completeness::Exact,
        };
        rerank_by_order(&db, &q, &mut result, 0.6);
        for m in &result.matches {
            let sim = if m.id == rev { 0.8 } else { 0.7 };
            assert!(
                (m.similarity - sim).abs() < 1e-12,
                "similarity must stay the channel combination, got {}",
                m.similarity
            );
            assert_eq!(m.spatial, sim, "components untouched");
            let blend = m.order_blend.expect("rerank stores the blend");
            assert!((0.0..=1.0).contains(&blend));
        }
        // the order-consistent trajectory wins despite lower similarity
        assert_eq!(result.matches[0].id, fwd);
        // and the stale Exact certificate was downgraded
        assert!(
            !result.completeness.is_exact(),
            "unreported trajectories can out-blend the reported k: {:?}",
            result.completeness
        );
        assert!(result.completeness.bound_gap() <= 1.0);
        assert!(result.is_ranked(), "ranking invariant holds on the blend");
    }

    /// When the result already reports every live trajectory, the rerank
    /// is a total re-sort and exactness survives.
    #[test]
    fn rerank_of_total_result_stays_exact() {
        let net = grid_city(&GridCityConfig::tiny(8)).unwrap();
        let mut store = TrajectoryStore::new();
        let fwd = store.push(traj(&[0, 2, 4, 6]));
        let rev = store.push(traj(&[6, 4, 2, 0]));
        let vidx = store.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &store, &vidx);
        let q = UotsQuery::new(vec![NodeId(0), NodeId(3), NodeId(6)], KeywordSet::empty()).unwrap();
        let mk = |id, sim| Match {
            id,
            similarity: sim,
            spatial: sim,
            textual: 0.0,
            temporal: 0.0,
            order_blend: None,
        };
        let mut result = QueryResult {
            matches: vec![mk(rev, 0.8), mk(fwd, 0.7)],
            metrics: SearchMetrics::for_one_query(),
            completeness: Completeness::Exact,
        };
        rerank_by_order(&db, &q, &mut result, 0.5);
        assert!(result.completeness.is_exact());
        assert_eq!(result.matches[0].id, fwd);
    }

    /// The cached path must agree with the unbounded full-tree path to the
    /// last bit — including on stores with unreachable vertices.
    #[test]
    fn cached_consistency_is_bit_identical() {
        let net = grid_city(&GridCityConfig::tiny(8)).unwrap();
        let mut store = TrajectoryStore::new();
        let ids = [
            store.push(traj(&[0, 2, 4, 6])),
            store.push(traj(&[6, 4, 2, 0])),
            store.push(traj(&[9, 18, 27, 36])),
            store.push(traj(&[63, 0, 63])),
        ];
        let vidx = store.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &store, &vidx);
        let cache = Arc::new(DistanceCache::new(1 << 14));
        let ctx = SearchContext::with_cache(Arc::clone(&cache));
        let queries = [
            UotsQuery::new(vec![NodeId(0), NodeId(3), NodeId(6)], KeywordSet::empty()).unwrap(),
            UotsQuery::new(vec![NodeId(7), NodeId(56)], KeywordSet::empty()).unwrap(),
            UotsQuery::with_options(
                vec![NodeId(5)],
                KeywordSet::empty(),
                vec![],
                QueryOptions::default(),
            )
            .unwrap(),
        ];
        let mk = |id| Match {
            id,
            similarity: 0.5,
            spatial: 0.5,
            textual: 0.0,
            temporal: 0.0,
            order_blend: None,
        };
        // two rounds so the second replays the prefixes the first published
        for round in 0..2 {
            for q in &queries {
                for &id in &ids {
                    let plain = order_consistency(&db, q, &mk(id));
                    let cached = order_consistency_ctx(&db, q, &mk(id), &ctx);
                    assert_eq!(
                        plain.to_bits(),
                        cached.to_bits(),
                        "round {round}: cached consistency diverged for {id}"
                    );
                }
            }
        }
        assert!(cache.stats().hits > 0, "second round must replay prefixes");
    }
}
