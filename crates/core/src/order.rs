//! Order-aware match refinement (future-work extension).
//!
//! The base UOTS similarity ignores the *visiting order* of the intended
//! places — a trajectory passing the places in reverse scores exactly the
//! same. The paper family flags order sensitivity as future work ("take the
//! visiting sequence of sample points into account when matching"). This
//! module implements it as a cheap **re-ranking** step over a computed
//! result: for each match, measure how consistently the trajectory visits
//! the query places in the requested order and blend that into the score.
//!
//! Order consistency is the length of the longest increasing run of
//! nearest-sample indices relative to the query order, normalized to
//! `[0, 1]` (longest increasing subsequence / m). A trajectory visiting all
//! places in order scores 1; a reversed one scores `1/m`.

use crate::{Database, Match, QueryResult, UotsQuery};
use uots_network::dijkstra::shortest_path_tree;

/// For each query location, the index of the trajectory sample nearest to
/// it (network distance), then the normalized longest-increasing-subsequence
/// length of that index sequence.
///
/// Runs one Dijkstra per query location bounded to the trajectory's
/// vertices, so it is intended for the handful of matches in a result, not
/// for whole datasets.
pub fn order_consistency(db: &Database<'_>, query: &UotsQuery, m: &Match) -> f64 {
    let traj = db.store.get(m.id);
    let mut nearest_sample_indices = Vec::with_capacity(query.num_locations());
    for &o in query.locations() {
        // full tree is wasteful but simple; bounded variants would need the
        // max sample distance which we don't retain in the Match
        let tree = shortest_path_tree(db.network, o);
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, s) in traj.samples().iter().enumerate() {
            let d = tree.distance(s.node).unwrap_or(f64::INFINITY);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        nearest_sample_indices.push(best);
    }
    lis_length(&nearest_sample_indices) as f64 / nearest_sample_indices.len() as f64
}

/// Longest nondecreasing subsequence length (patience sorting, `O(n log n)`).
fn lis_length(xs: &[usize]) -> usize {
    let mut tails: Vec<usize> = Vec::new();
    for &x in xs {
        // nondecreasing: find first tail strictly greater than x
        let pos = tails.partition_point(|&t| t <= x);
        if pos == tails.len() {
            tails.push(x);
        } else {
            tails[pos] = x;
        }
    }
    tails.len()
}

/// Re-ranks `result` in place, blending order consistency with weight
/// `order_weight ∈ [0, 1]`:
/// `score' = (1 − order_weight) · similarity + order_weight · consistency`.
///
/// # Panics
///
/// Panics when `order_weight` is outside `[0, 1]`.
pub fn rerank_by_order(
    db: &Database<'_>,
    query: &UotsQuery,
    result: &mut QueryResult,
    order_weight: f64,
) {
    assert!(
        (0.0..=1.0).contains(&order_weight),
        "order_weight must be in [0, 1]"
    );
    let mut scored: Vec<(f64, Match)> = result
        .matches
        .iter()
        .map(|m| {
            let c = order_consistency(db, query, m);
            ((1.0 - order_weight) * m.similarity + order_weight * c, *m)
        })
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.id.cmp(&b.1.id)));
    result.matches = scored
        .into_iter()
        .map(|(score, mut m)| {
            m.similarity = score;
            m
        })
        .collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchMetrics;
    use uots_network::generators::{grid_city, GridCityConfig};
    use uots_network::NodeId;
    use uots_text::KeywordSet;
    use uots_trajectory::{Sample, Trajectory, TrajectoryStore};

    fn traj(nodes: &[u32]) -> Trajectory {
        Trajectory::new(
            nodes
                .iter()
                .enumerate()
                .map(|(i, &v)| Sample {
                    node: NodeId(v),
                    time: 60.0 * i as f64,
                })
                .collect(),
            KeywordSet::empty(),
        )
        .unwrap()
    }

    #[test]
    fn lis_known_values() {
        assert_eq!(lis_length(&[0, 1, 2, 3]), 4);
        assert_eq!(lis_length(&[3, 2, 1, 0]), 1);
        assert_eq!(lis_length(&[1, 3, 2, 4]), 3);
        assert_eq!(lis_length(&[2, 2, 2]), 3); // nondecreasing
        assert_eq!(lis_length(&[]), 0);
    }

    #[test]
    fn forward_trajectory_scores_higher_than_reverse() {
        let net = grid_city(&GridCityConfig::tiny(8)).unwrap();
        let mut store = TrajectoryStore::new();
        let fwd = store.push(traj(&[0, 2, 4, 6])); // bottom row, left→right
        let rev = store.push(traj(&[6, 4, 2, 0]));
        let vidx = store.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &store, &vidx);
        // places in left→right order
        let q = UotsQuery::new(vec![NodeId(0), NodeId(3), NodeId(6)], KeywordSet::empty()).unwrap();
        let mk = |id| Match {
            id,
            similarity: 0.5,
            spatial: 0.5,
            textual: 0.0,
            temporal: 0.0,
        };
        let cf = order_consistency(&db, &q, &mk(fwd));
        let cr = order_consistency(&db, &q, &mk(rev));
        assert!((cf - 1.0).abs() < 1e-12, "forward consistency {cf}");
        assert!(cr < cf, "reverse {cr} must be below forward {cf}");

        // re-ranking flips a tie in favour of the order-consistent one
        let mut result = QueryResult {
            matches: vec![mk(fwd), mk(rev)],
            metrics: SearchMetrics::for_one_query(),
            completeness: crate::budget::Completeness::Exact,
        };
        rerank_by_order(&db, &q, &mut result, 0.5);
        assert_eq!(result.matches[0].id, fwd);
        assert!(result.matches[0].similarity > result.matches[1].similarity);
    }

    #[test]
    fn zero_weight_preserves_ranking() {
        let net = grid_city(&GridCityConfig::tiny(5)).unwrap();
        let mut store = TrajectoryStore::new();
        let a = store.push(traj(&[0, 1]));
        let b = store.push(traj(&[24, 23]));
        let vidx = store.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &store, &vidx);
        let q = UotsQuery::new(vec![NodeId(0)], KeywordSet::empty()).unwrap();
        let mut result = QueryResult {
            matches: vec![
                Match {
                    id: a,
                    similarity: 0.9,
                    spatial: 0.9,
                    textual: 0.0,
                    temporal: 0.0,
                },
                Match {
                    id: b,
                    similarity: 0.2,
                    spatial: 0.2,
                    textual: 0.0,
                    temporal: 0.0,
                },
            ],
            metrics: SearchMetrics::for_one_query(),
            completeness: crate::budget::Completeness::Exact,
        };
        rerank_by_order(&db, &q, &mut result, 0.0);
        assert_eq!(result.matches[0].id, a);
        assert!((result.matches[0].similarity - 0.9).abs() < 1e-12);
    }
}
