//! Interned keyword layout: fixed-width `u64` bitset blocks with a
//! galloping sorted-id fallback.
//!
//! The textual hot path evaluates `TextSimilarity` between the query
//! keyword set and thousands of per-trajectory sets. The legacy
//! representation ([`KeywordSet`]) is a sorted `Vec<KeywordId>` per
//! trajectory — correct, but every comparison is a pointer chase plus a
//! merge walk. This module packs all per-trajectory sets into one dense
//! table:
//!
//! * **Bitset mode** — when the vocabulary width fits
//!   [`MAX_BITSET_BITS`] bits, each trajectory gets a fixed-width row of
//!   `u64` words (the 399-word BRN vocabulary takes 7 words) stored
//!   contiguously in one allocation. The intersection size is a handful
//!   of `AND` + `popcount` instructions over cache-resident words.
//! * **Galloping mode** — wider vocabularies fall back to a galloping
//!   (exponential-probe) intersection over the sorted id slices, which
//!   beats the linear merge when the two sets differ in size.
//!
//! Both modes produce the exact integer counts `(|A ∩ B|, |A|, |B|)` and
//! route them through [`TextSimilarity::from_counts`], so the resulting
//! floats are **bit-identical** to the legacy
//! [`TextSimilarity::similarity`] merge-walk path — the property the
//! widened differential harness (`tests/differential.rs`,
//! `tests/layout_proptests.rs`) locks down.

use uots_text::{KeywordId, KeywordSet, TextSimilarity};
use uots_trajectory::{Trajectory, TrajectoryId, TrajectoryStore};

/// Maximum vocabulary width (in bits) for which the bitset representation
/// is used; wider vocabularies use the galloping sorted-id fallback.
///
/// 1024 bits = 16 × `u64` per trajectory row: beyond that the rows stop
/// being reliably cache-resident and sparse sets waste bandwidth on zero
/// words.
pub const MAX_BITSET_BITS: usize = 1024;

const WORD_BITS: usize = 64;

/// Dense per-trajectory keyword table (see module docs).
///
/// Rows are indexed by [`TrajectoryId::index`]; build it over the same
/// store the queries run against (retired/non-live rows are simply never
/// consulted). The table is immutable — rebuild it per epoch snapshot.
#[derive(Debug, Clone)]
pub struct KeywordBlocks {
    /// Words per row; `0` means galloping mode (no bit rows stored).
    words: usize,
    /// Bit capacity of a row (`words * 64` in bitset mode).
    width: usize,
    /// `words * rows` bit words, row-major.
    bits: Vec<u64>,
    /// Per-row set size (valid in both modes).
    lens: Vec<u32>,
}

impl KeywordBlocks {
    /// Builds the table over every trajectory in `store`.
    ///
    /// `vocab_len` is the nominal vocabulary size; the effective width is
    /// widened to cover any keyword id actually present in the store, so
    /// ad-hoc datasets whose tags exceed the declared vocabulary still
    /// round-trip exactly.
    pub fn build(store: &TrajectoryStore, vocab_len: usize) -> Self {
        let sets: Vec<&KeywordSet> = store.iter().map(|(_, t)| t.keywords()).collect();
        Self::from_sets(sets.iter().copied(), vocab_len)
    }

    /// Builds the table from an explicit sequence of keyword sets (row
    /// `i` serves `TrajectoryId` index `i`). Primarily for tests that
    /// need to straddle the width threshold without a full store.
    pub fn from_sets<'a>(
        sets: impl IntoIterator<Item = &'a KeywordSet> + Clone,
        vocab_len: usize,
    ) -> Self {
        let mut width = vocab_len;
        let mut rows = 0usize;
        for set in sets.clone() {
            rows += 1;
            if let Some(&max) = set.ids().last() {
                width = width.max(max.index() + 1);
            }
        }
        if width > MAX_BITSET_BITS {
            let lens = sets.into_iter().map(|s| s.len() as u32).collect();
            return KeywordBlocks {
                words: 0,
                width,
                bits: Vec::new(),
                lens,
            };
        }
        let words = width.div_ceil(WORD_BITS).max(1);
        let mut bits = vec![0u64; words * rows];
        let mut lens = Vec::with_capacity(rows);
        for (row, set) in sets.into_iter().enumerate() {
            lens.push(set.len() as u32);
            let base = row * words;
            for id in set.iter() {
                let i = id.index();
                bits[base + i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
            }
        }
        KeywordBlocks {
            words,
            width,
            bits,
            lens,
        }
    }

    /// Whether the table uses the bitset representation (as opposed to
    /// the galloping sorted-id fallback).
    #[inline]
    pub fn is_bitset(&self) -> bool {
        self.words != 0
    }

    /// Effective vocabulary width in bits.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows in the table.
    #[inline]
    pub fn rows(&self) -> usize {
        self.lens.len()
    }

    /// Prepares the query-side representation once per query.
    ///
    /// Query ids beyond the table width (foreign keywords no stored
    /// trajectory carries) cannot intersect any row; they are counted in
    /// `|A|` but contribute no bits, which is exactly the legacy
    /// behaviour of the merge walk.
    pub fn prepare(&self, query: &KeywordSet) -> PreparedQuery {
        let mut blocks = vec![0u64; self.words];
        if self.is_bitset() {
            for id in query.iter() {
                let i = id.index();
                if i < self.width {
                    blocks[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
                }
            }
        }
        PreparedQuery {
            blocks,
            ids: query.ids().to_vec(),
            len: query.len(),
        }
    }

    /// The exact counts `(|A ∩ B|, |A|, |B|)` between the prepared query
    /// and row `tid`; `traj_keywords` backs the galloping fallback (and
    /// must be the same set the row was built from).
    #[inline]
    pub fn counts(
        &self,
        q: &PreparedQuery,
        tid: TrajectoryId,
        traj_keywords: &KeywordSet,
    ) -> (usize, usize, usize) {
        let row = tid.index();
        let b_len = self.lens[row] as usize;
        debug_assert_eq!(b_len, traj_keywords.len());
        let inter = if self.is_bitset() {
            let base = row * self.words;
            let mut acc = 0u32;
            for (w, &qw) in self.bits[base..base + self.words].iter().zip(&q.blocks) {
                acc += (w & qw).count_ones();
            }
            acc as usize
        } else {
            galloping_intersection_len(&q.ids, traj_keywords.ids())
        };
        (inter, q.len, b_len)
    }

    /// Textual similarity between the prepared query and row `tid`,
    /// bit-identical to `measure.similarity(query, traj_keywords)`.
    #[inline]
    pub fn textual(
        &self,
        measure: TextSimilarity,
        q: &PreparedQuery,
        tid: TrajectoryId,
        traj_keywords: &KeywordSet,
    ) -> f64 {
        let (inter, a_len, b_len) = self.counts(q, tid, traj_keywords);
        measure.from_counts(inter, a_len, b_len)
    }
}

/// Query-side keyword representation prepared once per query by
/// [`KeywordBlocks::prepare`].
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// Fixed-width bit row (empty in galloping mode).
    blocks: Vec<u64>,
    /// Sorted query ids (backs the galloping fallback).
    ids: Vec<KeywordId>,
    /// Full query set size, including ids beyond the table width.
    len: usize,
}

impl PreparedQuery {
    /// Number of keywords in the query set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the query set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Intersection size of two sorted, deduplicated id slices via galloping
/// (exponential-probe) search: the smaller slice drives, probing the
/// larger one with doubling steps then a binary search within the
/// bracket. Degrades to the merge walk's complexity for similar sizes
/// and beats it when the sizes are skewed.
pub fn galloping_intersection_len(a: &[KeywordId], b: &[KeywordId]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut lo = 0usize;
    let mut count = 0usize;
    for &id in small {
        // gallop: find the bracket [lo + step/2, lo + step] containing id
        let mut step = 1usize;
        while lo + step < large.len() && large[lo + step] < id {
            step <<= 1;
        }
        let hi = (lo + step + 1).min(large.len());
        match large[lo..hi].binary_search(&id) {
            Ok(i) => {
                count += 1;
                lo += i + 1;
            }
            Err(i) => lo += i,
        }
        if lo >= large.len() {
            break;
        }
    }
    count
}

/// Per-query textual evaluator: routes through the dense
/// [`KeywordBlocks`] table when a layout is attached, and through the
/// legacy [`KeywordSet`] merge walk otherwise. Both paths produce
/// bit-identical floats.
#[derive(Debug)]
pub struct TextualEval<'a> {
    measure: TextSimilarity,
    /// Owned copy of the (small) query set: keeps the evaluator's only
    /// borrow on the table, so callers with differently-lived query and
    /// database references can hold one evaluator.
    query: KeywordSet,
    layout: Option<(&'a KeywordBlocks, PreparedQuery)>,
}

impl<'a> TextualEval<'a> {
    /// Builds the evaluator; `blocks` selects the dense path.
    pub fn new(
        measure: TextSimilarity,
        query: &KeywordSet,
        blocks: Option<&'a KeywordBlocks>,
    ) -> Self {
        let layout = blocks.map(|b| (b, b.prepare(query)));
        TextualEval {
            measure,
            query: query.clone(),
            layout,
        }
    }

    /// Textual similarity of trajectory `tid`/`traj` against the query.
    #[inline]
    pub fn eval(&self, tid: TrajectoryId, traj: &Trajectory) -> f64 {
        match &self.layout {
            Some((blocks, q)) if tid.index() < blocks.rows() => {
                blocks.textual(self.measure, q, tid, traj.keywords())
            }
            _ => self.measure.similarity(&self.query, traj.keywords()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    const ALL: [TextSimilarity; 4] = [
        TextSimilarity::Jaccard,
        TextSimilarity::Dice,
        TextSimilarity::Cosine,
        TextSimilarity::Overlap,
    ];

    #[test]
    fn bitset_mode_counts_match_merge_walk() {
        let sets = [set(&[0, 3, 7]), set(&[]), set(&[3, 63, 64, 100]), set(&[5])];
        let blocks = KeywordBlocks::from_sets(sets.iter(), 101);
        assert!(blocks.is_bitset());
        let query = set(&[3, 5, 64, 999]); // 999 beyond width: counted, never matches
        let q = blocks.prepare(&query);
        for (i, s) in sets.iter().enumerate() {
            let tid = TrajectoryId(i as u32);
            let (inter, a, b) = blocks.counts(&q, tid, s);
            assert_eq!(inter, query.intersection_len(s), "row {i}");
            assert_eq!(a, query.len());
            assert_eq!(b, s.len());
            for m in ALL {
                assert_eq!(
                    blocks.textual(m, &q, tid, s).to_bits(),
                    m.similarity(&query, s).to_bits(),
                    "{m:?} row {i}"
                );
            }
        }
    }

    #[test]
    fn galloping_mode_engages_past_width_threshold() {
        let sets = [set(&[0, 2000]), set(&[1, 2, 3])];
        let blocks = KeywordBlocks::from_sets(sets.iter(), 10);
        assert!(!blocks.is_bitset());
        assert_eq!(blocks.width(), 2001);
        let query = set(&[1, 3, 2000]);
        let q = blocks.prepare(&query);
        for (i, s) in sets.iter().enumerate() {
            let tid = TrajectoryId(i as u32);
            let (inter, a, b) = blocks.counts(&q, tid, s);
            assert_eq!(inter, query.intersection_len(s));
            assert_eq!((a, b), (query.len(), s.len()));
        }
    }

    #[test]
    fn galloping_intersection_is_exact() {
        let a = set(&[1, 5, 9, 100, 101, 102]);
        let b = set(&[0, 5, 6, 7, 8, 9, 10, 50, 102, 500]);
        assert_eq!(
            galloping_intersection_len(a.ids(), b.ids()),
            a.intersection_len(&b)
        );
        assert_eq!(galloping_intersection_len(&[], b.ids()), 0);
        assert_eq!(galloping_intersection_len(a.ids(), &[]), 0);
    }

    #[test]
    fn vocab_width_expands_to_cover_store_ids() {
        let sets = [set(&[500])];
        let blocks = KeywordBlocks::from_sets(sets.iter(), 10);
        assert!(blocks.is_bitset());
        assert_eq!(blocks.width(), 501);
        let q = blocks.prepare(&set(&[500]));
        assert_eq!(blocks.counts(&q, TrajectoryId(0), &sets[0]).0, 1);
    }
}
