//! Query-source scheduling strategies.
//!
//! The expansion search drives one expansion per *query source* (each
//! intended place, plus each preferred timestamp when the temporal channel
//! is on). Which source to advance next is the paper's key performance
//! lever: its heuristic gives each source a priority label
//!
//! ```text
//! label(q) = Σ_{τ ∈ P_ps \ q.s} Sim(query, τ).ub
//! ```
//!
//! — the summed upper bounds of the partly-scanned trajectories the source
//! has *not* yet scanned — and always advances the top-labelled source. The
//! intuition (stated in the paper family): convert partly-scanned
//! trajectories to fully-scanned as early as possible, prioritising those
//! that look most promising.
//!
//! [`Scheduler::RoundRobin`] and [`Scheduler::MinRadius`] are the ablation
//! strategies ("w/o-h" in the evaluation).

use serde::{Deserialize, Serialize};

/// Strategy for picking the next query source to advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheduler {
    /// Cycle through the live sources in order. The classic IKNN-style
    /// round-robin; the "w/o heuristic" ablation.
    RoundRobin,
    /// Advance the source with the smallest normalized radius, keeping all
    /// expansion frontiers balanced.
    MinRadius,
    /// The paper's priority-label heuristic. Labels are recomputed every
    /// `recompute_every` expansion steps (a label sweep costs
    /// `O(|partly scanned| · #sources)`, so it is amortized over a batch of
    /// steps); between sweeps the current top source keeps running, which
    /// matches the paper's "search the top-ranked query source until a new
    /// query source takes its place".
    Heuristic {
        /// Steps between label sweeps (≥ 1).
        recompute_every: usize,
    },
}

impl Scheduler {
    /// The paper's configuration with a sensible sweep period.
    pub fn heuristic() -> Self {
        Scheduler::Heuristic {
            recompute_every: 128,
        }
    }

    /// Short display name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Scheduler::RoundRobin => "round-robin",
            Scheduler::MinRadius => "min-radius",
            Scheduler::Heuristic { .. } => "heuristic",
        }
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::heuristic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_default() {
        assert_eq!(Scheduler::RoundRobin.name(), "round-robin");
        assert_eq!(Scheduler::MinRadius.name(), "min-radius");
        assert_eq!(Scheduler::heuristic().name(), "heuristic");
        assert!(matches!(
            Scheduler::default(),
            Scheduler::Heuristic {
                recompute_every: 128
            }
        ));
    }

    #[test]
    fn serde_round_trip() {
        for s in [
            Scheduler::RoundRobin,
            Scheduler::MinRadius,
            Scheduler::heuristic(),
        ] {
            let json = serde_json::to_string(&s).unwrap();
            let back: Scheduler = serde_json::from_str(&json).unwrap();
            assert_eq!(s, back);
        }
    }
}
