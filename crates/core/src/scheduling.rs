//! Query-source scheduling strategies.
//!
//! The expansion search drives one expansion per *query source* (each
//! intended place, plus each preferred timestamp when the temporal channel
//! is on). Which source to advance next is the paper's key performance
//! lever: its heuristic gives each source a priority label
//!
//! ```text
//! label(q) = Σ_{τ ∈ P_ps \ q.s} Sim(query, τ).ub
//! ```
//!
//! — the summed upper bounds of the partly-scanned trajectories the source
//! has *not* yet scanned — and always advances the top-labelled source. The
//! intuition (stated in the paper family): convert partly-scanned
//! trajectories to fully-scanned as early as possible, prioritising those
//! that look most promising.
//!
//! [`Scheduler::RoundRobin`] and [`Scheduler::MinRadius`] are the ablation
//! strategies ("w/o-h" in the evaluation).

use serde::{Deserialize, Serialize};

/// Strategy for picking the next query source to advance.
///
/// Deserialization clamps `Heuristic::recompute_every` to ≥ 1 (see
/// [`Scheduler::normalized`]): a zero sweep period would mean "recompute
/// labels after every −1 steps" and stall the label sweep arithmetic, so a
/// hostile or hand-edited config cannot smuggle one in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Scheduler {
    /// Cycle through the live sources in order. The classic IKNN-style
    /// round-robin; the "w/o heuristic" ablation.
    RoundRobin,
    /// Advance the source with the smallest normalized radius, keeping all
    /// expansion frontiers balanced.
    MinRadius,
    /// The paper's priority-label heuristic. Labels are recomputed every
    /// `recompute_every` expansion steps (a label sweep costs
    /// `O(|partly scanned| · #sources)`, so it is amortized over a batch of
    /// steps); between sweeps the current top source keeps running, which
    /// matches the paper's "search the top-ranked query source until a new
    /// query source takes its place".
    Heuristic {
        /// Steps between label sweeps (≥ 1).
        recompute_every: usize,
    },
}

/// Untrusted mirror of [`Scheduler`] that serde deserializes into; the
/// `From` conversion is where the ≥ 1 clamp happens.
#[derive(Deserialize)]
enum SchedulerWire {
    RoundRobin,
    MinRadius,
    Heuristic { recompute_every: usize },
}

impl From<SchedulerWire> for Scheduler {
    fn from(w: SchedulerWire) -> Self {
        match w {
            SchedulerWire::RoundRobin => Scheduler::RoundRobin,
            SchedulerWire::MinRadius => Scheduler::MinRadius,
            SchedulerWire::Heuristic { recompute_every } => {
                Scheduler::heuristic_every(recompute_every)
            }
        }
    }
}

// Hand-written (instead of `#[serde(from = "SchedulerWire")]`) so the
// validating `From` conversion provably runs on every deserialization
// path.
impl serde::Deserialize for Scheduler {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::DeError> {
        SchedulerWire::deserialize(content).map(Scheduler::from)
    }
}

impl Scheduler {
    /// The paper's configuration with a sensible sweep period.
    pub fn heuristic() -> Self {
        Scheduler::Heuristic {
            recompute_every: 128,
        }
    }

    /// The heuristic with an explicit sweep period, clamped to ≥ 1. Prefer
    /// this over building the variant directly — the field stays public
    /// for pattern matching, but a zero period is never meaningful.
    pub fn heuristic_every(recompute_every: usize) -> Self {
        Scheduler::Heuristic {
            recompute_every: recompute_every.max(1),
        }
    }

    /// A copy with every invariant enforced (`recompute_every ≥ 1`).
    /// The engine normalizes schedulers on entry, so even a directly
    /// constructed `Heuristic { recompute_every: 0 }` cannot stall a
    /// label sweep.
    pub fn normalized(self) -> Self {
        match self {
            Scheduler::Heuristic { recompute_every } => Scheduler::heuristic_every(recompute_every),
            other => other,
        }
    }

    /// Short display name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Scheduler::RoundRobin => "round-robin",
            Scheduler::MinRadius => "min-radius",
            Scheduler::Heuristic { .. } => "heuristic",
        }
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::heuristic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_default() {
        assert_eq!(Scheduler::RoundRobin.name(), "round-robin");
        assert_eq!(Scheduler::MinRadius.name(), "min-radius");
        assert_eq!(Scheduler::heuristic().name(), "heuristic");
        assert!(matches!(
            Scheduler::default(),
            Scheduler::Heuristic {
                recompute_every: 128
            }
        ));
    }

    #[test]
    fn serde_round_trip() {
        for s in [
            Scheduler::RoundRobin,
            Scheduler::MinRadius,
            Scheduler::heuristic(),
        ] {
            let json = serde_json::to_string(&s).unwrap();
            let back: Scheduler = serde_json::from_str(&json).unwrap();
            assert_eq!(s, back);
        }
    }

    /// Regression: a hostile JSON config carrying `recompute_every: 0`
    /// must not reach the engine's sweep arithmetic un-clamped.
    #[test]
    fn hostile_zero_period_is_clamped_everywhere() {
        let hostile: Scheduler = serde_json::from_str(r#"{"Heuristic":{"recompute_every":0}}"#)
            .expect("shape is valid, value is hostile");
        assert_eq!(
            hostile,
            Scheduler::Heuristic { recompute_every: 1 },
            "deserialization must clamp the sweep period"
        );
        assert_eq!(
            Scheduler::heuristic_every(0),
            Scheduler::Heuristic { recompute_every: 1 }
        );
        // a directly constructed zero still normalizes away
        let direct = Scheduler::Heuristic { recompute_every: 0 };
        assert_eq!(
            direct.normalized(),
            Scheduler::Heuristic { recompute_every: 1 }
        );
        // sane values pass through untouched
        assert_eq!(
            Scheduler::heuristic_every(7),
            Scheduler::Heuristic { recompute_every: 7 }
        );
        assert_eq!(Scheduler::RoundRobin.normalized(), Scheduler::RoundRobin);
    }

    /// A zero-period scheduler smuggled past the constructors must still
    /// terminate a real search (the engine normalizes on entry).
    #[test]
    fn zero_period_scheduler_still_terminates_searches() {
        use crate::{Database, UotsQuery};
        use uots_network::generators::{grid_city, GridCityConfig};
        use uots_network::NodeId;
        use uots_text::KeywordSet;
        use uots_trajectory::{Sample, Trajectory, TrajectoryStore};

        let net = grid_city(&GridCityConfig::tiny(5)).unwrap();
        let mut store = TrajectoryStore::new();
        for v in [0u32, 7, 13] {
            store.push(
                Trajectory::new(
                    vec![Sample {
                        node: NodeId(v),
                        time: 0.0,
                    }],
                    KeywordSet::empty(),
                )
                .unwrap(),
            );
        }
        let vidx = store.build_vertex_index(net.num_nodes());
        let db = Database::new(&net, &store, &vidx);
        let q = UotsQuery::new(vec![NodeId(0), NodeId(24)], KeywordSet::empty()).unwrap();
        let hostile = Scheduler::Heuristic { recompute_every: 0 };
        let r = crate::engine::expansion_search(&db, &q, hostile).expect("must terminate");
        let sane = crate::engine::expansion_search(&db, &q, Scheduler::heuristic()).unwrap();
        assert_eq!(r.ids(), sane.ids());
    }
}
