//! The UOTS similarity model — exact evaluation.
//!
//! ```text
//! d(o, τ)     = min_{p ∈ τ} sd(o, p)                      (network distance)
//! Sim_S(q, τ) = (1/m) Σ_{o ∈ O} e^(−d(o,τ) / decay_km)
//! Sim_T(q, τ) = Jaccard(ψ_q, ψ_τ)                          (configurable)
//! Sim_Tm(q,τ) = (1/|times|) Σ_t e^(−min_i |t − t_i| / decay_s)
//! Sim(q, τ)   = w_s·Sim_S + w_tx·Sim_T + w_tm·Sim_Tm
//! ```
//!
//! All channels map into `[0, 1]`, so the combined similarity does too.
//! Unreachable places contribute `e^(−∞) = 0`, which composes without
//! special cases.
//!
//! This module computes the *exact* values (given exact distances); the
//! engine's upper bounds live in [`crate::engine`].

use crate::csr::MultiSourceExpansion;
use crate::distcache::CachedSource;
use crate::query::UotsQuery;
use crate::result::Match;
use uots_network::dijkstra::ShortestPathTree;
use uots_trajectory::{Trajectory, TrajectoryId};

/// Mean exponential decay over per-place distances:
/// `(1/n) Σ e^(−d_i / decay)`. Infinite distances contribute zero.
///
/// # Panics
///
/// Panics (debug) when `dists` is empty or `decay` is non-positive.
#[inline]
pub fn decay_mean(dists: &[f64], decay: f64) -> f64 {
    debug_assert!(!dists.is_empty());
    debug_assert!(decay > 0.0);
    let sum: f64 = dists.iter().map(|&d| (-d / decay).exp()).sum();
    sum / dists.len() as f64
}

/// Exact spatial channel value from per-location point-to-trajectory
/// distances.
#[inline]
pub fn spatial_component(dists: &[f64], decay_km: f64) -> f64 {
    decay_mean(dists, decay_km)
}

/// Exact textual channel value for `query` against a trajectory's keywords.
#[inline]
pub fn textual_component(query: &UotsQuery, traj: &Trajectory) -> f64 {
    query
        .options()
        .text_measure
        .similarity(query.keywords(), traj.keywords())
}

/// Exact temporal channel value from per-preferred-time minimal gaps.
/// Returns 0 when the query has no temporal preference.
#[inline]
pub fn temporal_component(dts: &[f64], decay_s: f64) -> f64 {
    if dts.is_empty() {
        return 0.0;
    }
    decay_mean(dts, decay_s)
}

/// Combines the channel values with the query's weights.
#[inline]
pub fn combine(query: &UotsQuery, spatial: f64, textual: f64, temporal: f64) -> f64 {
    let w = query.options().weights;
    w.spatial * spatial + w.textual * textual + w.temporal * temporal
}

/// Exact per-location network distances `d(o_i, τ)` read off precomputed
/// shortest-path trees (one tree per query location, in query-location
/// order). Unreachable places yield `f64::INFINITY`.
pub fn spatial_distances_from_trees(trees: &[ShortestPathTree], traj: &Trajectory) -> Vec<f64> {
    trees
        .iter()
        .map(|tree| {
            traj.nodes()
                .map(|v| tree.distance(v).unwrap_or(f64::INFINITY))
                .fold(f64::INFINITY, f64::min)
        })
        .collect()
}

/// Exact per-location network distances `d(o_i, τ)` read off **fully
/// drained** [`CachedSource`]s (every vertex delivered, so
/// `settled_distance` is exact for the whole component). Computes the same
/// per-vertex distances and the same `min` fold as
/// [`spatial_distances_from_trees`] — the two are bit-identical, which is
/// what lets the cached brute-force/text-first paths stay differential-
/// equal to the tree-based ones.
pub fn spatial_distances_from_sources(sources: &[CachedSource<'_>], traj: &Trajectory) -> Vec<f64> {
    sources
        .iter()
        .map(|src| {
            traj.nodes()
                .map(|v| src.settled_distance(v).unwrap_or(f64::INFINITY))
                .fold(f64::INFINITY, f64::min)
        })
        .collect()
}

/// Exact per-location network distances `d(o_i, τ)` read off a **fully
/// drained** [`MultiSourceExpansion`] (source `i` = query location `i`).
/// Same per-vertex lookups, same `min` fold order as
/// [`spatial_distances_from_trees`] — bit-identical distances (the
/// multi-source Dijkstra itself settles bit-identical values, see
/// [`crate::csr`]).
pub fn spatial_distances_from_multi(ms: &MultiSourceExpansion<'_>, traj: &Trajectory) -> Vec<f64> {
    (0..ms.num_sources())
        .map(|si| {
            traj.nodes()
                .map(|v| ms.distance(si, v.0).unwrap_or(f64::INFINITY))
                .fold(f64::INFINITY, f64::min)
        })
        .collect()
}

/// Exact per-preferred-time minimal gaps `min_i |t − t_i|`.
pub fn temporal_gaps(times: &[f64], traj: &Trajectory) -> Vec<f64> {
    times
        .iter()
        .map(|&t| {
            traj.times()
                .map(|ti| (t - ti).abs())
                .fold(f64::INFINITY, f64::min)
        })
        .collect()
}

/// Fully evaluates one trajectory against a query using precomputed
/// shortest-path trees. This is the reference ("ground truth") evaluation
/// every algorithm must agree with.
pub fn evaluate_with_trees(
    trees: &[ShortestPathTree],
    query: &UotsQuery,
    id: TrajectoryId,
    traj: &Trajectory,
) -> Match {
    evaluate_with_trees_textual(trees, query, id, traj, textual_component(query, traj))
}

/// [`evaluate_with_trees`] with the textual channel value supplied by the
/// caller (the dense [`crate::keywords`] table computes it bit-identically
/// to [`textual_component`]); spatial/temporal math is unchanged.
pub fn evaluate_with_trees_textual(
    trees: &[ShortestPathTree],
    query: &UotsQuery,
    id: TrajectoryId,
    traj: &Trajectory,
    textual: f64,
) -> Match {
    debug_assert_eq!(trees.len(), query.num_locations());
    let sdists = spatial_distances_from_trees(trees, traj);
    finish_match(&sdists, textual, query, id, traj)
}

/// [`evaluate_with_trees`] over fully drained [`CachedSource`]s instead of
/// shortest-path trees; identical channel math, identical fold order.
pub fn evaluate_with_sources(
    sources: &[CachedSource<'_>],
    query: &UotsQuery,
    id: TrajectoryId,
    traj: &Trajectory,
) -> Match {
    evaluate_with_sources_textual(sources, query, id, traj, textual_component(query, traj))
}

/// [`evaluate_with_sources`] with a caller-supplied textual channel value.
pub fn evaluate_with_sources_textual(
    sources: &[CachedSource<'_>],
    query: &UotsQuery,
    id: TrajectoryId,
    traj: &Trajectory,
    textual: f64,
) -> Match {
    debug_assert_eq!(sources.len(), query.num_locations());
    let sdists = spatial_distances_from_sources(sources, traj);
    finish_match(&sdists, textual, query, id, traj)
}

/// [`evaluate_with_trees`] over a fully drained [`MultiSourceExpansion`]
/// with a caller-supplied textual channel value; identical channel math,
/// identical fold order.
pub fn evaluate_with_multi(
    ms: &MultiSourceExpansion<'_>,
    query: &UotsQuery,
    id: TrajectoryId,
    traj: &Trajectory,
    textual: f64,
) -> Match {
    debug_assert_eq!(ms.num_sources(), query.num_locations());
    let sdists = spatial_distances_from_multi(ms, traj);
    finish_match(&sdists, textual, query, id, traj)
}

/// Shared tail of every exact evaluation: channel composition from the
/// per-location distances and the textual value, in the one canonical
/// operation order.
fn finish_match(
    sdists: &[f64],
    textual: f64,
    query: &UotsQuery,
    id: TrajectoryId,
    traj: &Trajectory,
) -> Match {
    let spatial = spatial_component(sdists, query.options().decay_km);
    let temporal = if query.times().is_empty() {
        0.0
    } else {
        temporal_component(&temporal_gaps(query.times(), traj), query.options().decay_s)
    };
    Match {
        id,
        similarity: combine(query, spatial, textual, temporal),
        spatial,
        textual,
        temporal,
        order_blend: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{QueryOptions, Weights};
    use uots_network::dijkstra::shortest_path_tree;
    use uots_network::generators::{grid_city, GridCityConfig};
    use uots_network::NodeId;
    use uots_text::{KeywordId, KeywordSet};
    use uots_trajectory::Sample;

    fn kws(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    fn traj(nodes: &[u32], t0: f64, tags: &[u32]) -> Trajectory {
        Trajectory::new(
            nodes
                .iter()
                .enumerate()
                .map(|(i, &v)| Sample {
                    node: NodeId(v),
                    time: t0 + 60.0 * i as f64,
                })
                .collect(),
            kws(tags),
        )
        .unwrap()
    }

    #[test]
    fn decay_mean_known_values() {
        assert!((decay_mean(&[0.0], 1.0) - 1.0).abs() < 1e-12);
        assert!((decay_mean(&[1.0], 1.0) - (-1.0f64).exp()).abs() < 1e-12);
        assert!((decay_mean(&[0.0, f64::INFINITY], 1.0) - 0.5).abs() < 1e-12);
        // decay scale stretches the distance axis
        assert!((decay_mean(&[2.0], 2.0) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn decay_mean_is_in_unit_interval_and_monotone() {
        let d1 = decay_mean(&[0.5, 1.0, 3.0], 1.0);
        let d2 = decay_mean(&[0.6, 1.0, 3.0], 1.0);
        assert!((0.0..=1.0).contains(&d1));
        assert!(d2 < d1, "larger distances must lower the similarity");
    }

    #[test]
    fn evaluate_on_a_hand_checkable_grid() {
        // 5×5 unit lattice; trajectory along the bottom row
        let net = grid_city(&GridCityConfig::tiny(5)).unwrap();
        let trees: Vec<_> = [NodeId(0), NodeId(12)]
            .iter()
            .map(|&v| shortest_path_tree(&net, v))
            .collect();
        let t = traj(&[0, 1, 2, 3, 4], 0.0, &[1, 2]);
        let q = UotsQuery::with_options(
            vec![NodeId(0), NodeId(12)],
            kws(&[2, 3]),
            vec![],
            QueryOptions {
                weights: Weights::lambda(0.5).unwrap(),
                ..Default::default()
            },
        )
        .unwrap();
        let m = evaluate_with_trees(&trees, &q, TrajectoryId(0), &t);
        // d(v0, τ) = 0; d(v12, τ) = 2 (v12 = (2,2), nearest sample v2 = (2,0))
        let expect_spatial = (1.0 + (-2.0f64).exp()) / 2.0;
        assert!((m.spatial - expect_spatial).abs() < 1e-12);
        // Jaccard({2,3}, {1,2}) = 1/3
        assert!((m.textual - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.similarity - (0.5 * expect_spatial + 0.5 / 3.0)).abs() < 1e-12);
        assert_eq!(m.temporal, 0.0);
    }

    #[test]
    fn temporal_gaps_and_component() {
        let t = traj(&[0, 1], 1_000.0, &[]); // samples at 1000 and 1060
        let gaps = temporal_gaps(&[1_030.0, 2_000.0], &t);
        assert_eq!(gaps, vec![30.0, 940.0]);
        let sim = temporal_component(&gaps, 1_800.0);
        let expect = ((-30.0f64 / 1800.0).exp() + (-940.0f64 / 1800.0).exp()) / 2.0;
        assert!((sim - expect).abs() < 1e-12);
        assert_eq!(temporal_component(&[], 1_800.0), 0.0);
    }

    #[test]
    fn lambda_extremes_isolate_channels() {
        let net = grid_city(&GridCityConfig::tiny(4)).unwrap();
        let trees = vec![shortest_path_tree(&net, NodeId(0))];
        let t = traj(&[5], 0.0, &[7]);

        let spatial_only = UotsQuery::with_options(
            vec![NodeId(0)],
            kws(&[7]),
            vec![],
            QueryOptions {
                weights: Weights::lambda(1.0).unwrap(),
                ..Default::default()
            },
        )
        .unwrap();
        let m = evaluate_with_trees(&trees, &spatial_only, TrajectoryId(0), &t);
        assert!((m.similarity - m.spatial).abs() < 1e-12);

        let textual_only = spatial_only
            .reoptioned(QueryOptions {
                weights: Weights::lambda(0.0).unwrap(),
                ..Default::default()
            })
            .unwrap();
        let m = evaluate_with_trees(&trees, &textual_only, TrajectoryId(0), &t);
        assert!((m.similarity - 1.0).abs() < 1e-12); // exact tag match
    }

    #[test]
    fn unreachable_location_contributes_zero() {
        // trajectory on a vertex unreachable from the tree source would need
        // a disconnected graph; emulate with INFINITY distances directly
        let s = spatial_component(&[f64::INFINITY, 0.0], 1.0);
        assert!((s - 0.5).abs() < 1e-12);
    }
}
