//! Property tests for the shared [`DistanceCache`]: the bounded-capacity,
//! eviction-safety, concurrency, and mid-batch-clear invariants the module
//! docs promise. All of them drive the cache exclusively through its
//! public surface — [`CachedSource`] runs over random road networks — so
//! the properties hold for the exact code paths the query engine uses.

use proptest::prelude::*;
use std::sync::Arc;
use uots_core::{CachedSource, DistanceCache};
use uots_network::expansion::Settled;
use uots_network::{NetworkBuilder, NodeId, Point, RoadNetwork};

/// A connected random network: spanning tree plus chords.
fn graph_strategy(max_n: usize) -> impl Strategy<Value = RoadNetwork> {
    (4usize..max_n, any::<u64>()).prop_map(|(n, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = NetworkBuilder::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|_| b.add_node(Point::new(rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 10.0)))
            .collect();
        for i in 1..n {
            let j = rng.gen_range(0..i);
            b.add_edge(ids[i], ids[j], Some(rng.gen::<f64>() * 4.0 + 0.05))
                .expect("valid edge");
        }
        for _ in 0..n {
            let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if i != j {
                b.add_edge(ids[i], ids[j], Some(rng.gen::<f64>() * 4.0 + 0.05))
                    .expect("valid edge");
            }
        }
        b.build().expect("non-empty")
    })
}

/// Fully drains a cache-backed source and returns its settle sequence.
fn drain(src: &mut CachedSource<'_>) -> Vec<Settled> {
    std::iter::from_fn(|| src.next_settled()).collect()
}

/// Reference settle sequence: a fresh, uncached run.
fn reference(net: &RoadNetwork, source: NodeId) -> Vec<Settled> {
    drain(&mut CachedSource::start(net, source, None))
}

fn same_sequence(a: &[Settled], b: &[Settled]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.node == y.node && x.dist.to_bits() == y.dist.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The resident cost never exceeds the configured capacity, no matter
    /// what sequence of publishes (and partial publishes) the cache sees.
    #[test]
    fn capacity_never_exceeded(
        net in graph_strategy(28),
        capacity in 1usize..64,
        shards in 1usize..6,
        sources in proptest::collection::vec(any::<u32>(), 1..40),
        partial in any::<u64>(),
    ) {
        let n = net.num_nodes();
        let cache = Arc::new(DistanceCache::with_shards(capacity, shards));
        for (i, s) in sources.iter().enumerate() {
            let source = NodeId(s % n as u32);
            let mut src = CachedSource::start(&net, source, Some(&cache));
            if partial.rotate_left(i as u32) & 1 == 0 {
                drain(&mut src);
            } else {
                // settle only a few: publishes a short prefix
                for _ in 0..3 {
                    if src.next_settled().is_none() {
                        break;
                    }
                }
            }
            src.publish();
            prop_assert!(
                cache.resident_cost() <= cache.capacity(),
                "resident {} > capacity {} after publish {}",
                cache.resident_cost(), cache.capacity(), i
            );
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, sources.len() as u64);
    }

    /// Evicting an entry never corrupts a reader that is replaying it:
    /// the `Arc` keeps the prefix alive and byte-identical, and the replay
    /// still produces exactly the uncached settle sequence.
    #[test]
    fn eviction_never_corrupts_live_replay(
        net in graph_strategy(24),
        churn in proptest::collection::vec(any::<u32>(), 4..24),
    ) {
        let n = net.num_nodes();
        // tiny cache: nearly every publish evicts something
        let cache = Arc::new(DistanceCache::with_shards(2 * n, 1));
        let victim = NodeId(0);
        let mut first = CachedSource::start(&net, victim, Some(&cache));
        drain(&mut first);
        first.publish();
        let held = cache.probe(victim).expect("just published");
        let held_before: Vec<(NodeId, u64)> = held
            .settled()
            .iter()
            .map(|s| (s.node, s.dist.to_bits()))
            .collect();

        // a reader mid-replay of the victim entry…
        let mut reader = CachedSource::start(&net, victim, Some(&cache));
        prop_assert!(reader.was_hit());
        let mut delivered = vec![reader.next_settled().expect("non-empty prefix")];

        // …while churn evicts it from the shard
        for s in &churn {
            let mut src = CachedSource::start(&net, NodeId(s % n as u32), Some(&cache));
            drain(&mut src);
            src.publish();
        }

        delivered.extend(drain(&mut reader));
        prop_assert!(
            same_sequence(&delivered, &reference(&net, victim)),
            "mid-eviction replay diverged from the uncached run"
        );
        let held_after: Vec<(NodeId, u64)> = held
            .settled()
            .iter()
            .map(|s| (s.node, s.dist.to_bits()))
            .collect();
        prop_assert_eq!(held_before, held_after, "held Arc must be immutable");
        prop_assert!(cache.resident_cost() <= cache.capacity());
    }

    /// Concurrent inserts and probes from many threads: every thread's
    /// every run produces exactly the uncached settle sequence — a probe
    /// observes either nothing or a complete published prefix, never a
    /// torn one.
    #[test]
    fn concurrent_insert_probe_is_linearizable(
        net in graph_strategy(20),
        seeds in proptest::collection::vec(any::<u64>(), 2..5),
    ) {
        let n = net.num_nodes();
        let cache = Arc::new(DistanceCache::new(1 << 12));
        let refs: Vec<Vec<Settled>> =
            (0..n).map(|v| reference(&net, NodeId(v as u32))).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for &seed in &seeds {
                let cache = Arc::clone(&cache);
                let net = &net;
                let refs = &refs;
                handles.push(scope.spawn(move || {
                    use rand::rngs::StdRng;
                    use rand::{Rng, SeedableRng};
                    let mut rng = StdRng::seed_from_u64(seed);
                    for _ in 0..12 {
                        let v = rng.gen_range(0..n);
                        let mut src =
                            CachedSource::start(net, NodeId(v as u32), Some(&cache));
                        let got = drain(&mut src);
                        src.publish();
                        assert!(
                            same_sequence(&got, &refs[v]),
                            "thread observed a torn or wrong prefix for source {v}"
                        );
                    }
                }));
            }
            for h in handles {
                h.join().expect("worker panicked");
            }
        });
        prop_assert!(cache.resident_cost() <= cache.capacity());
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, seeds.len() as u64 * 12);
    }

    /// Clearing the cache mid-batch — even mid-replay — is purely a
    /// performance event: every in-flight and subsequent run still yields
    /// the exact uncached sequence; only hit/miss counters change.
    #[test]
    fn mid_batch_clear_costs_only_performance(
        net in graph_strategy(24),
        sources in proptest::collection::vec(any::<u32>(), 2..12),
        clear_at in 0usize..12,
    ) {
        let n = net.num_nodes();
        let cache = Arc::new(DistanceCache::new(1 << 12));
        // warm the cache, then keep one reader suspended mid-replay
        let warm = NodeId(0);
        let mut w = CachedSource::start(&net, warm, Some(&cache));
        drain(&mut w);
        w.publish();
        let mut suspended = CachedSource::start(&net, warm, Some(&cache));
        let mut delivered = vec![suspended.next_settled().expect("non-empty")];

        let clear_idx = clear_at % sources.len();
        for (i, s) in sources.iter().enumerate() {
            if i == clear_idx {
                cache.clear();
                prop_assert!(cache.is_empty());
            }
            let v = NodeId(s % n as u32);
            let mut src = CachedSource::start(&net, v, Some(&cache));
            let got = drain(&mut src);
            src.publish();
            prop_assert!(
                same_sequence(&got, &reference(&net, v)),
                "post-clear run diverged for source {}", v.0
            );
        }
        delivered.extend(drain(&mut suspended));
        prop_assert!(
            same_sequence(&delivered, &reference(&net, warm)),
            "suspended replay diverged across a clear"
        );
    }
}
