//! F6 — per-query latency as the average trajectory length grows
//! (controlled via the trip generator's sample stride).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uots_bench::{algorithms, make_queries, Scale};
use uots_core::Database;
use uots_datagen::Dataset;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f6_length");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for stride in [8usize, 2] {
        let mut cfg = Scale::Bench.config(1_000);
        cfg.trips.sample_stride = stride;
        let ds = Dataset::build(&cfg).expect("dataset builds");
        let avg_len = format!("{:.0}", ds.stats().avg_len);
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
            .with_keyword_index(&ds.keyword_index);
        let queries = make_queries(&ds, 3, 4, 3, 0.5, 1, 0xf6);
        for (name, algo) in algorithms(false) {
            group.bench_with_input(BenchmarkId::new(&name, &avg_len), &queries, |b, qs| {
                b.iter(|| {
                    for q in qs {
                        criterion::black_box(algo.run(&db, q).expect("query runs"));
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
