//! Substrate microbenchmarks: the primitives everything else is built on.
//!
//! * full Dijkstra tree vs A* point-to-point vs incremental expansion;
//! * grid-index nearest-neighbour snap;
//! * keyword-set Jaccard;
//! * ALT landmark lower bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uots_index::GridIndex;
use uots_network::astar::AStar;
use uots_network::expansion::NetworkExpansion;
use uots_network::generators::{grid_city, GridCityConfig};
use uots_network::landmarks::Landmarks;
use uots_network::{dijkstra, NodeId, Point};
use uots_text::{KeywordId, KeywordSet, TextSimilarity};

fn bench(c: &mut Criterion) {
    let net = grid_city(&GridCityConfig::new(100, 100).with_seed(3)).expect("network builds");
    let n = net.num_nodes();
    let mut rng = StdRng::seed_from_u64(1);

    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));

    group.bench_function("dijkstra_full_tree_10k", |b| {
        b.iter(|| {
            criterion::black_box(dijkstra::shortest_path_tree(
                &net,
                NodeId(rng.gen_range(0..n) as u32),
            ))
        })
    });

    let mut astar = AStar::new(&net);
    group.bench_function("astar_point_to_point_10k", |b| {
        b.iter(|| {
            let a = NodeId(rng.gen_range(0..n) as u32);
            let t = NodeId(rng.gen_range(0..n) as u32);
            criterion::black_box(astar.distance(a, t))
        })
    });

    for settles in [100usize, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("expansion_settles", settles),
            &settles,
            |b, &s| {
                let mut exp = NetworkExpansion::new(&net);
                b.iter(|| {
                    exp.start(NodeId(rng.gen_range(0..n) as u32));
                    for _ in 0..s {
                        if exp.next_settled().is_none() {
                            break;
                        }
                    }
                    criterion::black_box(exp.radius())
                })
            },
        );
    }

    let grid = GridIndex::build(net.points(), 8);
    group.bench_function("grid_nearest_snap", |b| {
        b.iter(|| {
            let p = Point::new(rng.gen::<f64>() * 25.0, rng.gen::<f64>() * 25.0);
            criterion::black_box(grid.nearest(&p))
        })
    });

    let a: KeywordSet = (0..6).map(|i| KeywordId(i * 3)).collect();
    let bset: KeywordSet = (0..6).map(|i| KeywordId(i * 2)).collect();
    group.bench_function("jaccard_6x6", |b| {
        b.iter(|| criterion::black_box(TextSimilarity::Jaccard.similarity(&a, &bset)))
    });

    let lm = Landmarks::select(&net, 4, NodeId(0));
    group.bench_function("landmark_lower_bound", |b| {
        b.iter(|| {
            let x = NodeId(rng.gen_range(0..n) as u32);
            let y = NodeId(rng.gen_range(0..n) as u32);
            criterion::black_box(lm.lower_bound(x, y))
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
