//! J1 — trajectory similarity self-join: wall time across θ and |P|.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uots_bench::Scale;
use uots_join::{ts_join, JoinConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("j1_join");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for trips in [100usize, 200] {
        let ds = Scale::Bench.build(trips);
        let tidx = ds.store.build_timestamp_index();
        for theta in [0.85f64, 0.95] {
            let cfg = JoinConfig {
                theta,
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("theta_{theta}"), trips),
                &cfg,
                |b, cfg| {
                    b.iter(|| {
                        criterion::black_box(
                            ts_join(&ds.network, &ds.store, &ds.vertex_index, &tidx, cfg, 2)
                                .expect("join runs"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
