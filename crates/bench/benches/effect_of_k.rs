//! F4 — per-query latency as the answer size k grows (top-k extension).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uots_bench::{algorithms, make_queries, Scale};
use uots_core::Database;

fn bench(c: &mut Criterion) {
    let ds = Scale::Bench.build(1_500);
    let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
        .with_keyword_index(&ds.keyword_index);
    let mut group = c.benchmark_group("f4_k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for k in [1usize, 10, 50] {
        let queries = make_queries(&ds, 3, 4, 3, 0.5, k, 0xf4);
        for (name, algo) in algorithms(false) {
            group.bench_with_input(BenchmarkId::new(&name, k), &queries, |b, qs| {
                b.iter(|| {
                    for q in qs {
                        criterion::black_box(algo.run(&db, q).expect("query runs"));
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
