//! T2 — pruning effectiveness under default settings; Criterion measures
//! latency while the companion `experiments --only t2` run reports the
//! candidate/pruning ratios themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uots_bench::{algorithms, make_queries, Scale};
use uots_core::Database;

fn bench(c: &mut Criterion) {
    let ds = Scale::Bench.build(2_000);
    let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
        .with_keyword_index(&ds.keyword_index);
    let queries = make_queries(&ds, 4, 4, 3, 0.5, 1, 0x12);
    let mut group = c.benchmark_group("t2_pruning");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for (name, algo) in algorithms(true) {
        group.bench_with_input(BenchmarkId::from_parameter(&name), &queries, |b, qs| {
            b.iter(|| {
                for q in qs {
                    criterion::black_box(algo.run(&db, q).expect("query runs"));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
