//! F8 — scheduling strategy ablation: the paper's heuristic vs round-robin
//! vs min-radius on the same expansion engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uots_bench::{make_queries, Scale};
use uots_core::algorithms::{Algorithm, Expansion};
use uots_core::{Database, Scheduler};

fn bench(c: &mut Criterion) {
    let ds = Scale::Bench.build(1_500);
    let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
        .with_keyword_index(&ds.keyword_index);
    let queries = make_queries(&ds, 4, 6, 3, 0.5, 1, 0xf8);
    let mut group = c.benchmark_group("f8_scheduling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for (label, sched) in [
        ("heuristic", Scheduler::heuristic()),
        ("round-robin", Scheduler::RoundRobin),
        ("min-radius", Scheduler::MinRadius),
    ] {
        let algo = Expansion::new(sched);
        group.bench_with_input(BenchmarkId::from_parameter(label), &queries, |b, qs| {
            b.iter(|| {
                for q in qs {
                    criterion::black_box(algo.run(&db, q).expect("query runs"));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
