//! F1 — per-query latency as the number of query locations m grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uots_bench::{algorithms, make_queries, Scale};
use uots_core::Database;

fn bench(c: &mut Criterion) {
    let ds = Scale::Bench.build(1_500);
    let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
        .with_keyword_index(&ds.keyword_index);
    let mut group = c.benchmark_group("f1_locations");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for m in [2usize, 4, 8] {
        let queries = make_queries(&ds, 3, m, 3, 0.5, 1, 0xf1);
        for (name, algo) in algorithms(false) {
            group.bench_with_input(BenchmarkId::new(&name, m), &queries, |b, qs| {
                b.iter(|| {
                    for q in qs {
                        criterion::black_box(algo.run(&db, q).expect("query runs"));
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
