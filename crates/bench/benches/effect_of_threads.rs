//! F7 — batch wall time across thread counts (queries are independent, the
//! property the paper exploits for parallelism).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uots_bench::{make_queries, Scale};
use uots_core::algorithms::Expansion;
use uots_core::{parallel, Database};

fn bench(c: &mut Criterion) {
    let ds = Scale::Bench.build(1_500);
    let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
        .with_keyword_index(&ds.keyword_index);
    let queries = make_queries(&ds, 16, 4, 3, 0.5, 1, 0xf7);
    let algo = Expansion::default();
    let mut group = c.benchmark_group("f7_threads");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                criterion::black_box(
                    parallel::run_batch(&db, &algo, &queries, t).expect("batch runs"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
