//! # uots-bench
//!
//! Shared harness for the evaluation suite: dataset construction at
//! experiment scales, workload materialization, measurement rows and table
//! rendering. Both the Criterion benches (`benches/`) and the
//! paper-style `experiments` binary build on this crate.
//!
//! The experiment inventory (T1–T2, F1–F10) is defined in `DESIGN.md`;
//! `EXPERIMENTS.md` records measured outcomes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use serde::Serialize;
use std::time::{Duration, Instant};
use uots_core::algorithms::{Algorithm, BruteForce, Expansion, IknnBaseline, TextFirst};
use uots_core::{Database, QueryOptions, Scheduler, SearchMetrics, UotsQuery, Weights};
use uots_datagen::workload::{self, WorkloadConfig};
use uots_datagen::NetworkPreset;
use uots_datagen::{Dataset, DatasetConfig};
use uots_network::generators::GridCityConfig;
use uots_obs::LogHistogram;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 30×30 city — CI smoke runs.
    Tiny,
    /// 60×60 city — Criterion benches on a laptop.
    Bench,
    /// ≈28k-vertex BRN-like city — the headline experiments.
    Brn,
    /// ≈95k-vertex NRN-like city.
    Nrn,
}

impl Scale {
    /// Parses `tiny|bench|brn|nrn`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "bench" => Some(Scale::Bench),
            "brn" => Some(Scale::Brn),
            "nrn" => Some(Scale::Nrn),
            _ => None,
        }
    }

    /// Default trajectory cardinality at this scale.
    pub fn default_trips(self) -> usize {
        match self {
            Scale::Tiny => 300,
            Scale::Bench => 3_000,
            Scale::Brn => 20_000,
            Scale::Nrn => 40_000,
        }
    }

    /// Dataset configuration with `trips` trajectories.
    pub fn config(self, trips: usize) -> DatasetConfig {
        match self {
            Scale::Tiny => DatasetConfig::small(trips, 0xbeac),
            Scale::Bench => {
                let mut grid = GridCityConfig::new(60, 60);
                grid.seed = 0xbe6c;
                let mut cfg = DatasetConfig::small(trips, 0xbe6c);
                cfg.name = format!("bench 60×60 ({trips} trips)");
                cfg.network = NetworkPreset::GridCity(grid);
                cfg.trips.min_trip_km = 2.0;
                cfg
            }
            Scale::Brn => DatasetConfig::brn_like(trips),
            Scale::Nrn => DatasetConfig::nrn_like(trips),
        }
    }

    /// Builds (and times) the dataset at this scale.
    pub fn build(self, trips: usize) -> Dataset {
        let start = Instant::now();
        let ds = Dataset::build(&self.config(trips)).expect("experiment dataset builds");
        eprintln!(
            "[bench] built {} in {:?} ({} vertices, {} edges)",
            ds.name,
            start.elapsed(),
            ds.network.num_nodes(),
            ds.network.num_edges()
        );
        ds
    }
}

/// The algorithm line-up of the evaluation. `with_oracle` additionally
/// includes the brute force (expensive at large scales).
pub fn algorithms(with_oracle: bool) -> Vec<(String, Box<dyn Algorithm + Sync>)> {
    let mut v: Vec<(String, Box<dyn Algorithm + Sync>)> = vec![
        (
            "expansion".to_string(),
            Box::new(Expansion::new(Scheduler::heuristic())),
        ),
        (
            "expansion-w/o-h".to_string(),
            Box::new(Expansion::new(Scheduler::RoundRobin)),
        ),
        (
            "iknn-baseline".to_string(),
            Box::new(IknnBaseline::default()),
        ),
        ("text-first".to_string(), Box::new(TextFirst)),
    ];
    if with_oracle {
        v.push(("brute-force".to_string(), Box::new(BruteForce)));
    }
    v
}

/// Materializes a query workload with the given shape.
///
/// # Panics
///
/// Panics on invalid parameters (zero locations, bad λ).
pub fn make_queries(
    ds: &Dataset,
    num_queries: usize,
    locations: usize,
    keywords: usize,
    lambda: f64,
    k: usize,
    seed: u64,
) -> Vec<UotsQuery> {
    let specs = workload::generate(
        ds,
        &WorkloadConfig {
            num_queries,
            locations_per_query: locations,
            keywords_per_query: keywords,
            seed,
            ..Default::default()
        },
    );
    specs
        .into_iter()
        .map(|s| {
            UotsQuery::with_options(
                s.locations,
                s.keywords,
                vec![],
                QueryOptions {
                    weights: Weights::lambda(lambda).expect("valid lambda"),
                    k,
                    ..Default::default()
                },
            )
            .expect("valid query")
        })
        .collect()
}

/// One measured data point: algorithm × parameter value.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Experiment id (`f1`, `t2`, …).
    pub experiment: String,
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Name of the swept parameter.
    pub parameter: String,
    /// Value of the swept parameter.
    pub value: f64,
    /// Queries in the batch.
    pub queries: usize,
    /// Mean per-query runtime, milliseconds.
    pub runtime_ms: f64,
    /// Median per-query runtime, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile per-query runtime, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile per-query runtime, milliseconds.
    pub p99_ms: f64,
    /// Worst per-query runtime, milliseconds.
    pub max_ms: f64,
    /// Mean per-query visited trajectories.
    pub visited: f64,
    /// Mean per-query candidates.
    pub candidates: f64,
    /// Candidate ratio (candidates / |P|).
    pub candidate_ratio: f64,
    /// Pruning ratio (1 − candidate ratio).
    pub pruning_ratio: f64,
    /// Mean certified bound gap (0 for exact runs).
    pub bound_gap: f64,
    /// Mean recall against the unbudgeted oracle (1 for exact runs).
    pub recall: f64,
}

/// Per-query latency distribution, microsecond-bucketed. Wraps
/// [`LogHistogram`] so experiment code reports percentiles, not just means.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    hist: LogHistogram,
}

impl LatencyStats {
    /// An empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one query's wall time.
    pub fn record(&mut self, elapsed: Duration) {
        self.hist
            .record(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Quantile in milliseconds (`q ∈ [0, 1]`).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.hist.quantile(q) as f64 / 1_000.0
    }

    /// Largest recorded latency in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.hist.max() as f64 / 1_000.0
    }

    /// Number of recorded queries.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Fills a row's percentile columns from this distribution.
    pub fn fill(&self, row: &mut Row) {
        row.p50_ms = self.quantile_ms(0.5);
        row.p95_ms = self.quantile_ms(0.95);
        row.p99_ms = self.quantile_ms(0.99);
        row.max_ms = self.max_ms();
    }
}

/// Runs `algo` over every query sequentially and aggregates a [`Row`],
/// recording each query's wall time so the row carries percentile
/// latencies alongside the mean.
#[allow(clippy::too_many_arguments)]
pub fn measure(
    experiment: &str,
    ds: &Dataset,
    db: &Database<'_>,
    algo_name: &str,
    algo: &dyn Algorithm,
    queries: &[UotsQuery],
    parameter: &str,
    value: f64,
) -> Row {
    let start = Instant::now();
    let mut agg = SearchMetrics::default();
    let mut gap_sum = 0.0;
    let mut latencies = LatencyStats::new();
    for q in queries {
        let q_start = Instant::now();
        let r = algo.run(db, q).expect("experiment query runs");
        latencies.record(q_start.elapsed());
        gap_sum += r.completeness.bound_gap();
        agg.merge(&r.metrics);
    }
    let wall = start.elapsed();
    let nq = queries.len().max(1);
    let mut row = Row {
        experiment: experiment.to_string(),
        dataset: ds.name.clone(),
        algorithm: algo_name.to_string(),
        parameter: parameter.to_string(),
        value,
        queries: queries.len(),
        runtime_ms: wall.as_secs_f64() * 1_000.0 / nq as f64,
        p50_ms: 0.0,
        p95_ms: 0.0,
        p99_ms: 0.0,
        max_ms: 0.0,
        visited: agg.visited_per_query(),
        candidates: agg.candidates as f64 / nq as f64,
        candidate_ratio: agg.candidate_ratio(ds.store.len()),
        pruning_ratio: agg.pruning_ratio(ds.store.len()),
        bound_gap: gap_sum / nq as f64,
        recall: 1.0, // exact runs recover the true top-k by construction
    };
    latencies.fill(&mut row);
    row
}

/// Renders rows as an aligned text table grouped by parameter value.
pub fn render_table(title: &str, rows: &[Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n## {title}");
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:<18} {:>12} {:>9} {:>9} {:>9} {:>12} {:>12} {:>10} {:>9} {:>8}",
        "param",
        "value",
        "algorithm",
        "ms/query",
        "p50",
        "p95",
        "p99",
        "visited",
        "candidates",
        "pruning",
        "gap",
        "recall"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:<18} {:>12.3} {:>9.3} {:>9.3} {:>9.3} {:>12.1} {:>12.1} {:>9.1}% {:>9.4} {:>8.3}",
            r.parameter,
            format_value(r.value),
            r.algorithm,
            r.runtime_ms,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.visited,
            r.candidates,
            r.pruning_ratio * 100.0,
            r.bound_gap,
            r.recall
        );
    }
    out
}

/// Writes one experiment's rows as `BENCH_<experiment>.json` under `dir`:
/// a JSON array where every row object additionally carries the run's
/// dataset `preset` and generator `seed`, so downstream tooling can track
/// the perf trajectory without parsing the text tables. Returns the path
/// written.
pub fn write_bench_json(
    dir: &std::path::Path,
    experiment: &str,
    preset: &str,
    seed: u64,
    rows: &[Row],
) -> std::io::Result<std::path::PathBuf> {
    use serde::Content;
    let arr = Content::Seq(
        rows.iter()
            .map(|r| {
                let mut fields = vec![
                    ("preset".to_string(), Content::Str(preset.to_string())),
                    ("seed".to_string(), Content::U64(seed)),
                ];
                if let Content::Map(m) = r.serialize() {
                    fields.extend(m);
                }
                Content::Map(fields)
            })
            .collect(),
    );
    let json =
        serde_json::to_string_pretty(&arr).map_err(|e| std::io::Error::other(e.to_string()))?;
    let path = dir.join(format!("BENCH_{experiment}.json"));
    std::fs::write(&path, json)?;
    Ok(path)
}

fn format_value(v: f64) -> String {
    if (v.fract()).abs() < 1e-9 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_and_defaults() {
        assert_eq!(Scale::parse("brn"), Some(Scale::Brn));
        assert_eq!(Scale::parse("bogus"), None);
        assert!(Scale::Tiny.default_trips() < Scale::Brn.default_trips());
    }

    #[test]
    fn tiny_pipeline_produces_rows() {
        let ds = Scale::Tiny.build(120);
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
            .with_keyword_index(&ds.keyword_index);
        let queries = make_queries(&ds, 4, 3, 2, 0.5, 1, 9);
        assert_eq!(queries.len(), 4);
        for (name, algo) in algorithms(true) {
            let row = measure("t0", &ds, &db, &name, algo.as_ref(), &queries, "m", 3.0);
            assert_eq!(row.queries, 4);
            assert!(row.runtime_ms >= 0.0);
            assert!(row.visited > 0.0);
            assert!((0.0..=1.0).contains(&row.candidate_ratio));
            assert!((row.pruning_ratio + row.candidate_ratio - 1.0).abs() < 1e-12);
            // percentile columns must be populated and ordered
            assert!(row.p50_ms <= row.p95_ms);
            assert!(row.p95_ms <= row.p99_ms);
            assert!(row.p99_ms <= row.max_ms);
            assert!(row.max_ms > 0.0);
        }
    }

    #[test]
    fn latency_stats_quantiles_track_a_known_distribution() {
        // 100 queries: 90 at ~1ms, 9 at ~10ms, 1 at ~100ms. The log buckets
        // guarantee ≤12.5% relative error on each quantile.
        let mut stats = LatencyStats::new();
        for _ in 0..90 {
            stats.record(Duration::from_micros(1_000));
        }
        for _ in 0..9 {
            stats.record(Duration::from_micros(10_000));
        }
        stats.record(Duration::from_micros(100_000));
        assert_eq!(stats.count(), 100);
        let close = |got: f64, want: f64| (got - want).abs() / want <= 0.125;
        assert!(
            close(stats.quantile_ms(0.5), 1.0),
            "{}",
            stats.quantile_ms(0.5)
        );
        assert!(
            close(stats.quantile_ms(0.95), 10.0),
            "{}",
            stats.quantile_ms(0.95)
        );
        assert!(
            close(stats.quantile_ms(0.99), 10.0),
            "{}",
            stats.quantile_ms(0.99)
        );
        assert!(close(stats.max_ms(), 100.0), "{}", stats.max_ms());
    }

    #[test]
    fn expansion_prunes_more_than_baselines_on_tiny() {
        let ds = Scale::Tiny.build(200);
        let db = Database::new(&ds.network, &ds.store, &ds.vertex_index)
            .with_keyword_index(&ds.keyword_index);
        let queries = make_queries(&ds, 6, 4, 3, 0.5, 1, 11);
        let rows: Vec<Row> = algorithms(false)
            .iter()
            .map(|(n, a)| measure("t2", &ds, &db, n, a.as_ref(), &queries, "-", 0.0))
            .collect();
        let expansion = rows.iter().find(|r| r.algorithm == "expansion").unwrap();
        let iknn = rows
            .iter()
            .find(|r| r.algorithm == "iknn-baseline")
            .unwrap();
        assert!(
            expansion.visited <= iknn.visited,
            "expansion {} vs iknn {}",
            expansion.visited,
            iknn.visited
        );
    }

    #[test]
    fn table_rendering_is_stable() {
        let row = Row {
            experiment: "f1".into(),
            dataset: "d".into(),
            algorithm: "expansion".into(),
            parameter: "m".into(),
            value: 4.0,
            queries: 8,
            runtime_ms: 1.25,
            p50_ms: 1.1,
            p95_ms: 2.4,
            p99_ms: 2.9,
            max_ms: 3.0,
            visited: 10.0,
            candidates: 3.0,
            candidate_ratio: 0.1,
            pruning_ratio: 0.9,
            bound_gap: 0.0,
            recall: 1.0,
        };
        let t = render_table("demo", &[row]);
        assert!(t.contains("## demo"));
        assert!(t.contains("expansion"));
        assert!(t.contains("90.0%"));
    }
}
